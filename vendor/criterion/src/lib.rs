//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Bench targets (built with `harness = false`) keep their upstream shape —
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::bench_function`],
//! benchmark groups and [`Bencher::iter`] — but the measurement is a plain
//! adaptive wall-clock loop: each benchmark is warmed up briefly, then
//! timed for enough iterations to fill a small measurement window, and the
//! mean time per iteration is printed. There are no statistical analyses,
//! plots or baselines; later PRs that need a perf trajectory should record
//! the printed numbers (see `BENCH_kernels.json` at the repository root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Batch sizing hint for [`Bencher::iter_batched`]; accepted for API
/// parity, ignored by the measurement loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One batch per measurement.
    PerIteration,
}

/// Identifier combining a function name and a parameter, printed as
/// `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id for `function_name` at `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
    measurement_window: Duration,
}

impl Bencher {
    /// Times `routine`, storing the mean time per iteration.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        // Warm-up: one untimed call (also primes caches/allocators).
        black_box(routine());
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.measurement_window || iters >= 1 << 20 {
                self.last_ns = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            iters = iters.saturating_mul(4);
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the per-iteration figure).
    pub fn iter_batched<I, T>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> T,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= self.measurement_window || iters >= 1 << 16 {
                self.last_ns = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            iters = iters.saturating_mul(4);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one(id: &str, window: Duration, f: impl FnOnce(&mut Bencher)) -> f64 {
    let mut bencher = Bencher {
        last_ns: 0.0,
        measurement_window: window,
    };
    f(&mut bencher);
    println!("{id:<48} time: {}", format_ns(bencher.last_ns));
    bencher.last_ns
}

/// Top-level benchmark registry (mirror of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Short window: these benches run on small CI machines and the
        // workspace only needs stable relative numbers.
        Self {
            measurement_window: Duration::from_millis(250),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement window.
    pub fn measurement_time(mut self, window: Duration) -> Self {
        self.measurement_window = window;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(id, self.measurement_window, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.criterion.measurement_window,
            f,
        );
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.criterion.measurement_window,
            |b| f(b, input),
        );
        self
    }

    /// Finishes the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions (mirror of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running one or more groups (mirror of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let ns = run_one("noop", Duration::from_millis(5), |b| {
            b.iter(|| black_box(1u64 + 1))
        });
        assert!(ns >= 0.0);
    }

    #[test]
    fn groups_and_ids_format() {
        let id = BenchmarkId::new("matmul", 64);
        assert_eq!(id.to_string(), "matmul/64");
        let mut c = Criterion::default().measurement_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 1), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
    }
}
