//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate, implementing a genuine ChaCha8 stream generator over the
//! workspace's vendored [`rand`] traits.
//!
//! The keystream is produced by the real ChaCha block function (8 rounds,
//! 64-bit block counter), so the statistical quality matches the upstream
//! crate; the exact stream is not guaranteed to be byte-identical to
//! upstream `rand_chacha` (the workspace only relies on seeded
//! determinism, which this provides).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// The ChaCha constants `"expand 32-byte k"`.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha stream cipher RNG with `ROUNDS` rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaChaRng<const ROUNDS: usize> {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the ChaCha state).
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word within `block`; 16 means "exhausted".
    index: usize,
}

/// ChaCha with 8 rounds — the workspace's canonical seeded RNG.
pub type ChaCha8Rng = ChaChaRng<8>;

/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;

/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<20>;

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Words 14–15 are the (zero) stream id.
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// Number of keystream words consumed so far (diagnostics only).
    pub fn get_word_pos(&self) -> u128 {
        // `counter` has already advanced past the buffered block, of which
        // `16 - index` words are still unread.
        (self.counter as u128 * 16).saturating_sub(16 - self.index as u128)
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn chacha20_known_answer() {
        // RFC 8439 §2.3.2 test vector: key 00..1f, counter fixed, but our
        // layout uses a zero nonce and little-endian 64-bit counter, so
        // instead of the RFC vector we sanity-check the block function via
        // the all-zero-key ChaCha20 first block, cross-checked against a
        // reference implementation of this exact layout.
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let first = rng.next_u32();
        // First word must be well-mixed, not the constant.
        assert_ne!(first, CONSTANTS[0]);
        // And reproducible.
        let mut rng2 = ChaCha20Rng::from_seed([0u8; 32]);
        assert_eq!(first, rng2.next_u32());
    }

    #[test]
    fn uniformity_smoke_test() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut buckets = [0usize; 8];
        for _ in 0..8000 {
            buckets[rng.gen_range(0usize..8)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b} far from 1000");
        }
    }

    #[test]
    fn word_pos_advances() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(rng.get_word_pos(), 0);
        rng.next_u32();
        assert_eq!(rng.get_word_pos(), 1);
        rng.next_u64();
        assert_eq!(rng.get_word_pos(), 3);
    }
}
