//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the *small* subset of the `rand 0.8` API its code
//! actually uses: [`RngCore`], [`SeedableRng`] (including the
//! `seed_from_u64` convenience), the [`Rng`] extension trait with
//! `gen_range`/`gen_bool`/`fill`, and [`seq::SliceRandom::shuffle`].
//!
//! Semantics match `rand 0.8` closely enough for this workspace's needs —
//! uniform ranges are half-open/closed exactly as the standard types imply,
//! `seed_from_u64` uses the same SplitMix64 expansion as upstream
//! `rand_core`, and `shuffle` is a Fisher–Yates walk — but the exact
//! random *streams* are not guaranteed to match the real crate. Every
//! consumer in this workspace only relies on seeded determinism, never on
//! upstream-exact sequences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core random-number-generator interface (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed (mirror of
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seed byte array type, e.g. `[u8; 32]`.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it through SplitMix64
    /// (the same expansion upstream `rand_core` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that describe a sampling range for [`Rng::gen_range`].
///
/// Blanket-implemented for `Range<T>` / `RangeInclusive<T>` over every
/// [`SampleUniform`] `T`, mirroring `rand`'s structure so type inference
/// resolves float literals from the surrounding expression.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + unit * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / ((1u32 << 24) - 1) as f32);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + unit_f64(rng) * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + unit * (hi - lo)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo draw: the bias is ≤ span / 2^64, negligible for the
                // test-scale spans this workspace uses.
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing extension methods, automatically implemented for every
/// [`RngCore`] (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }

    /// Fills `dest` with random bytes (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related random operations (mirror of `rand::seq`).

    use super::RngCore;

    /// Slice extensions (mirror of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

pub mod rngs {
    //! Simple built-in generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast SplitMix64 generator; the workspace's default
    /// non-cryptographic RNG when ChaCha strength is not needed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            Self {
                state: u64::from_le_bytes(seed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-0.25f32..0.5);
            assert!((-0.25..0.5).contains(&x));
            let y = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
