//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert!`-family macros,
//! range/vec/bool strategies with [`Strategy::prop_map`], and
//! [`ProptestConfig::with_cases`]. Differences from upstream:
//!
//! * **No shrinking.** A failing case reports the case number and seed so
//!   it can be replayed, but is not minimised.
//! * **Deterministic seeding.** Each test's case stream is seeded from a
//!   hash of the test function's name, so runs are reproducible without a
//!   `proptest-regressions` directory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The `proptest!` doctest necessarily shows `#[test]` inside a macro
// invocation, which this lint flags in documentation examples.
#![allow(clippy::test_attr_in_doctest)]

pub mod test_runner {
    //! Execution plumbing used by the [`proptest!`](crate::proptest) macro.

    use std::fmt;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed with the given message.
        Fail(String),
        /// The case was rejected by `prop_assume!`.
        Reject(String),
    }

    impl TestCaseError {
        /// Creates a failure with `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            Self::Fail(message.into())
        }

        /// Creates a rejection with `message`.
        pub fn reject(message: impl Into<String>) -> Self {
            Self::Reject(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Self::Fail(m) => write!(f, "assertion failed: {m}"),
                Self::Reject(m) => write!(f, "case rejected: {m}"),
            }
        }
    }

    /// Deterministic SplitMix64 generator driving strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a hash of a test name, used as its deterministic seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `cases` sampled cases of `body`, panicking on the first
    /// failure with enough context to replay it.
    pub fn run(
        name: &str,
        config: &Config,
        mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let mut rng = TestRng::new(seed_for(name));
        let mut rejected = 0u32;
        let mut case = 0u32;
        while case < config.cases {
            match body(&mut rng) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected < config.cases.saturating_mul(16).max(256),
                        "{name}: too many rejected cases ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: case {case}/{} failed: {msg}", config.cases)
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree: strategies sample
    /// directly and nothing shrinks.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Samples one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn new_value(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f32> {
        type Value = f32;

        fn new_value(&self, rng: &mut TestRng) -> f32 {
            *self.start() + (rng.unit_f64() as f32) * (*self.end() - *self.start())
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            *self.start() + rng.unit_f64() * (*self.end() - *self.start())
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy for any value of a type with a canonical distribution.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    /// `any::<T>()` — the canonical distribution of `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Size specification for [`vec`]: an exact length or a half-open
    /// range of lengths.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// Vector of `size` elements sampled from `element`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy yielding `true` with a fixed probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted {
        probability: f64,
    }

    /// `true` with probability `probability`.
    pub fn weighted(probability: f64) -> Weighted {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability out of range"
        );
        Weighted { probability }
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.unit_f64() < self.probability
        }
    }
}

pub mod num {
    //! Numeric strategy helpers (range strategies live on the std range
    //! types directly; this module exists for API parity).
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::bool as prop_bool;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property, returning a
/// [`TestCaseError`](test_runner::TestCaseError) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "{} == {} failed: {:?} vs {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                );
            }
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(*left == *right, $($fmt)*);
            }
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "{} != {} failed: both {:?}",
                    stringify!($left),
                    stringify!($right),
                    left
                );
            }
        }
    }};
}

/// Rejects the current case (it is re-drawn, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            @cfg($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (@cfg($cfg:expr)) => {};
    (
        @cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            $crate::test_runner::run(
                stringify!($name),
                &config,
                |__proptest_rng: &mut $crate::test_runner::TestRng| {
                    $(
                        let $pat = $crate::strategy::Strategy::new_value(
                            &($strat),
                            __proptest_rng,
                        );
                    )+
                    let __proptest_result: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    __proptest_result
                },
            );
        }
        $crate::__proptest_cases! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in -5.0f32..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_has_requested_len(v in crate::collection::vec(0.0f32..1.0, 7)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn mut_patterns_work(mut v in crate::collection::vec(0u32..5, 3)) {
            v.push(9);
            prop_assert_eq!(v.len(), 4);
        }

        #[test]
        fn any_bool_and_weighted(b in any::<bool>(), w in crate::bool::weighted(1.0)) {
            prop_assert!(w);
            prop_assert_eq!(b as u8 <= 1, true);
        }

        #[test]
        fn assume_rejects_and_redraws(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert!(n != 3);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::new(crate::test_runner::seed_for("x"));
        let mut b = TestRng::new(crate::test_runner::seed_for("x"));
        let strat = 0.0f64..1.0;
        assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failures_panic_with_context() {
        crate::test_runner::run("always_fails", &ProptestConfig::with_cases(1), |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
