//! Open-loop load generation against the loopback HTTP transport.
//!
//! Closed-loop clients (send, wait, send again) cannot measure latency
//! under load: the moment the server slows down, a closed-loop client
//! slows its own arrival rate and the queue never builds, so the
//! reported percentiles describe a gentler workload than any stated
//! rate. This module drives the transport **open-loop**: request
//! arrival times are drawn up front from a fixed-rate or Poisson
//! process at the configured offered rate, and a sender pool works
//! through that schedule regardless of how fast responses come back.
//! Latency is measured **from the scheduled arrival instant** — a
//! sender running behind schedule charges its lag to the request, as a
//! real queueing system would — and senders that fall behind by more
//! than a small slack are counted in [`LoadReport::late_sends`] so
//! generator saturation is visible instead of silently shrinking the
//! offered load.
//!
//! [`run_hostile`] layers a hostile-connection mix (slow-loris header
//! trickles, half-open connects, never-read clients) on top of a
//! well-behaved run, reporting how many of them the transport shed.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use vitcod_transport::{HttpClient, Json};

/// A sender that wakes this far past a request's scheduled arrival
/// counts it as a late send (the generator, not the server, fell
/// behind).
const LATE_SLACK: Duration = Duration::from_millis(5);

/// Head start given to the sender pool to connect before the first
/// scheduled arrival.
const CONNECT_GRACE: Duration = Duration::from_millis(100);

/// One model target the generator cycles through round-robin.
#[derive(Debug, Clone)]
pub struct Target {
    /// Registered model id (requests go to `/v1/models/{id}/classify`).
    pub model: String,
    /// Full pre-encoded classify body (tokens plus optional
    /// `timeout_ms`).
    pub body: String,
}

/// Open-loop scenario parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Offered arrival rate, requests per second.
    pub rate: f64,
    /// Total requests in the schedule.
    pub requests: usize,
    /// Poisson (exponential gaps) vs fixed-rate arrivals.
    pub poisson: bool,
    /// Seed for the arrival process (schedules replay exactly).
    pub seed: u64,
    /// Sender threads working through the schedule (each holds one
    /// keep-alive connection).
    pub senders: usize,
    /// Models the schedule cycles through round-robin.
    pub targets: Vec<Target>,
}

/// What one finished scenario measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Offered arrival rate, requests per second.
    pub offered_rate: f64,
    /// Whether arrivals were Poisson.
    pub poisson: bool,
    /// Requests sent.
    pub sent: usize,
    /// Requests answered `200`.
    pub ok: usize,
    /// Requests answered `504` (expired past their deadline).
    pub timed_out: usize,
    /// Requests that failed any other way (connection errors, 5xx).
    pub failed: usize,
    /// Requests whose sender woke more than the slack past the
    /// scheduled arrival — generator saturation, not server latency.
    pub late_sends: usize,
    /// Scheduled start of the first arrival to the last response, in
    /// seconds.
    pub duration_s: f64,
    /// Completed (`200`) responses per second of `duration_s`.
    pub achieved_rate: f64,
    /// Mean `200` latency from scheduled arrival, seconds.
    pub mean_s: f64,
    /// Median `200` latency, seconds.
    pub p50_s: f64,
    /// 99th-percentile `200` latency, seconds.
    pub p99_s: f64,
    /// 99.9th-percentile `200` latency, seconds.
    pub p999_s: f64,
    /// Worst `200` latency, seconds.
    pub max_s: f64,
}

impl LoadReport {
    /// The report as a JSON object (the harness writes this to disk).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("offered_rate".into(), Json::Number(self.offered_rate)),
            ("poisson".into(), Json::Bool(self.poisson)),
            ("sent".into(), Json::Number(self.sent as f64)),
            ("ok".into(), Json::Number(self.ok as f64)),
            ("timed_out".into(), Json::Number(self.timed_out as f64)),
            ("failed".into(), Json::Number(self.failed as f64)),
            ("late_sends".into(), Json::Number(self.late_sends as f64)),
            ("duration_s".into(), Json::Number(self.duration_s)),
            ("achieved_rate".into(), Json::Number(self.achieved_rate)),
            ("mean_latency_s".into(), Json::Number(self.mean_s)),
            ("p50_latency_s".into(), Json::Number(self.p50_s)),
            ("p99_latency_s".into(), Json::Number(self.p99_s)),
            ("p999_latency_s".into(), Json::Number(self.p999_s)),
            ("max_latency_s".into(), Json::Number(self.max_s)),
        ])
    }
}

/// Nearest-rank percentile of an ascending-sorted sample; 0 when empty.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Draws the whole arrival schedule up front: offsets (seconds from the
/// epoch) of each request, ascending.
fn arrival_offsets(cfg: &LoadConfig) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut t = 0.0f64;
    (0..cfg.requests)
        .map(|_| {
            let gap = if cfg.poisson {
                let u: f64 = rng.gen_range(0.0f64..1.0);
                -(1.0 - u).ln() / cfg.rate
            } else {
                1.0 / cfg.rate
            };
            t += gap;
            t
        })
        .collect()
}

/// What one sender thread accumulated.
#[derive(Default)]
struct SenderTally {
    latencies_s: Vec<f64>,
    sent: usize,
    ok: usize,
    timed_out: usize,
    failed: usize,
    late_sends: usize,
    /// Seconds from the epoch to this sender's last response.
    last_done_s: f64,
}

/// Runs one open-loop scenario against the transport at `addr` and
/// returns the merged report.
///
/// # Panics
///
/// Panics on a zero rate/request/sender count, an empty target list, or
/// when no sender manages to connect.
pub fn run(addr: SocketAddr, cfg: &LoadConfig) -> LoadReport {
    assert!(cfg.rate > 0.0, "rate must be positive");
    assert!(cfg.requests > 0, "requests must be positive");
    assert!(cfg.senders > 0, "senders must be positive");
    assert!(!cfg.targets.is_empty(), "at least one target");

    let offsets = Arc::new(arrival_offsets(cfg));
    let targets = Arc::new(cfg.targets.clone());
    let next = Arc::new(AtomicUsize::new(0));
    let epoch = Instant::now() + CONNECT_GRACE;

    let handles: Vec<_> = (0..cfg.senders)
        .map(|_| {
            let offsets = Arc::clone(&offsets);
            let targets = Arc::clone(&targets);
            let next = Arc::clone(&next);
            std::thread::spawn(move || {
                let mut tally = SenderTally::default();
                let mut client = HttpClient::connect(addr).ok();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&offset) = offsets.get(idx) else {
                        return tally;
                    };
                    let scheduled = epoch + Duration::from_secs_f64(offset);
                    let now = Instant::now();
                    match scheduled.checked_duration_since(now) {
                        Some(wait) => std::thread::sleep(wait),
                        None => {
                            if now.duration_since(scheduled) > LATE_SLACK {
                                tally.late_sends += 1;
                            }
                        }
                    }
                    let target = &targets[idx % targets.len()];
                    let path = format!("/v1/models/{}/classify", target.model);
                    // A dead keep-alive connection gets one reconnect
                    // before the request counts as failed.
                    if client.is_none() {
                        client = HttpClient::connect(addr).ok();
                    }
                    tally.sent += 1;
                    let response = client
                        .as_mut()
                        .and_then(|c| c.post(&path, &target.body).ok());
                    let done_s = epoch.elapsed().as_secs_f64();
                    tally.last_done_s = tally.last_done_s.max(done_s);
                    match response {
                        Some(r) if r.status == 200 => {
                            tally.ok += 1;
                            tally.latencies_s.push((done_s - offset).max(0.0));
                        }
                        Some(r) if r.status == 504 => tally.timed_out += 1,
                        Some(_) => tally.failed += 1,
                        None => {
                            tally.failed += 1;
                            client = None; // force a reconnect next time
                        }
                    }
                }
            })
        })
        .collect();

    let mut latencies: Vec<f64> = Vec::with_capacity(cfg.requests);
    let mut merged = SenderTally::default();
    for h in handles {
        let tally = h.join().expect("sender thread");
        latencies.extend(&tally.latencies_s);
        merged.sent += tally.sent;
        merged.ok += tally.ok;
        merged.timed_out += tally.timed_out;
        merged.failed += tally.failed;
        merged.late_sends += tally.late_sends;
        merged.last_done_s = merged.last_done_s.max(tally.last_done_s);
    }
    latencies.sort_by(f64::total_cmp);
    let first_offset = offsets.first().copied().unwrap_or(0.0);
    let duration_s = (merged.last_done_s - first_offset).max(f64::MIN_POSITIVE);
    LoadReport {
        offered_rate: cfg.rate,
        poisson: cfg.poisson,
        sent: merged.sent,
        ok: merged.ok,
        timed_out: merged.timed_out,
        failed: merged.failed,
        late_sends: merged.late_sends,
        duration_s,
        achieved_rate: merged.ok as f64 / duration_s,
        mean_s: if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        },
        p50_s: percentile(&latencies, 0.50),
        p99_s: percentile(&latencies, 0.99),
        p999_s: percentile(&latencies, 0.999),
        max_s: latencies.last().copied().unwrap_or(0.0),
    }
}

/// The hostile-connection mix driven *alongside* a well-behaved
/// workload: classic slow-loris header trickles, half-open connections
/// that never send a byte, and clients that fire a request but never
/// read the response. The transport must shed all of them (request
/// deadline for the trickles, idle timeout for the silent ones) while
/// the well-behaved load keeps meeting its SLO gate.
#[derive(Debug, Clone)]
pub struct HostileConfig {
    /// Connections that send a request line then trickle header bytes.
    pub loris: usize,
    /// Connections that open and never send anything.
    pub half_open: usize,
    /// Connections that send one valid request and never read the
    /// response.
    pub never_read: usize,
    /// Gap between trickled header bytes (keeps the server's idle
    /// clock reset, which is the whole attack).
    pub trickle: Duration,
    /// How long each hostile connection stays at it before giving up;
    /// a connection still open after this counts as *not* shed.
    pub duration: Duration,
    /// Model id the never-read connections post to.
    pub model: String,
    /// Classify body the never-read connections post.
    pub body: String,
}

/// What the hostile mix observed: a connection is `shed` once the
/// server visibly closes it (EOF, reset, or a `408`/`503` answer).
#[derive(Debug, Clone, Default)]
pub struct HostileReport {
    /// Hostile connections launched (attempted connects included).
    pub launched: usize,
    /// Connections the server shed inside the window.
    pub shed: usize,
    /// Connections still open when their window expired.
    pub survived: usize,
    /// Connects the server refused outright (also a valid shed).
    pub refused: usize,
}

impl HostileReport {
    /// The report as a JSON object (the harness writes this to disk).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("launched".into(), Json::Number(self.launched as f64)),
            ("shed".into(), Json::Number(self.shed as f64)),
            ("survived".into(), Json::Number(self.survived as f64)),
            ("refused".into(), Json::Number(self.refused as f64)),
        ])
    }
}

/// One hostile connection's behaviour after connecting.
enum Hostility<'a> {
    Loris { trickle: Duration },
    HalfOpen,
    NeverRead { model: &'a str, body: &'a str },
}

/// Returns `true` when the server shed the connection inside `window`.
fn drive_hostile(mut stream: TcpStream, kind: &Hostility<'_>, window: Duration) -> bool {
    let deadline = Instant::now() + window;
    let poll = Duration::from_millis(25);
    if stream.set_read_timeout(Some(poll)).is_err() || stream.set_nodelay(true).is_err() {
        return true; // dead on arrival: already shed
    }
    match kind {
        Hostility::Loris { trickle } => {
            if stream
                .write_all(b"POST /v1/models/m/classify HTTP/1.1\r\nX-Slow: ")
                .is_err()
            {
                return true;
            }
            let mut scratch = [0u8; 4096];
            while Instant::now() < deadline {
                if stream.write_all(b"a").is_err() {
                    return true; // reset mid-trickle
                }
                match stream.read(&mut scratch) {
                    // EOF, or a response (the 408) followed by close.
                    Ok(0) => return true,
                    Ok(_) => return true,
                    Err(_) => {} // still being tolerated; keep trickling
                }
                std::thread::sleep(*trickle);
            }
            false
        }
        Hostility::HalfOpen => {
            let mut scratch = [0u8; 64];
            while Instant::now() < deadline {
                match stream.read(&mut scratch) {
                    Ok(0) => return true, // idle-closed by the server
                    Ok(_) => return true,
                    Err(_) => {}
                }
            }
            false
        }
        Hostility::NeverRead { model, body } => {
            let head = format!(
                "POST /v1/models/{model}/classify HTTP/1.1\r\nHost: hostile\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
                body.len()
            );
            if stream.write_all(head.as_bytes()).is_err()
                || stream.write_all(body.as_bytes()).is_err()
            {
                return true;
            }
            // Stay deaf for the whole window — the point is a client
            // that never reads its response — then probe: the server
            // should have parked the answer in the kernel buffer and
            // idle-closed, so the drain ends in EOF/reset.
            if let Some(wait) = deadline.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            let mut sink = [0u8; 16 * 1024];
            loop {
                match stream.read(&mut sink) {
                    Ok(0) => return true, // drained to EOF: shed
                    Ok(_) => {}           // buffered response bytes
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        return false; // socket still open: not shed
                    }
                    Err(_) => return true, // reset: shed
                }
            }
        }
    }
}

/// Launches the hostile mix and blocks until every connection resolves.
pub fn run_hostile(addr: SocketAddr, cfg: &HostileConfig) -> HostileReport {
    let kinds: Vec<(usize, &'static str)> = vec![
        (cfg.loris, "loris"),
        (cfg.half_open, "half_open"),
        (cfg.never_read, "never_read"),
    ];
    let mut handles = Vec::new();
    for (count, kind) in kinds {
        for _ in 0..count {
            let cfg = cfg.clone();
            let kind: &'static str = kind;
            handles.push(std::thread::spawn(move || {
                let stream = match TcpStream::connect(addr) {
                    Ok(s) => s,
                    Err(_) => return (true, true), // refused = shed
                };
                let hostility = match kind {
                    "loris" => Hostility::Loris {
                        trickle: cfg.trickle,
                    },
                    "half_open" => Hostility::HalfOpen,
                    _ => Hostility::NeverRead {
                        model: &cfg.model,
                        body: &cfg.body,
                    },
                };
                (drive_hostile(stream, &hostility, cfg.duration), false)
            }));
        }
    }
    let mut report = HostileReport::default();
    for h in handles {
        let (shed, refused) = h.join().expect("hostile thread");
        report.launched += 1;
        if refused {
            report.refused += 1;
        }
        if shed {
            report.shed += 1;
        } else {
            report.survived += 1;
        }
    }
    report
}

#[cfg(test)]
// Exact float equality below asserts the empty-percentile sentinel and
// deterministic replay of seeded schedules.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate_offsets_are_uniform() {
        let cfg = LoadConfig {
            rate: 100.0,
            requests: 10,
            poisson: false,
            seed: 1,
            senders: 1,
            targets: vec![Target {
                model: "m".into(),
                body: "{}".into(),
            }],
        };
        let offsets = arrival_offsets(&cfg);
        assert_eq!(offsets.len(), 10);
        for (i, &t) in offsets.iter().enumerate() {
            assert!((t - (i + 1) as f64 * 0.01).abs() < 1e-12);
        }
    }

    #[test]
    fn poisson_offsets_are_increasing_with_mean_gap_near_rate() {
        let cfg = LoadConfig {
            rate: 1000.0,
            requests: 5000,
            poisson: true,
            seed: 7,
            senders: 1,
            targets: vec![Target {
                model: "m".into(),
                body: "{}".into(),
            }],
        };
        let offsets = arrival_offsets(&cfg);
        assert!(offsets.windows(2).all(|w| w[1] >= w[0]));
        // Mean inter-arrival gap of an Exp(λ) process is 1/λ; with 5000
        // draws the sample mean lands within a few percent.
        let mean_gap = offsets.last().expect("nonempty") / offsets.len() as f64;
        assert!(
            (mean_gap - 1e-3).abs() < 2e-4,
            "mean gap {mean_gap} far from 1e-3"
        );
        // Same seed, same schedule.
        assert_eq!(offsets, arrival_offsets(&cfg));
    }

    #[test]
    fn percentile_handles_edges() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert!((percentile(&v, 0.50) - 51.0).abs() < 1e-12);
        assert!((percentile(&v, 0.999) - 100.0).abs() < 1e-12);
    }
}
