#![forbid(unsafe_code)]
//! Internal calibration probe: prints raw latencies and speedup ratios
//! of every platform on every model so modelling constants can be sanity
//! checked against the paper's headline numbers. Not a paper artifact.

use vitcod_baselines::{GeneralPlatform, SangerSim, SpAttenSim};
use vitcod_bench::{geomean, vitcod_attention};
use vitcod_model::ViTConfig;
use vitcod_sim::AcceleratorConfig;

fn main() {
    let models = ViTConfig::classification_models();
    let spatten = SpAttenSim::new(AcceleratorConfig::vitcod_paper());
    let sanger = SangerSim::new(AcceleratorConfig::vitcod_paper());
    let sparsity = 0.9;

    let mut cpu_r = vec![];
    let mut edge_r = vec![];
    let mut gpu_r = vec![];
    let mut spat_r = vec![];
    let mut sang_r = vec![];

    println!("model, vitcod_us, cpu_ms, edge_ms, gpu_ms(b), spatten_us, sanger_us");
    for m in &models {
        let vit = vitcod_attention(m, sparsity, true, 1);
        let cpu = GeneralPlatform::cpu_xeon_6230r().simulate_attention(m);
        let edge = GeneralPlatform::edgegpu_xavier_nx().simulate_attention(m);
        let gpu_platform = GeneralPlatform::gpu_2080ti();
        let gpu = gpu_platform.simulate_attention(m);
        let vit_scaled = vitcod_attention(m, sparsity, true, gpu_platform.comparable_vitcod_scale);
        let spat = spatten.simulate_attention(m, sparsity);
        let sang = sanger.simulate_attention(m, sparsity);
        println!(
            "{}, {:.1}, {:.2}, {:.2}, {:.3}, {:.1}, {:.1}",
            m.name,
            vit.latency_s * 1e6,
            cpu.latency_s * 1e3,
            edge.latency_s * 1e3,
            gpu.latency_s * 1e3,
            spat.latency_s * 1e6,
            sang.latency_s * 1e6
        );
        cpu_r.push(cpu.latency_s / vit.latency_s);
        edge_r.push(edge.latency_s / vit.latency_s);
        gpu_r.push(gpu.latency_s / vit_scaled.latency_s);
        spat_r.push(spat.latency_s / vit.latency_s);
        sang_r.push(sang.latency_s / vit.latency_s);
    }
    println!("\nspeedups (geomean over 6 models) @90% sparsity, paper targets in ():");
    println!("  vs CPU     {:8.1}x   (235.3x)", geomean(&cpu_r));
    println!("  vs EdgeGPU {:8.1}x   (142.9x)", geomean(&edge_r));
    println!("  vs GPU     {:8.1}x   (86.0x)", geomean(&gpu_r));
    println!("  vs SpAtten {:8.1}x   (10.1x)", geomean(&spat_r));
    println!("  vs Sanger  {:8.1}x   (6.8x)", geomean(&sang_r));
}
