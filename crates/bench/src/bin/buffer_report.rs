#![forbid(unsafe_code)]
//! SRAM residency report: per-model buffer occupancies against the
//! paper's 320 KB partition, with and without the auto-encoder — the
//! compiler-side feasibility view behind the Sec. V-B resource
//! allocation and the roofline behaviour of Fig. 3.

use vitcod_bench::build_program;
use vitcod_model::ViTConfig;
use vitcod_sim::{check_buffers, AcceleratorConfig};

fn main() {
    let hw = AcceleratorConfig::vitcod_paper();
    println!("SRAM residency — layer-0 occupancies vs the 320 KB partition (act 128 KB / idx 20 KB / out 108 KB)\n");
    println!(
        "{:<14} {:>9} {:>4} {:>8} {:>8} {:>8} {:>18}",
        "model", "sparsity", "AE", "act", "index", "output", "spills"
    );
    for model in ViTConfig::classification_models() {
        for ae in [false, true] {
            let s = model.paper_sparsity;
            let program = build_program(&model, s, ae);
            let reports = check_buffers(&hw, &program);
            let r = &reports[0];
            println!(
                "{:<14} {:>8.0}% {:>4} {:>7.0}% {:>7.0}% {:>7.0}% {:>18}",
                model.name,
                s * 100.0,
                if ae { "yes" } else { "no" },
                r.act_occupancy * 100.0,
                r.index_occupancy * 100.0,
                r.output_occupancy * 100.0,
                if r.fits() {
                    "resident".to_string()
                } else {
                    r.spills.join(",")
                }
            );
        }
    }
    println!("\nreading: 'act' is the whole-layer Q+K+V+S working set. Over 100% means the layer");
    println!("cannot be fully resident and operands stream/refetch — the traffic the cycle model");
    println!("charges and the reason sparse attention is bandwidth-bound (Fig. 3). The AE halves");
    println!("the Q/K share so the *per-head* compressed vectors (the unit the engines actually");
    println!("pin) become resident, which is how it removes the refetch bottleneck.");
}
