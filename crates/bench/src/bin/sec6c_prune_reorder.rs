#![forbid(unsafe_code)]
//! Sec. VI-C ablation: the separate benefits of pruning and reordering.
//!
//! * "pruning offers X×": (prune+reorder) vs reorder-without-pruning —
//!   pruning makes the sparse parts sparser (paper: 5.14× on average,
//!   8.14× at 90%).
//! * "reordering offers Y×": (prune+reorder) vs prune-without-reordering
//!   — reordering polarizes the pattern so the denser engine and the
//!   CSC-balanced sparser engine both run regular workloads
//!   (paper: 2.59× on average, 2.03× at 90%).

use vitcod_bench::geomean;
use vitcod_core::{compile_model, PruneCriterion, SplitConquer, SplitConquerConfig};
use vitcod_model::{AttentionStats, ViTConfig};
use vitcod_sim::{AcceleratorConfig, ViTCoDAccelerator};

fn main() {
    let acc = ViTCoDAccelerator::new(AcceleratorConfig::vitcod_paper());
    let models = [
        ViTConfig::deit_base(),
        ViTConfig::deit_small(),
        ViTConfig::deit_tiny(),
    ];
    let sparsities = [0.6, 0.7, 0.8, 0.9];

    println!("Sec. VI-C — pruning/reordering breakdown (DeiT models, core attention)\n");
    println!(
        "{:<12} {:>9} {:>13} {:>13} {:>13} {:>11} {:>11}",
        "model", "sparsity", "both(us)", "prune-only", "reorder-only", "prune-gain", "reorder-gain"
    );

    let mut prune_gains = vec![];
    let mut reorder_gains = vec![];
    let mut prune_gains_90 = vec![];
    let mut reorder_gains_90 = vec![];
    for m in &models {
        let stats = AttentionStats::for_model(m, vitcod_bench::WORKLOAD_SEED);
        for (si, &s) in sparsities.iter().enumerate() {
            // The paper reports the gain split at the highest sparsity
            // point (0.9) — the last entry of the sweep.
            let at_highest_sparsity = si + 1 == sparsities.len();
            // Full split-and-conquer.
            let both_sc = SplitConquer::new(SplitConquerConfig::with_sparsity(s));
            let both = acc
                .simulate_attention_scaled(&compile_model(m, &both_sc.apply(&stats.maps), None), m);
            // Prune only: never classify columns as global.
            let prune_sc = SplitConquer::new(SplitConquerConfig {
                criterion: PruneCriterion::TargetSparsity(s),
                theta_d: Some(usize::MAX),
            });
            let prune_only = acc.simulate_attention_scaled(
                &compile_model(m, &prune_sc.apply(&stats.maps), None),
                m,
            );
            // Reorder only: dense map, reordering alone (no pruning).
            let reorder_sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.0));
            let reorder_only = acc.simulate_attention_scaled(
                &compile_model(m, &reorder_sc.apply(&stats.maps), None),
                m,
            );

            let pg = reorder_only.latency_s / both.latency_s;
            let rg = prune_only.latency_s / both.latency_s;
            prune_gains.push(pg);
            reorder_gains.push(rg);
            if at_highest_sparsity {
                prune_gains_90.push(pg);
                reorder_gains_90.push(rg);
            }
            println!(
                "{:<12} {:>8.0}% {:>13.1} {:>13.1} {:>13.1} {:>10.2}x {:>10.2}x",
                m.name,
                s * 100.0,
                both.latency_s * 1e6,
                prune_only.latency_s * 1e6,
                reorder_only.latency_s * 1e6,
                pg,
                rg
            );
        }
    }

    println!("\npruning benefit   (vs reorder-only): avg {:.2}x (paper 5.14x), @90% {:.2}x (paper 8.14x)",
        geomean(&prune_gains), geomean(&prune_gains_90));
    println!(
        "reordering benefit (vs prune-only):  avg {:.2}x (paper 2.59x), @90% {:.2}x (paper 2.03x)",
        geomean(&reorder_gains),
        geomean(&reorder_gains_90)
    );
}
