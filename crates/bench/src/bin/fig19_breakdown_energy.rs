#![forbid(unsafe_code)]
//! Fig. 19: (a) normalized latency and latency breakdown
//! (computation / preprocess / data movement) for Sanger vs ViTCoD's two
//! innovations, (b) normalized energy efficiency against all five
//! baselines, and the sparsity-averaged speedups.

use vitcod_baselines::{GeneralPlatform, SangerSim, SpAttenSim};
use vitcod_bench::{geomean, vitcod_attention};
use vitcod_model::ViTConfig;
use vitcod_sim::{AcceleratorConfig, SimReport};

fn main() {
    let models = ViTConfig::classification_models();
    let sanger = SangerSim::new(AcceleratorConfig::vitcod_paper());
    let spatten = SpAttenSim::new(AcceleratorConfig::vitcod_paper());

    // (a) Latency breakdown on DeiT-Base @90%.
    println!("Fig. 19(a) — latency breakdown, DeiT-Base core attention @90% sparsity\n");
    println!(
        "{:<28} {:>12} {:>8} {:>12} {:>14}",
        "design", "latency(us)", "comp%", "preprocess%", "data-move%"
    );
    let m = ViTConfig::deit_base();
    let sang = sanger.simulate_attention(&m, 0.9);
    print_breakdown("Sanger", &sang);
    let sc_only = vitcod_attention(&m, 0.9, false, 1);
    print_breakdown("ViTCoD (split&conquer)", &sc_only);
    let full = vitcod_attention(&m, 0.9, true, 1);
    print_breakdown("ViTCoD (S&C + auto-encoder)", &full);

    println!(
        "\n  S&C over Sanger: {:.1}x (paper: 2.7x); AE adds a further {:.1}x (paper: 2.5x)",
        sang.latency_s / sc_only.latency_s,
        sc_only.latency_s / full.latency_s
    );
    println!(
        "  data-movement share: {:.0}% -> {:.0}% after AE (paper: 50% -> 28%)",
        sc_only.breakdown.data_movement_fraction() * 100.0,
        full.breakdown.data_movement_fraction() * 100.0
    );

    // (b) Energy efficiency @90%, geomean over the six models.
    println!("\nFig. 19(b) — normalized energy efficiency @90% sparsity (geomean over 6 models)\n");
    let mut e_cpu = vec![];
    let mut e_edge = vec![];
    let mut e_gpu = vec![];
    let mut e_spat = vec![];
    let mut e_sang = vec![];
    for m in &models {
        let v = vitcod_attention(m, 0.9, true, 1);
        e_cpu.push(
            v.energy_efficiency_over(&GeneralPlatform::cpu_xeon_6230r().simulate_attention(m)),
        );
        e_edge.push(
            v.energy_efficiency_over(&GeneralPlatform::edgegpu_xavier_nx().simulate_attention(m)),
        );
        e_gpu.push(v.energy_efficiency_over(&GeneralPlatform::gpu_2080ti().simulate_attention(m)));
        e_spat.push(v.energy_efficiency_over(&spatten.simulate_attention(m, 0.9)));
        e_sang.push(v.energy_efficiency_over(&sanger.simulate_attention(m, 0.9)));
    }
    println!("  vs CPU     {:>9.1}x", geomean(&e_cpu));
    println!("  vs EdgeGPU {:>9.1}x", geomean(&e_edge));
    println!("  vs GPU     {:>9.1}x", geomean(&e_gpu));
    println!("  vs SpAtten {:>9.1}x", geomean(&e_spat));
    println!(
        "  vs Sanger  {:>9.1}x   paper: 9.8x (most competitive baseline)",
        geomean(&e_sang)
    );

    // Sparsity-averaged speedups across {60,70,80,90}%.
    println!(
        "\nAveraged core-attention speedups across 60/70/80/90% sparsity (geomean over models):\n"
    );
    let sparsities = [0.6, 0.7, 0.8, 0.9];
    let gpu = GeneralPlatform::gpu_2080ti();
    let mut r = vec![vec![]; 5];
    for m in &models {
        for &s in &sparsities {
            let v = vitcod_attention(m, s, true, 1).latency_s;
            let v_scaled = vitcod_attention(m, s, true, gpu.comparable_vitcod_scale).latency_s;
            r[0].push(
                GeneralPlatform::cpu_xeon_6230r()
                    .simulate_attention(m)
                    .latency_s
                    / v,
            );
            r[1].push(
                GeneralPlatform::edgegpu_xavier_nx()
                    .simulate_attention(m)
                    .latency_s
                    / v,
            );
            r[2].push(gpu.simulate_attention(m).latency_s / v_scaled);
            r[3].push(spatten.simulate_attention(m, s).latency_s / v);
            r[4].push(sanger.simulate_attention(m, s).latency_s / v);
        }
    }
    let labels = ["CPU", "EdgeGPU", "GPU", "SpAtten", "Sanger"];
    let paper = [127.2, 77.0, 46.5, 6.8, 4.3];
    for i in 0..5 {
        println!(
            "  vs {:<8} {:>8.1}x   paper: {:.1}x",
            labels[i],
            geomean(&r[i]),
            paper[i]
        );
    }
}

fn print_breakdown(name: &str, r: &SimReport) {
    let t = r.breakdown.total().max(1) as f64;
    println!(
        "{:<28} {:>12.1} {:>7.0}% {:>11.0}% {:>13.0}%",
        name,
        r.latency_s * 1e6,
        r.breakdown.compute_cycles as f64 / t * 100.0,
        r.breakdown.preprocess_cycles as f64 / t * 100.0,
        r.breakdown.data_movement_cycles as f64 / t * 100.0
    );
}
