#![forbid(unsafe_code)]
//! Fig. 16: layout floorplan of the ViTCoD accelerator.

use vitcod_sim::{floorplan, total_area_mm2, AcceleratorConfig};

fn main() {
    let cfg = AcceleratorConfig::vitcod_paper();
    println!("Fig. 16 — ViTCoD accelerator floorplan (28 nm-class area model)\n");
    println!("{:<42} {:>10}", "component", "area (mm^2)");
    for p in floorplan(&cfg) {
        println!("{:<42} {:>10.3}", p.name, p.area_mm2);
    }
    println!("{:<42} {:>10.3}", "TOTAL", total_area_mm2(&cfg));
    println!("\npaper: total area 3 mm^2 with 320 KB SRAM and 512 MACs at 500 MHz, 323.9 mW.");
}
