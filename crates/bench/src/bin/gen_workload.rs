#![forbid(unsafe_code)]
//! Workload compiler CLI: runs the split-and-conquer pass for a model
//! and writes the compiled accelerator program (the Fig. 14 one-time
//! compilation artifact) plus Fig. 8-style mask images to a directory.
//!
//! Usage:
//!   cargo run -p vitcod-bench --bin gen_workload --release -- \
//!       [model] [sparsity] [out_dir]
//! Defaults: DeiT-Base, 0.9, ./workload_out

use std::fs;
use std::path::PathBuf;

use vitcod_core::{
    compile_model, mask_grid_to_pgm, save_program, AutoEncoderConfig, SplitConquer,
    SplitConquerConfig,
};
use vitcod_model::{AttentionStats, ViTConfig};

fn model_by_name(name: &str) -> Option<ViTConfig> {
    ViTConfig::all_paper_models()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(name))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let model = args
        .get(1)
        .and_then(|n| model_by_name(n))
        .unwrap_or_else(ViTConfig::deit_base);
    let sparsity: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.9);
    let out_dir = PathBuf::from(
        args.get(3)
            .cloned()
            .unwrap_or_else(|| "workload_out".into()),
    );

    println!(
        "compiling {} at {:.0}% sparsity into {}",
        model.name,
        sparsity * 100.0,
        out_dir.display()
    );
    fs::create_dir_all(&out_dir).expect("create output directory");

    let stats = AttentionStats::for_model(&model, vitcod_bench::WORKLOAD_SEED);
    let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(sparsity));
    let polarized = sc.apply(&stats.maps);
    let program = compile_model(
        &model,
        &polarized,
        Some(AutoEncoderConfig::half(model.heads)),
    );

    // 1. The compiled program artifact.
    let program_path = out_dir.join("program.vitcod");
    fs::write(&program_path, save_program(&program)).expect("write program artifact");
    println!(
        "  wrote {} ({} layers, {:.1}% sparsity, {:.1} M attention MACs)",
        program_path.display(),
        program.layers.len(),
        program.overall_sparsity() * 100.0,
        program.total_macs() as f64 / 1e6
    );

    // 2. Fig. 8-style mosaics: pruned-only and polarized masks.
    let pruned: Vec<_> = polarized.iter().flatten().map(|p| &p.pruned).collect();
    let reordered: Vec<_> = polarized
        .iter()
        .flatten()
        .map(|p| p.polarized_mask())
        .collect();
    let cols = model.heads;
    fs::write(
        out_dir.join("masks_pruned.pgm"),
        mask_grid_to_pgm(&pruned, cols),
    )
    .expect("write pruned mosaic");
    fs::write(
        out_dir.join("masks_polarized.pgm"),
        mask_grid_to_pgm(&reordered, cols),
    )
    .expect("write polarized mosaic");
    println!(
        "  wrote {} and {} ({} heads, viewable as PGM)",
        out_dir.join("masks_pruned.pgm").display(),
        out_dir.join("masks_polarized.pgm").display(),
        pruned.len()
    );

    // 3. Per-layer summary.
    let mut summary = String::from("layer,mean_global_tokens,attention_macs\n");
    for layer in &program.layers {
        summary.push_str(&format!(
            "{},{:.2},{}\n",
            layer.layer,
            layer.mean_global_tokens(),
            layer.total_macs()
        ));
    }
    fs::write(out_dir.join("layers.csv"), summary).expect("write summary");
    println!("  wrote {}", out_dir.join("layers.csv").display());
    println!("done. Reload the program with vitcod_core::load_program.");
}
