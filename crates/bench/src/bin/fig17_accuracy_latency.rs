#![forbid(unsafe_code)]
//! Fig. 17: accuracy vs attention-layer latency trade-off of the full
//! ViTCoD algorithm (split-and-conquer + 50% AE) against unpruned
//! baselines on the six DeiT/LeViT models, plus the sparsity-ratio
//! ablation.

use vitcod_bench::vitcod_attention;
use vitcod_core::{PipelineConfig, ViTCoDPipeline};
use vitcod_model::{SyntheticTask, SyntheticTaskConfig, TrainConfig, ViTConfig};

fn main() {
    let task = SyntheticTask::generate(SyntheticTaskConfig::default());
    println!("Fig. 17 — ViTCoD vs unpruned baselines: accuracy (synthetic task, reduced twins)");
    println!("          and attention-layer latency (full-scale simulator)\n");
    println!(
        "{:<12} {:>9} {:>10} {:>10} {:>7} {:>13} {:>13} {:>9}",
        "model",
        "sparsity",
        "dense-acc",
        "vitcod-acc",
        "drop",
        "dense-lat(us)",
        "vitcod(us)",
        "saved"
    );

    for cfg in ViTConfig::classification_models() {
        let sparsity = cfg.paper_sparsity;
        // Accuracy: full pipeline on the reduced trainable twin.
        let mut pipe_cfg = PipelineConfig::paper_default(cfg.reduced_for_training());
        pipe_cfg.seed = 0xC0DE ^ cfg.name.bytes().map(u64::from).sum::<u64>();
        pipe_cfg.pretrain = TrainConfig {
            epochs: 16,
            ..Default::default()
        };
        pipe_cfg.finetune = TrainConfig {
            epochs: 8,
            lr: 1e-3,
            ..Default::default()
        };
        let report = ViTCoDPipeline::new(pipe_cfg).run(&task);

        // Latency: full-scale attention simulation.
        let dense = vitcod_attention(&cfg, 0.0, false, 1);
        let vitcod = vitcod_attention(&cfg, sparsity, true, 1);
        let saved = 1.0 - vitcod.latency_s / dense.latency_s;
        println!(
            "{:<12} {:>8.0}% {:>9.1}% {:>9.1}% {:>6.1}% {:>13.1} {:>13.1} {:>8.1}%",
            cfg.name,
            sparsity * 100.0,
            report.dense_accuracy * 100.0,
            report.final_accuracy * 100.0,
            report.accuracy_drop() * 100.0,
            dense.latency_s * 1e6,
            vitcod.latency_s * 1e6,
            saved * 100.0
        );
    }
    println!("\npaper: 45.1–85.8% (DeiT) and 72.0–84.3% (LeViT) attention-latency reductions at");
    println!("       comparable accuracy (<1% drop at 90% DeiT / 80% LeViT sparsity).");

    // Sparsity-ratio ablation on DeiT-Small.
    println!("\nSparsity-ratio ablation (DeiT-Small attention latency, full ViTCoD):");
    println!("  {:>9} {:>13} {:>9}", "sparsity", "latency(us)", "saved");
    let cfg = ViTConfig::deit_small();
    let dense = vitcod_attention(&cfg, 0.0, false, 1).latency_s;
    for s in [0.50, 0.60, 0.70, 0.80, 0.90, 0.95] {
        let lat = vitcod_attention(&cfg, s, true, 1).latency_s;
        println!(
            "  {:>8.0}% {:>13.1} {:>8.1}%",
            s * 100.0,
            lat * 1e6,
            (1.0 - lat / dense) * 100.0
        );
    }
}
