#![forbid(unsafe_code)]
//! Design-choice ablation (paper Sec. V-A, Fig. 11): S-stationary vs
//! K-stationary SDDMM dataflows across sparsity levels.
//!
//! S-stationary maps attention scores spatially onto PEs (full Q/K reuse
//! but idle PEs at pruned positions and large partial-sum registers);
//! K-stationary keeps K resident, maps the feature dimension spatially
//! and enumerates only the kept positions via the CSC index.

use vitcod_bench::polarize;
use vitcod_model::ViTConfig;
use vitcod_sim::{s_stationary_sddmm_cycles, sparser_sddmm_cycles, AcceleratorConfig};

fn main() {
    let cfg = AcceleratorConfig::vitcod_paper();
    let model = ViTConfig::deit_base();
    println!("Dataflow ablation — DeiT-Base SDDMM, 64 lines x 8 MACs, per layer-head mean\n");
    println!(
        "{:>9} {:>18} {:>18} {:>12}",
        "sparsity", "S-stationary(cyc)", "K-stationary(cyc)", "K adv."
    );
    for s in [0.0f64, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95] {
        let density = (1.0 - s).max(1e-3);
        let s_cycles = s_stationary_sddmm_cycles(
            model.tokens,
            model.head_dim(),
            density,
            cfg.mac_lines,
            cfg.macs_per_line,
        );
        // K-stationary on real polarized masks: mean over all heads.
        let k_cycles = if s == 0.0 {
            vitcod_sim::denser_sddmm_cycles(
                model.tokens,
                model.tokens,
                model.head_dim(),
                cfg.mac_lines,
                cfg.macs_per_line,
            )
        } else {
            let heads = polarize(&model, s);
            let mut total = 0u64;
            let mut count = 0u64;
            for ph in heads.iter().flatten() {
                let w = ph.workload();
                let dense_part = vitcod_sim::denser_sddmm_cycles(
                    w.tokens,
                    w.denser_cols,
                    model.head_dim(),
                    cfg.mac_lines,
                    cfg.macs_per_line,
                );
                let col_nnz: Vec<usize> = ph
                    .polarized_mask()
                    .col_nnz()
                    .into_iter()
                    .skip(w.denser_cols)
                    .collect();
                let sparse_part = sparser_sddmm_cycles(
                    &col_nnz,
                    model.head_dim(),
                    cfg.mac_lines,
                    cfg.macs_per_line,
                );
                total += dense_part + sparse_part;
                count += 1;
            }
            total / count.max(1)
        };
        println!(
            "{:>8.0}% {:>18} {:>18} {:>11.2}x",
            s * 100.0,
            s_cycles,
            k_cycles,
            s_cycles as f64 / k_cycles as f64
        );
    }
    println!("\npaper: K-stationary suits ViTCoD's high-sparsity polarized patterns (only paired");
    println!("       Q/K multiply, small buffers); S-stationary wins only near-dense, which is");
    println!("       why Sanger adopts it for medium-sparsity NLP and ViTCoD does not.");
}
