#![forbid(unsafe_code)]
//! Table I: taxonomy of representative sparse accelerators.

fn main() {
    println!(
        "Table I — A taxonomy for classifying and comparing representative sparse accelerators\n"
    );
    print!("{}", vitcod_core::taxonomy::render());
    println!("\npaper: ViTCoD is the only *static*, denser&sparser-regular, low-traffic, low-bandwidth, high-sparsity co-design targeting ViTs.");
}
