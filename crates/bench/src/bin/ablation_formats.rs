#![forbid(unsafe_code)]
//! Design-choice ablation (paper Sec. V-B): CSC vs COO sparse-index
//! storage for the pre-loaded fixed attention masks, across sparsities.
//!
//! The paper picks CSC "for better matching with the adopted
//! K-stationary dataflow, which produces attention maps column by
//! column" — and because its footprint must fit the 20 KB index buffer.

use vitcod_bench::polarize;
use vitcod_core::{AttentionMask, CooMatrix, CscMatrix};
use vitcod_model::ViTConfig;
use vitcod_sim::AcceleratorConfig;

fn main() {
    let model = ViTConfig::deit_base();
    let index_buffer = AcceleratorConfig::vitcod_paper().sram.index_buffer_bytes;
    println!("Index-format ablation — DeiT-Base sparser-residue indexes (per head, mean)\n");
    println!(
        "{:>9} {:>11} {:>11} {:>11} {:>14} {:>14}",
        "sparsity", "nnz", "CSC (B)", "COO (B)", "CSC saves", "fits 20KB?"
    );
    for s in [0.6, 0.7, 0.8, 0.9, 0.95] {
        let heads = polarize(&model, s);
        let mut csc_bytes = 0usize;
        let mut coo_bytes = 0usize;
        let mut nnz = 0usize;
        let mut count = 0usize;
        for ph in heads.iter().flatten() {
            let csc = ph.sparser_csc();
            let coo = CooMatrix::from_mask(&AttentionMask::from_csc(&csc));
            csc_bytes += csc.index_bytes();
            coo_bytes += coo.index_bytes();
            nnz += csc.nnz();
            count += 1;
        }
        let (csc_bytes, coo_bytes, nnz) = (csc_bytes / count, coo_bytes / count, nnz / count);
        println!(
            "{:>8.0}% {:>11} {:>11} {:>11} {:>13.1}% {:>14}",
            s * 100.0,
            nnz,
            csc_bytes,
            coo_bytes,
            (1.0 - csc_bytes as f64 / coo_bytes as f64) * 100.0,
            if csc_bytes <= index_buffer {
                "yes"
            } else {
                "NO"
            }
        );
    }
    println!("\nAlso: the CSC column walk enumerates, for each resident K vector, exactly the Q");
    println!("rows to pair with it — the access order the K-stationary SDDMM needs; COO would");
    println!("require either a sort or random access. (CscMatrix::col_rows is O(1) per column.)");
    let sample = polarize(&model, 0.9);
    let csc: CscMatrix = sample[0][0].sparser_csc();
    println!(
        "\nexample: layer 0 head 0, column {} pairs with Q rows {:?}",
        sample[0][0].num_global(),
        &csc.col_rows(sample[0][0].num_global())
    );
}
