#![forbid(unsafe_code)]
//! Design-choice ablation (paper Sec. V-B): dynamic workload-
//! proportional PE allocation between the denser and sparser engines,
//! versus a static 50/50 split.
//!
//! Because the number of global tokens varies across layers and heads,
//! a fixed split starves whichever engine got the bigger share of the
//! current layer's work; the paper's dynamic allocation re-balances per
//! layer using the statically-known masks.

use vitcod_bench::build_program;
use vitcod_model::ViTConfig;
use vitcod_sim::{AcceleratorConfig, PeAllocation, ViTCoDAccelerator};

fn main() {
    println!("PE-allocation ablation — core attention latency (us), dynamic vs static 50/50\n");
    println!(
        "{:<14} {:>9} {:>11} {:>11} {:>9}",
        "model", "sparsity", "dynamic", "static", "gain"
    );
    let dynamic_hw = AcceleratorConfig::vitcod_paper();
    let static_hw = AcceleratorConfig {
        pe_allocation: PeAllocation::StaticEven,
        ..AcceleratorConfig::vitcod_paper()
    };
    for model in ViTConfig::classification_models() {
        for s in [0.8, 0.9] {
            let program = build_program(&model, s, true);
            let dyn_r =
                ViTCoDAccelerator::new(dynamic_hw).simulate_attention_scaled(&program, &model);
            let sta_r =
                ViTCoDAccelerator::new(static_hw).simulate_attention_scaled(&program, &model);
            println!(
                "{:<14} {:>8.0}% {:>11.1} {:>11.1} {:>8.2}x",
                model.name,
                s * 100.0,
                dyn_r.latency_s * 1e6,
                sta_r.latency_s * 1e6,
                sta_r.latency_s / dyn_r.latency_s
            );
        }
    }
    println!("\npaper: dynamic allocation is what lets one denser + one sparser engine keep both");
    println!("       workload classes busy despite per-layer/head global-token variation.");
}
