//! Open-loop SLO load harness: drives the full serving stack (engine →
//! queue → batcher → HTTP transport) over loopback with scheduled
//! arrivals, then drains `/v1/metrics` and `/v1/trace` and writes
//! everything to disk.
//!
//! ```text
//! cargo run --release -p vitcod-bench --bin load_harness -- \
//!     --scenario steady --out target/load
//! ```
//!
//! Scenarios (`--scenario`):
//!
//! * `steady` — single model, Poisson arrivals at 0.7× the measured
//!   saturation rate; gates p99 ≤ deadline with zero timeouts.
//! * `mixed`  — fp32 and int8 engines round-robin under the same gate.
//! * `reload` — steady traffic while a background thread hot-swaps the
//!   artifact over the wire every 200 ms; the gate must hold through
//!   the swaps.
//! * `storm`  — a deadline storm: the same offered rate but a 1 ms
//!   deadline, so requests expire en masse; gates that the server
//!   keeps answering (no connection errors, `/healthz` stays 200),
//!   that the trace recorded the expiries, and that the slow-request
//!   log retained span trees for the blown deadlines.
//! * `slowloris` — a hostile-connection mix (trickled headers,
//!   half-open connects, never-read clients) riding alongside steady
//!   traffic; gates that the transport sheds every hostile connection
//!   while the well-behaved load still meets its SLO.
//! * `degrade` — two phases under an in-process `vitcod-obs` burn-rate
//!   monitor: an induced outage (1 ms deadlines → mass expiry) followed
//!   by clean recovery traffic. Gates that the availability alert walks
//!   `pending → firing → resolved` as load recedes, that the recovery
//!   phase still meets the SLO, and that `/v1/traces` holds tail-kept
//!   (not head-sampled) span trees from the outage; writes the
//!   transition log to `alerts.json`.
//! * `smoke`  — a few hundred requests at a low rate plus an
//!   `/v1/metrics` format check; the CI workflow runs this one (with
//!   `--hold-s` so the `vitcod-obs` monitor binary can scrape the live
//!   server before shutdown).
//!
//! Every scenario writes `report.json` (arrival process, counts,
//! latency percentiles, final `/v1/stats` snapshot), `metrics.txt`
//! (the Prometheus exposition), `trace.json` (the drained event
//! ring), `traces.json` (sampled span trees), `slowlog.json` (the
//! slow-request forensics ring) and `addr.txt` (the bound loopback
//! address, written before load starts so an external monitor can
//! attach) into `--out`.
//!
//! The model is the reduced DeiT-Tiny training shape, so the harness
//! exercises the full stack in seconds even on one CPU; the
//! latency-of-record numbers at the paper shape live in
//! `benches/serving.rs` → `BENCH_serving.json`.

#![forbid(unsafe_code)]

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vitcod_autograd::ParamStore;
use vitcod_bench::load::{self, HostileConfig, LoadConfig, Target};
use vitcod_engine::{save_compiled_vit, CompiledVit, Engine, Precision, Prediction};
use vitcod_model::{Sample, ViTConfig, VisionTransformer};
use vitcod_obs::{fetch_metrics, AlertState, Objective, SloConfig, SloTracker, Transition};
use vitcod_serve::{BatchConfig, ModelRegistry, Server, TailConfig, TracingConfig};
use vitcod_tensor::{Initializer, Matrix};
use vitcod_transport::{api, HttpClient, HttpServer, Json, TransportConfig};

const IN_DIM: usize = 8;
const CLASSES: usize = 4;
/// Generator rate cap: 1-CPU CI boxes cannot hold sub-10 ms sleeps
/// accurately, and the harness gates on its own `late_sends`.
const MAX_RATE: f64 = 100.0;

struct Args {
    scenario: String,
    out: PathBuf,
    requests: Option<usize>,
    rate: Option<f64>,
    /// Keep the server alive this many seconds after the load finishes
    /// (before draining and shutdown), so an external monitor —
    /// `vitcod-obs` in CI — can scrape the live endpoints.
    hold_s: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scenario: "steady".into(),
        out: PathBuf::from("target/load"),
        requests: None,
        rate: None,
        hold_s: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--scenario" => args.scenario = value("--scenario"),
            "--out" => args.out = PathBuf::from(value("--out")),
            "--requests" => args.requests = Some(value("--requests").parse().expect("--requests")),
            "--rate" => args.rate = Some(value("--rate").parse().expect("--rate")),
            "--hold-s" => args.hold_s = Some(value("--hold-s").parse().expect("--hold-s")),
            other => {
                panic!("unknown flag '{other}' (see --scenario/--out/--requests/--rate/--hold-s)")
            }
        }
    }
    args
}

fn build_compiled() -> CompiledVit {
    let cfg = ViTConfig::deit_tiny().reduced_for_training();
    let mut store = ParamStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(0x10AD);
    let vit = VisionTransformer::new(&cfg, IN_DIM, CLASSES, &mut store, &mut rng);
    CompiledVit::from_parts(&vit, &store)
}

fn tokens_for(compiled: &CompiledVit, seed: u64) -> Matrix {
    Initializer::Normal { std: 1.0 }.sample(compiled.config().tokens, IN_DIM, seed)
}

/// Best-of-5 single-sample service time: the honest per-request compute
/// cost, independent of batch amortization.
fn service_time_s(engine: &Engine) -> f64 {
    let compiled = engine.compiled();
    let sample = Sample {
        tokens: tokens_for(compiled, 0x51),
        label: 0,
    };
    let samples = [sample];
    let _: Vec<Prediction> = engine.infer_batch(&samples); // warm-up
    (0..5)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(engine.infer_batch(&samples));
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn classify_body(tokens: &Matrix, timeout_ms: u64) -> String {
    Json::Object(vec![
        ("tokens".into(), api::tokens_json(tokens)),
        ("timeout_ms".into(), Json::Number(timeout_ms as f64)),
    ])
    .to_string()
}

/// Drains one endpoint into a string, panicking on transport failure —
/// the harness's whole point is that these endpoints answer under load.
fn fetch(addr: SocketAddr, path: &str) -> String {
    let mut client = HttpClient::connect(addr).expect("connect for fetch");
    let resp = client.get(path).expect("GET");
    assert_eq!(resp.status, 200, "{path} answered {}", resp.status);
    resp.body_str()
}

fn transition_json(t: &Transition) -> Json {
    Json::Object(vec![
        ("alert".into(), Json::String(t.alert.clone())),
        ("at_s".into(), Json::Number(t.at_s)),
        ("from".into(), Json::String(t.from.as_str().into())),
        ("to".into(), Json::String(t.to.as_str().into())),
        ("fast_burn".into(), Json::Number(t.fast_burn)),
        ("slow_burn".into(), Json::Number(t.slow_burn)),
    ])
}

fn main() {
    let args = parse_args();
    std::fs::create_dir_all(&args.out).expect("create --out dir");

    let compiled = build_compiled();
    let fp32 = Engine::builder(compiled.clone()).build();
    let s1 = service_time_s(&fp32);
    // 0.7× saturation: the load level the SLO is stated at. One sample
    // every s1 seconds is the engine's worst-case (fill-1) service
    // rate, so ρ ≤ 0.7 holds regardless of how well batches fill.
    let steady_rate = args.rate.unwrap_or((0.7 / s1).min(MAX_RATE));
    // The SLO deadline: generous against compute (12× the service
    // time) but never below 1 s, so CI noise on a shared box does not
    // flap the gate.
    let deadline = (12.0 * s1).max(1.0);
    let deadline_ms = (deadline * 1e3).ceil() as u64;
    println!(
        "model {} ({} tokens, {} dim): service time {:.3} ms -> rate {:.1} req/s, deadline {} ms",
        compiled.config().name,
        compiled.config().tokens,
        compiled.config().dim,
        s1 * 1e3,
        steady_rate,
        deadline_ms
    );

    let mut registry = ModelRegistry::new();
    registry.register("tiny-fp32", fp32).expect("register fp32");
    if args.scenario == "mixed" {
        let int8 = Engine::builder(compiled.clone())
            .precision(Precision::Int8)
            .build();
        registry.register("tiny-int8", int8).expect("register int8");
    }
    // Head sampling: the smoke run samples everything so CI's
    // traces.json artifact is never empty; the latency-gated scenarios
    // sample lightly, the way production would.
    let sample_rate = if args.scenario == "smoke" { 1.0 } else { 0.05 };
    let server = Server::start_with_tracing(
        registry,
        BatchConfig {
            max_batch_size: 8,
            max_wait: Duration::from_millis(5),
            queue_capacity: 64,
            workers: 2,
        },
        TracingConfig {
            sample_rate,
            slow_threshold: None,
            // Tail retention on in every scenario: the serving bench
            // gates its cost at ≤1% of p99, so the harness runs the
            // production configuration, and degrade/storm rely on it to
            // retain span trees for expired (never head-sampled)
            // requests.
            tail: Some(TailConfig::default()),
        },
    );
    let mut transport_config = TransportConfig::default();
    if args.scenario == "slowloris" {
        // Tight shedding budgets so the hostile mix resolves within the
        // run, and enough handlers that the attack cannot monopolize
        // the pool while it is being shed.
        transport_config.handler_threads = 12;
        transport_config.idle_timeout = Duration::from_millis(750);
        transport_config.request_deadline = Duration::from_millis(500);
    }
    if args.scenario == "degrade" {
        // The induce phase saturates the default handler pool with
        // expiring requests; give the monitoring plane headroom so the
        // scraper stays on schedule *during* the outage it is watching.
        transport_config.handler_threads = 12;
    }
    if args.scenario == "reload" {
        // Save the artifact the background reloader will swap in.
        let path = args.out.join("tiny-fp32.vitcod");
        std::fs::write(&path, save_compiled_vit(&compiled, Precision::Fp32))
            .expect("write artifact");
        transport_config.artifact_root = Some(args.out.clone());
    }
    let http = HttpServer::bind("127.0.0.1:0", server, transport_config).expect("bind loopback");
    let addr = http.local_addr();
    // Published before any load starts so an external monitor (the CI
    // `vitcod-obs` step) can attach to the live server.
    std::fs::write(args.out.join("addr.txt"), addr.to_string()).expect("write addr.txt");

    let (requests, rate, timeout_ms, poisson) = match args.scenario.as_str() {
        "steady" | "mixed" | "reload" | "slowloris" => {
            (args.requests.unwrap_or(256), steady_rate, deadline_ms, true)
        }
        // Deadline storm: same offered load, but a deadline shorter
        // than one batcher wait, so queued requests expire en masse.
        "storm" => (args.requests.unwrap_or(256), steady_rate, 1, true),
        // Degrade: this is the *recovery* phase; an induced outage (1 ms
        // deadlines) runs first under an in-process burn-rate monitor.
        "degrade" => (args.requests.unwrap_or(400), steady_rate, deadline_ms, true),
        "smoke" => (
            args.requests.unwrap_or(200),
            args.rate.unwrap_or(steady_rate.min(50.0)),
            deadline_ms,
            true,
        ),
        other => {
            panic!("unknown scenario '{other}' (steady|mixed|reload|storm|slowloris|degrade|smoke)")
        }
    };

    let mut targets = vec![Target {
        model: "tiny-fp32".into(),
        body: classify_body(&tokens_for(&compiled, 0xA1), timeout_ms),
    }];
    if args.scenario == "mixed" {
        targets.push(Target {
            model: "tiny-int8".into(),
            body: classify_body(&tokens_for(&compiled, 0xA2), timeout_ms),
        });
    }
    let cfg = LoadConfig {
        rate,
        requests,
        poisson,
        seed: 0x0BE7,
        senders: 4,
        targets,
    };

    // Reload-under-load: a background thread hot-swaps the artifact
    // every 200 ms until the run finishes.
    let reload_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let reloader = (args.scenario == "reload").then(|| {
        let stop = std::sync::Arc::clone(&reload_stop);
        let path = args.out.join("tiny-fp32.vitcod");
        std::thread::spawn(move || {
            let body = Json::Object(vec![(
                "path".into(),
                Json::String(path.to_string_lossy().into_owned()),
            )])
            .to_string();
            let mut swaps = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let mut client = HttpClient::connect(addr).expect("reloader connect");
                let resp = client
                    .post("/v1/models/tiny-fp32/reload", &body)
                    .expect("reload request");
                assert_eq!(resp.status, 200, "reload failed: {}", resp.body_str());
                swaps += 1;
                std::thread::sleep(Duration::from_millis(200));
            }
            swaps
        })
    });

    // The hostile mix runs for the expected span of the well-behaved
    // schedule, so shedding happens *under* load, not after it.
    let hostile = (args.scenario == "slowloris").then(|| {
        let window = Duration::from_secs_f64((requests as f64 / rate + 2.0).min(30.0));
        let hostile_cfg = HostileConfig {
            loris: 3,
            half_open: 3,
            never_read: 2,
            trickle: Duration::from_millis(50),
            duration: window,
            model: "tiny-fp32".into(),
            body: classify_body(&tokens_for(&compiled, 0xBAD), timeout_ms),
        };
        std::thread::spawn(move || load::run_hostile(addr, &hostile_cfg))
    });

    // Degrade: a burn-rate monitor scrapes the live /v1/metrics across
    // both phases, exactly as the standalone `vitcod-obs` binary would
    // from outside the process. Windows are scaled down to the harness
    // timeline (each phase spans several seconds at MAX_RATE).
    let monitor_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let monitor = (args.scenario == "degrade").then(|| {
        let stop = std::sync::Arc::clone(&monitor_stop);
        std::thread::spawn(move || {
            let mut tracker = SloTracker::new(SloConfig {
                name: "availability".into(),
                objective: Objective::Availability,
                error_budget: 0.01,
                fast_window_s: 1.0,
                slow_window_s: 4.0,
                fast_burn: 10.0,
                slow_burn: 2.0,
            });
            let endpoint = addr.to_string();
            let started = Instant::now();
            loop {
                let scraped = fetch_metrics(&endpoint);
                // Stamp *after* the fetch: if the scrape stalled behind
                // a saturated server, the counters reflect the time the
                // response arrived, not the time the poll started.
                let t_s = started.elapsed().as_secs_f64();
                if let Ok(exp) = scraped {
                    let requests = exp.sum("vitcod_requests_total", &[]);
                    let timeouts = exp.sum("vitcod_timeouts_total", &[]);
                    tracker.observe(t_s, requests, timeouts);
                    if let Some(tr) = tracker.eval(t_s) {
                        println!(
                            "  alert '{}' {} -> {} at t={:.2}s (fast burn {:.1}, slow burn {:.1})",
                            tr.alert, tr.from, tr.to, tr.at_s, tr.fast_burn, tr.slow_burn
                        );
                    }
                }
                if stop.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(250));
            }
            tracker
        })
    });

    // Degrade phase 1: the same offered load, but with deadlines shorter
    // than one batcher wait — requests expire en masse and burn the
    // availability budget. These requests are not head-sampled; the tail
    // sampler must retain their span trees.
    let induce = (args.scenario == "degrade").then(|| {
        let storm_cfg = LoadConfig {
            rate,
            requests,
            poisson: true,
            seed: 0x0BE8,
            senders: 4,
            targets: vec![Target {
                model: "tiny-fp32".into(),
                body: classify_body(&tokens_for(&compiled, 0xA1), 1),
            }],
        };
        println!(
            "degrade phase 1 (induce): {} requests at {:.1} req/s, timeout 1 ms",
            storm_cfg.requests, storm_cfg.rate
        );
        load::run(addr, &storm_cfg)
    });

    println!(
        "scenario {}: {} requests at {:.1} req/s (poisson), timeout {} ms",
        args.scenario, cfg.requests, cfg.rate, timeout_ms
    );
    let report = load::run(addr, &cfg);
    // Give the monitor one fast window of quiet so the firing alert can
    // observe the recovery and resolve before we stop scraping.
    let tracker = monitor.map(|handle| {
        std::thread::sleep(Duration::from_millis(1500));
        monitor_stop.store(true, std::sync::atomic::Ordering::Relaxed);
        handle.join().expect("monitor thread")
    });
    let hostile = hostile.map(|h| h.join().expect("hostile mix"));
    reload_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let swaps = reloader.map(|h| h.join().expect("reloader"));

    // Keep the server alive so an external monitor can finish scraping
    // it (CI runs `vitcod-obs` against the smoke scenario this way).
    if let Some(hold_s) = args.hold_s {
        println!("holding server open for {hold_s}s (--hold-s)");
        std::thread::sleep(Duration::from_secs(hold_s));
    }

    // Drain observability endpoints over the wire BEFORE shutdown, then
    // take the final stats snapshot for the report.
    let metrics_body = fetch(addr, "/v1/metrics");
    let trace_body = fetch(addr, "/v1/trace");
    let traces_body = fetch(addr, "/v1/traces");
    let slowlog_body = fetch(addr, "/v1/slowlog");
    let health_body = fetch(addr, "/healthz");
    let stats = http.shutdown();

    std::fs::write(args.out.join("metrics.txt"), &metrics_body).expect("write metrics.txt");
    std::fs::write(args.out.join("trace.json"), &trace_body).expect("write trace.json");
    std::fs::write(args.out.join("traces.json"), &traces_body).expect("write traces.json");
    std::fs::write(args.out.join("slowlog.json"), &slowlog_body).expect("write slowlog.json");
    let mut report_fields = vec![
        ("scenario".into(), Json::String(args.scenario.clone())),
        ("service_time_s".into(), Json::Number(s1)),
        ("deadline_s".into(), Json::Number(deadline)),
        ("report".into(), report.to_json()),
        ("stats".into(), api::stats_json(&stats)),
    ];
    if let Some(swaps) = swaps {
        report_fields.push(("reloads".into(), Json::Number(swaps as f64)));
    }
    if let Some(hostile) = &hostile {
        report_fields.push(("hostile".into(), hostile.to_json()));
    }
    if let Some(induce) = &induce {
        report_fields.push(("induce".into(), induce.to_json()));
    }
    if let Some(tracker) = &tracker {
        let transitions = tracker
            .transitions()
            .iter()
            .map(transition_json)
            .collect::<Vec<_>>();
        let alerts = Json::Object(vec![
            ("alert".into(), Json::String(tracker.config().name.clone())),
            (
                "objective".into(),
                Json::String(tracker.config().objective.kind().into()),
            ),
            (
                "final_state".into(),
                Json::String(tracker.state().as_str().into()),
            ),
            ("transitions".into(), Json::Array(transitions)),
        ]);
        std::fs::write(args.out.join("alerts.json"), alerts.to_string())
            .expect("write alerts.json");
    }
    std::fs::write(
        args.out.join("report.json"),
        Json::Object(report_fields).to_string(),
    )
    .expect("write report.json");

    println!(
        "sent {} ok {} timed_out {} failed {} late {} | p50 {:.1} ms p99 {:.1} ms p999 {:.1} ms",
        report.sent,
        report.ok,
        report.timed_out,
        report.failed,
        report.late_sends,
        report.p50_s * 1e3,
        report.p99_s * 1e3,
        report.p999_s * 1e3,
    );
    if let Some(swaps) = swaps {
        println!("hot reloads under load: {swaps}");
    }
    println!(
        "wrote report.json, metrics.txt, trace.json to {}",
        args.out.display()
    );

    // ------------------------------------------------------------------
    // Gates. Any failure panics (non-zero exit) so CI fails the step.
    // ------------------------------------------------------------------
    assert_eq!(report.failed, 0, "requests failed outright");
    assert_eq!(
        report.sent, requests,
        "generator did not work through the whole schedule"
    );
    assert!(
        health_body.contains("\"ok\""),
        "/healthz unhealthy after the run: {health_body}"
    );
    match args.scenario.as_str() {
        "storm" => {
            // The point of the storm is mass expiry: the server must
            // shed load via deadlines, not errors, and say so.
            assert!(report.timed_out > 0, "storm produced no deadline expiries");
            assert!(
                trace_body.contains("\"expire\""),
                "trace recorded no expire events"
            );
            assert!(
                metrics_body.contains("vitcod_timeouts_total"),
                "metrics missing the timeout counter"
            );
            // Blown deadlines are exactly what the slow-request log is
            // for: every expiry blew well past deadline/2.
            assert!(
                slowlog_body.contains("\"request\""),
                "storm retained no span trees in the slowlog"
            );
        }
        "degrade" => {
            let induce = induce.as_ref().expect("degrade ran the induce phase");
            let tracker = tracker.as_ref().expect("degrade ran the monitor");
            assert!(
                induce.timed_out > 0,
                "degrade phase 1 induced no deadline expiries"
            );
            assert_eq!(induce.failed, 0, "induce phase requests failed outright");
            // Recovery traffic must still meet the normal SLO — the
            // outage must not poison the server.
            assert_eq!(report.timed_out, 0, "recovery requests expired");
            assert!(
                report.p99_s <= deadline,
                "recovery SLO violated: p99 {:.1} ms > deadline {:.1} ms",
                report.p99_s * 1e3,
                deadline * 1e3
            );
            // The burn-rate alert must have walked the full incident:
            // armed on the fast window, confirmed by the slow window,
            // and resolved once the recovery traffic cleared the fast
            // window.
            let seq: Vec<(AlertState, AlertState)> = tracker
                .transitions()
                .iter()
                .map(|t| (t.from, t.to))
                .collect();
            assert!(
                seq.contains(&(AlertState::Pending, AlertState::Firing)),
                "availability alert never fired: {seq:?}"
            );
            assert!(
                seq.contains(&(AlertState::Firing, AlertState::Resolved)),
                "availability alert never resolved after recovery: {seq:?}"
            );
            // The outage's requests were not head-sampled (5% rate), so
            // the span trees in /v1/traces must be tail keeps: errored
            // expiries and deadline/2 slow completions.
            assert!(
                traces_body.contains("\"sampled\":false"),
                "traces hold no tail-kept (unsampled) span trees"
            );
            assert!(
                traces_body.contains("\"kept\":\"error\"")
                    || traces_body.contains("\"kept\":\"slow\""),
                "traces hold no slow/errored tail keeps from the outage"
            );
        }
        _ => {
            assert_eq!(report.timed_out, 0, "requests expired under the SLO rate");
            assert!(
                report.p99_s <= deadline,
                "SLO violated: p99 {:.1} ms > deadline {:.1} ms at 0.7x saturation",
                report.p99_s * 1e3,
                deadline * 1e3
            );
        }
    }
    if let Some(hostile) = &hostile {
        println!(
            "hostile mix: launched {} shed {} survived {} refused {}",
            hostile.launched, hostile.shed, hostile.survived, hostile.refused
        );
        assert_eq!(
            hostile.survived, 0,
            "transport failed to shed {} hostile connection(s)",
            hostile.survived
        );
    }
    if args.scenario == "smoke" {
        for needle in [
            "# TYPE vitcod_request_latency_seconds histogram",
            "vitcod_stage_latency_seconds_bucket",
            "stage=\"compute\"",
            "vitcod_model_info",
        ] {
            assert!(metrics_body.contains(needle), "metrics missing '{needle}'");
        }
        assert!(
            trace_body.contains("\"enqueue\"") && trace_body.contains("\"dispatch\""),
            "trace missing enqueue/dispatch events"
        );
        // Everything is head-sampled in the smoke run, so the span ring
        // must hold trees whose compute subtrees name the per-layer ops
        // — the artifact CI uploads must actually show the feature.
        for needle in [
            "\"request\"",
            "\"qkv\"",
            "\"spmm\"",
            "vitcod_engine_op_seconds",
        ] {
            let hay = if needle.starts_with("vitcod_") {
                &metrics_body
            } else {
                &traces_body
            };
            assert!(hay.contains(needle), "observability missing '{needle}'");
        }
    }
    println!("scenario '{}' passed its gate", args.scenario);
}
