#![forbid(unsafe_code)]
//! Fig. 3: roofline analysis of the key attention bottleneck
//! (`S = Q·Kᵀ` plus `S·V`) for dense ViTs, polarized sparse ViTs, and
//! ViTCoD (denser/sparser + auto-encoder).

use vitcod_bench::vitcod_attention;
use vitcod_model::ViTConfig;
use vitcod_sim::{AcceleratorConfig, Roofline};

fn main() {
    let cfg = AcceleratorConfig::vitcod_paper();
    let roof = Roofline::from_config(&cfg);
    println!("Fig. 3 — roofline analysis (ViTCoD accelerator: {} GOPS comp roof, {} GB/s bandwidth roof, ridge at {:.2} ops/byte)\n",
        roof.peak_gops(), roof.bandwidth_gbps(), roof.ridge_intensity());

    let model = ViTConfig::deit_base();
    let scenarios = [
        ("Dense ViTs", 0.0, false),
        ("Sparse ViTs (polarized denser/sparser)", 0.9, false),
        ("ViTCoD (denser/sparser + auto-encoder)", 0.9, true),
    ];
    println!(
        "{:<42} {:>12} {:>14} {:>14} {:>10}",
        "scenario", "ops/byte", "achieved GOPS", "attainable", "bw-bound?"
    );
    for (name, sparsity, ae) in scenarios {
        let report = vitcod_attention(&model, sparsity, ae, 1);
        let p = roof.place(name, &report);
        println!(
            "{:<42} {:>12.2} {:>14.1} {:>14.1} {:>10}",
            p.name,
            p.ops_per_byte,
            p.achieved_gops,
            p.attainable_gops,
            if roof.is_bandwidth_bound(p.ops_per_byte) {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!(
        "\npaper: sparse ViTs sit deep in the bandwidth-bound region (lower intensity than dense"
    );
    println!(
        "       because pruning removes compute but Q/K must still stream); ViTCoD's auto-encoder"
    );
    println!("       raises intensity back toward/past the ridge. Axis anchors in the paper: 0.6 / 3.9 ops per byte.");
}
