#![forbid(unsafe_code)]
//! Fig. 15: (a) core-attention speedups at 90% sparsity and (b)
//! end-to-end ViT speedups, normalized to CPU, for seven models across
//! CPU / EdgeGPU / GPU / SpAtten / Sanger / ViTCoD.

use vitcod_baselines::{GeneralPlatform, SangerSim, SpAttenSim};
use vitcod_bench::{geomean, vitcod_attention, vitcod_end_to_end};
use vitcod_model::ViTConfig;
use vitcod_sim::AcceleratorConfig;

fn main() {
    let models = ViTConfig::all_paper_models();
    let class_models = ViTConfig::classification_models();
    let spatten = SpAttenSim::new(AcceleratorConfig::vitcod_paper());
    let sanger = SangerSim::new(AcceleratorConfig::vitcod_paper());
    let cpu = GeneralPlatform::cpu_xeon_6230r();
    let edge = GeneralPlatform::edgegpu_xavier_nx();
    let gpu = GeneralPlatform::gpu_2080ti();

    println!("Fig. 15(a) — core attention speedups over CPU (sparsity per model: 90% DeiT/Strided, 80% LeViT)\n");
    println!(
        "{:<16} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "model", "CPU", "EdgeGPU", "GPU", "SpAtten", "Sanger", "ViTCoD"
    );
    for m in &models {
        let s = m.paper_sparsity;
        let c = cpu.simulate_attention(m).latency_s;
        let e = edge.simulate_attention(m).latency_s;
        let g = gpu.simulate_attention(m).latency_s;
        let sp = spatten.simulate_attention(m, s).latency_s;
        let sa = sanger.simulate_attention(m, s).latency_s;
        let v = vitcod_attention(m, s, true, 1).latency_s;
        println!(
            "{:<16} {:>8.2} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            m.name,
            1.0,
            c / e,
            c / g,
            c / sp,
            c / sa,
            c / v
        );
    }

    // Headline geomeans at 90% over the six classification models.
    let mut r_cpu = vec![];
    let mut r_edge = vec![];
    let mut r_gpu = vec![];
    let mut r_spat = vec![];
    let mut r_sang = vec![];
    for m in &class_models {
        let v = vitcod_attention(m, 0.9, true, 1).latency_s;
        let v_scaled = vitcod_attention(m, 0.9, true, gpu.comparable_vitcod_scale).latency_s;
        r_cpu.push(cpu.simulate_attention(m).latency_s / v);
        r_edge.push(edge.simulate_attention(m).latency_s / v);
        r_gpu.push(gpu.simulate_attention(m).latency_s / v_scaled);
        r_spat.push(spatten.simulate_attention(m, 0.9).latency_s / v);
        r_sang.push(sanger.simulate_attention(m, 0.9).latency_s / v);
    }
    println!(
        "\nViTCoD core-attention speedups @90% (geomean over DeiT+LeViT; GPU pairing uses the"
    );
    println!("peak-throughput-comparable scaled ViTCoD, per the paper's protocol):");
    println!("  vs CPU     {:7.1}x   paper: 235.3x", geomean(&r_cpu));
    println!("  vs EdgeGPU {:7.1}x   paper: 142.9x", geomean(&r_edge));
    println!("  vs GPU     {:7.1}x   paper: 86.0x", geomean(&r_gpu));
    println!("  vs SpAtten {:7.1}x   paper: 10.1x", geomean(&r_spat));
    println!("  vs Sanger  {:7.1}x   paper: 6.8x", geomean(&r_sang));

    // 80% sparsity comparison vs the attention accelerators.
    let mut r_spat80 = vec![];
    let mut r_sang80 = vec![];
    for m in &class_models {
        let v = vitcod_attention(m, 0.8, true, 1).latency_s;
        r_spat80.push(spatten.simulate_attention(m, 0.8).latency_s / v);
        r_sang80.push(sanger.simulate_attention(m, 0.8).latency_s / v);
    }
    println!("\n@80% sparsity:");
    println!("  vs SpAtten {:7.1}x   paper: 4.8x", geomean(&r_spat80));
    println!("  vs Sanger  {:7.1}x   paper: 3.2x", geomean(&r_sang80));

    println!("\nFig. 15(b) — end-to-end ViT speedups over CPU\n");
    println!(
        "{:<16} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "model", "CPU", "EdgeGPU", "GPU", "SpAtten", "Sanger", "ViTCoD"
    );
    let mut e_cpu = vec![];
    let mut e_edge = vec![];
    let mut e_spat = vec![];
    let mut e_sang = vec![];
    for m in &models {
        let s = m.paper_sparsity;
        let c = cpu.simulate_end_to_end(m).latency_s;
        let e = edge.simulate_end_to_end(m).latency_s;
        let g = gpu.simulate_end_to_end(m).latency_s;
        let sp = spatten.simulate_end_to_end(m, s).latency_s;
        let sa = sanger.simulate_end_to_end(m, s).latency_s;
        let v = vitcod_end_to_end(m, s, true, 1).latency_s;
        println!(
            "{:<16} {:>8.2} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            m.name,
            1.0,
            c / e,
            c / g,
            c / sp,
            c / sa,
            c / v
        );
        e_cpu.push(c / v);
        e_edge.push(e / v);
        e_spat.push(sp / v);
        e_sang.push(sa / v);
    }
    println!("\nViTCoD end-to-end speedups (geomean over all seven models):");
    println!("  vs CPU     {:7.1}x   paper: 33.8x", geomean(&e_cpu));
    println!("  vs EdgeGPU {:7.1}x   paper: 5.6x", geomean(&e_edge));
    println!("  vs SpAtten {:7.1}x   paper: 3.1x", geomean(&e_spat));
    println!("  vs Sanger  {:7.1}x   paper: 2.1x", geomean(&e_sang));

    // ViTCoD hardware with vs without ViTCoD techniques.
    let mut with_vs_without = vec![];
    for m in &class_models {
        let dense = vitcod_end_to_end(m, 0.0, false, 1).latency_s;
        let full = vitcod_end_to_end(m, m.paper_sparsity, true, 1).latency_s;
        with_vs_without.push(dense / full);
    }
    println!(
        "\nViTCoD hardware w/ vs w/o ViTCoD techniques (end-to-end): {:.1}x   paper: ~1.8x",
        geomean(&with_vs_without)
    );
}
