#![forbid(unsafe_code)]
//! Fig. 4: FLOPs (top) and EdgeGPU latency (bottom) breakdowns of the
//! seven evaluated models, split into self-attention vs MLP vs rest.

use vitcod_baselines::GeneralPlatform;
use vitcod_model::ViTConfig;

fn main() {
    println!("Fig. 4 — FLOPs and measured-latency breakdowns (EdgeGPU TX2-class model)\n");
    println!(
        "{:<16} {:>10} {:>9} {:>9} {:>9} | {:>12} {:>9} {:>14}",
        "model", "GMACs", "SA%", "MLP%", "other%", "latency(ms)", "SA-lat%", "QK/SV%of-SA"
    );
    let edge = GeneralPlatform::edgegpu_tx2();
    for m in ViTConfig::all_paper_models() {
        let f = m.flops();
        let total = f.total() as f64;
        let sa = f.self_attention() as f64 / total * 100.0;
        let mlp = f.mlp_macs as f64 / total * 100.0;
        let other = 100.0 - sa - mlp;
        let attn_lat = edge.simulate_attention(&m).latency_s;
        let e2e_lat = edge.simulate_end_to_end(&m).latency_s;
        println!(
            "{:<16} {:>10.2} {:>8.1}% {:>8.1}% {:>8.1}% | {:>12.2} {:>8.1}% {:>13.1}%",
            m.name,
            total / 1e9,
            sa,
            mlp,
            other,
            e2e_lat * 1e3,
            attn_lat / e2e_lat * 100.0,
            f.core_fraction_of_attention() * 100.0
        );
    }
    println!(
        "\npaper: self-attention is not FLOPs-dominant yet accounts for >50% of EdgeGPU latency"
    );
    println!(
        "       (up to 69% on LeViT-128); Q.K^T / S.V matmuls occupy up to 53% of SA latency."
    );
}
