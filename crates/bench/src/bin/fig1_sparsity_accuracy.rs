#![forbid(unsafe_code)]
//! Fig. 1: accuracy-vs-sparsity for ViTs with *fixed* sparse attention
//! masks, contrasted against NLP Transformers needing *dynamic* masks.
//!
//! ViT curves are measured: reduced DeiT-Small/Base twins are trained
//! from scratch on the synthetic vision task (the documented ImageNet
//! substitution), pruned with fixed information-based masks at each
//! sparsity level, and finetuned. NLP curves are the reference series
//! the paper aggregates from the literature (BLEU on IWSLT EN→DE with
//! dynamic sparse attention, reproduced here as the published trend
//! since no NLP training stack is in scope).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vitcod_autograd::ParamStore;
use vitcod_core::{SplitConquer, SplitConquerConfig};
use vitcod_model::{
    SyntheticTask, SyntheticTaskConfig, TrainConfig, Trainer, ViTConfig, VisionTransformer,
};

fn main() {
    let task = SyntheticTask::generate(SyntheticTaskConfig::default());
    let sparsities = [0.10, 0.30, 0.50, 0.70, 0.90, 0.95];

    println!("Fig. 1 — accuracy vs attention sparsity (fixed masks on ViTs, measured on the synthetic task)\n");
    for name in ["DeiT-Small", "DeiT-Base"] {
        let base_cfg = match name {
            "DeiT-Small" => ViTConfig::deit_small(),
            _ => ViTConfig::deit_base(),
        }
        .reduced_for_training();

        // "Pretrained" dense model (seed varied per model).
        let mut store = ParamStore::new();
        let seed = 0xF161 ^ name.len() as u64;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let vit = VisionTransformer::new(
            &base_cfg,
            task.config.in_dim,
            task.config.num_classes,
            &mut store,
            &mut rng,
        );
        let mut base = Trainer::new(vit, store);
        base.train(
            &task,
            &TrainConfig {
                epochs: 14,
                ..Default::default()
            },
        );
        let dense_acc = base.evaluate(&task.test);
        println!(
            "{name} (reduced twin) — dense accuracy {:.1}%",
            dense_acc * 100.0
        );
        println!("  {:>9} {:>10} {:>9}", "sparsity", "accuracy", "drop");

        let maps = base.averaged_attention_maps(&task);
        for &s in &sparsities {
            let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(s));
            let heads = sc.apply(&maps);
            let plan = SplitConquer::to_sparsity_plan(&heads);
            let mut finetuned = base.clone();
            finetuned.model_mut().set_sparsity_plan(plan);
            finetuned.train(
                &task,
                &TrainConfig {
                    epochs: 6,
                    lr: 1e-3,
                    ..Default::default()
                },
            );
            let acc = finetuned.evaluate(&task.test);
            println!(
                "  {:>8.0}% {:>9.1}% {:>8.1}%",
                s * 100.0,
                acc * 100.0,
                (dense_acc - acc) * 100.0
            );
        }
        println!();
    }

    println!(
        "NLP Transformer reference (paper Fig. 1; BLEU on IWSLT EN→DE, dynamic sparse attention):"
    );
    println!("  {:>9} {:>18}", "sparsity", "BLEU (best method)");
    // Trend the paper plots: near-lossless to ~50-70%, collapsing beyond.
    for (s, bleu) in [
        (0.10, 34.5),
        (0.30, 34.2),
        (0.50, 33.8),
        (0.70, 31.5),
        (0.90, 25.0),
        (0.95, 22.0),
    ] {
        println!("  {:>8.0}% {:>18.1}", s * 100.0, bleu);
    }
    println!("\npaper: ViTs tolerate 90–95% *fixed* sparsity with <=1.5% accuracy drop, while NLP");
    println!("       Transformers lose BLEU rapidly past ~50–70% even with dynamic masks.");
}
