#![forbid(unsafe_code)]
//! Fig. 9(b): training trajectories of DeiT models with auto-encoder
//! modules — accuracy, test loss and reconstruction loss per epoch, with
//! the vanilla (no-AE) accuracy as the dashed reference.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vitcod_autograd::ParamStore;
use vitcod_model::{
    AutoEncoderSpec, SyntheticTask, SyntheticTaskConfig, TrainConfig, Trainer, ViTConfig,
    VisionTransformer,
};

fn main() {
    let task = SyntheticTask::generate(SyntheticTaskConfig::default());
    println!(
        "Fig. 9(b) — DeiT training trajectories with AE modules (reduced twins, synthetic task)\n"
    );
    for cfg in [
        ViTConfig::deit_tiny(),
        ViTConfig::deit_small(),
        ViTConfig::deit_base(),
    ] {
        run_model(&task, cfg);
    }
    println!("paper: both test loss and reconstruction loss drop steadily; accuracy recovers to");
    println!("       the vanilla level (<0.5% drop) after finetuning with the AE inserted.");
}

fn run_model(task: &SyntheticTask, cfg: ViTConfig) {
    let reduced = cfg.reduced_for_training();
    let mut store = ParamStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(0xF19);
    let vit = VisionTransformer::new(
        &reduced,
        task.config.in_dim,
        task.config.num_classes,
        &mut store,
        &mut rng,
    );
    let mut trainer = Trainer::new(vit, store);
    trainer.train(
        task,
        &TrainConfig {
            epochs: 12,
            ..Default::default()
        },
    );
    let vanilla = trainer.evaluate(&task.test);

    trainer.insert_auto_encoder(AutoEncoderSpec::half(reduced.heads), &mut rng);
    let traj = trainer.train(
        task,
        &TrainConfig {
            epochs: 12,
            lr: 1e-3,
            ..Default::default()
        },
    );

    println!(
        "{} (reduced twin, {} -> {} heads) — vanilla accuracy {:.1}% (dashed line)",
        cfg.name,
        reduced.heads,
        AutoEncoderSpec::half(reduced.heads).compressed_heads,
        vanilla * 100.0
    );
    println!(
        "  {:>5} {:>10} {:>10} {:>12}",
        "epoch", "accuracy", "test-loss", "recon-loss"
    );
    for e in &traj.epochs {
        println!(
            "  {:>5} {:>9.1}% {:>10.4} {:>12.6}",
            e.epoch,
            e.test_accuracy * 100.0,
            e.train_loss,
            e.recon_loss
        );
    }
    let first = traj.epochs.first().unwrap();
    let last = traj.epochs.last().unwrap();
    println!(
        "  recon loss {:.6} -> {:.6}; final accuracy {:.1}% (drop vs vanilla: {:+.1}%)\n",
        first.recon_loss,
        last.recon_loss,
        last.test_accuracy * 100.0,
        (vanilla - last.test_accuracy) * 100.0
    );
}
