#![forbid(unsafe_code)]
//! Fig. 18: training trajectories of LeViT models with AE modules
//! (accuracy / test loss / reconstruction loss), vanilla accuracy as the
//! dashed reference.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vitcod_autograd::ParamStore;
use vitcod_model::{
    AutoEncoderSpec, SyntheticTask, SyntheticTaskConfig, TrainConfig, Trainer, ViTConfig,
    VisionTransformer,
};

fn main() {
    let task = SyntheticTask::generate(SyntheticTaskConfig::default());
    println!(
        "Fig. 18 — LeViT training trajectories with AE modules (reduced twins, synthetic task)\n"
    );
    for cfg in [
        ViTConfig::levit_128(),
        ViTConfig::levit_192(),
        ViTConfig::levit_256(),
    ] {
        let reduced = cfg.reduced_for_training();
        let mut store = ParamStore::new();
        let seed = 0xF18 ^ cfg.name.bytes().map(u64::from).sum::<u64>();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let vit = VisionTransformer::new(
            &reduced,
            task.config.in_dim,
            task.config.num_classes,
            &mut store,
            &mut rng,
        );
        let mut trainer = Trainer::new(vit, store);
        trainer.train(
            &task,
            &TrainConfig {
                epochs: 12,
                ..Default::default()
            },
        );
        let vanilla = trainer.evaluate(&task.test);
        trainer.insert_auto_encoder(AutoEncoderSpec::half(reduced.heads), &mut rng);
        let traj = trainer.train(
            &task,
            &TrainConfig {
                epochs: 12,
                lr: 1e-3,
                ..Default::default()
            },
        );
        println!(
            "{} (reduced twin) — vanilla accuracy {:.1}% (dashed)",
            cfg.name,
            vanilla * 100.0
        );
        println!(
            "  {:>5} {:>10} {:>10} {:>12}",
            "epoch", "accuracy", "test-loss", "recon-loss"
        );
        for e in traj.epochs.iter().step_by(2) {
            println!(
                "  {:>5} {:>9.1}% {:>10.4} {:>12.6}",
                e.epoch,
                e.test_accuracy * 100.0,
                e.train_loss,
                e.recon_loss
            );
        }
        let last = traj.epochs.last().unwrap();
        println!(
            "  final: accuracy {:.1}% (drop {:+.1}%), recon loss {:.6}\n",
            last.test_accuracy * 100.0,
            (vanilla - last.test_accuracy) * 100.0,
            last.recon_loss
        );
    }
    println!("paper: LeViT accuracy is mostly recovered (<0.5% drop) and both losses converge.");
}
