#![forbid(unsafe_code)]
//! Fig. 8: visualising DeiT-Base attention maps after (a) pruning only,
//! (b) reordering only, (c) pruning + reordering. Rendered as ASCII
//! density grids (█ = dense block, blank = pruned).

use vitcod_bench::render_density;
use vitcod_core::{
    prune_to_sparsity, reorder_global_tokens, AttentionMask, SplitConquer, SplitConquerConfig,
};
use vitcod_model::{AttentionStats, ViTConfig};

fn main() {
    let model = ViTConfig::deit_base();
    let stats = AttentionStats::for_model(&model, vitcod_bench::WORKLOAD_SEED);
    println!("Fig. 8 — DeiT-Base attention maps (197x197, shown as 24x24 density grids)\n");

    // A few representative heads across depth.
    let picks = [(0usize, 0usize), (5, 6), (11, 11)];
    for (l, h) in picks {
        let map = &stats.maps[l][h];
        let pruned = prune_to_sparsity(map, 0.9);
        // (b) reordering only: detect global tokens on a mildly-pruned map
        // (reordering needs a support pattern to rank columns).
        let support = prune_to_sparsity(map, 0.5);
        let reorder_only = reorder_global_tokens(&support, None);
        let both = reorder_global_tokens(&pruned, None);

        println!("--- layer {l}, head {h} ---");
        println!(
            "(a) prune only        (sparsity {:.1}%)",
            pruned.sparsity() * 100.0
        );
        print_side_by_side(&[
            render_density(&pruned, 24),
            render_density(&reorder_only.mask, 24),
            render_density(&both.mask, 24),
        ]);
        println!(
            "    N_gt: prune-only n/a | reorder-only {} | prune+reorder {} (denser density {:.2}, sparser {:.3})\n",
            reorder_only.num_global,
            both.num_global,
            both.denser_density(),
            both.sparser_density()
        );
    }

    // Ensemble statistics across all 144 heads.
    let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
    let heads = sc.apply(&stats.maps);
    let total_heads: usize = heads.iter().map(|l| l.len()).sum();
    let with_globals = heads
        .iter()
        .flatten()
        .filter(|p| p.num_global() > 0)
        .count();
    let mean_pol: f64 = heads
        .iter()
        .flatten()
        .map(|p| p.reorder.polarization())
        .sum::<f64>()
        / total_heads as f64;
    println!("ensemble: {total_heads} heads, {with_globals} with detected global tokens,");
    println!("          mean polarization (denser-density − sparser-density) = {mean_pol:.3}");
    println!("\npaper: after prune+reorder every head shows a clustered dense block at the left");
    println!("       plus a very sparse residue on the diagonal / uniformly spread.");
    let _ = AttentionMask::dense(1); // keep the type linked in docs
}

/// Prints up to three equal-height ASCII blocks side by side.
fn print_side_by_side(blocks: &[String]) {
    let split: Vec<Vec<&str>> = blocks.iter().map(|b| b.lines().collect()).collect();
    let rows = split.iter().map(|b| b.len()).max().unwrap_or(0);
    let labels = ["(a) prune", "(b) reorder", "(c) both"];
    let width = split
        .iter()
        .flat_map(|b| b.iter().map(|l| l.chars().count()))
        .max()
        .unwrap_or(0);
    let header: Vec<String> = labels
        .iter()
        .take(split.len())
        .map(|l| format!("{l:<width$}"))
        .collect();
    println!("{}", header.join("   "));
    for r in 0..rows {
        let line: Vec<String> = split
            .iter()
            .map(|b| format!("{:<width$}", b.get(r).copied().unwrap_or("")))
            .collect();
        println!("{}", line.join("   "));
    }
}
