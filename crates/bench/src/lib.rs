//! Benchmark harness regenerating every table and figure of the ViTCoD
//! paper.
//!
//! Each paper artifact has a dedicated binary (run with
//! `cargo run -p vitcod-bench --bin <name> --release`):
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `tab1_taxonomy` | Table I |
//! | `fig1_sparsity_accuracy` | Fig. 1 |
//! | `fig3_roofline` | Fig. 3 |
//! | `fig4_breakdown` | Fig. 4 |
//! | `fig8_attention_maps` | Fig. 8 |
//! | `fig9_ae_training` | Fig. 9(b) |
//! | `fig15_speedups` | Fig. 15 |
//! | `fig16_floorplan` | Fig. 16 |
//! | `fig17_accuracy_latency` | Fig. 17 |
//! | `fig18_levit_ae` | Fig. 18 |
//! | `fig19_breakdown_energy` | Fig. 19 |
//! | `sec6c_prune_reorder` | Sec. VI-C ablation |
//! | `nlp_comparison` | Sec. VI-B NLP discussion |
//!
//! This library hosts the shared workload builders and table formatting
//! those binaries (and the Criterion benches) use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod load;

use vitcod_core::{
    compile_model, AcceleratorProgram, AutoEncoderConfig, PolarizedHead, SplitConquer,
    SplitConquerConfig,
};
use vitcod_model::{AttentionStats, ViTConfig};
use vitcod_sim::{AcceleratorConfig, SimReport, ViTCoDAccelerator};

/// Seed used for every attention-statistics ensemble in the harness so
/// all binaries operate on identical workloads.
pub const WORKLOAD_SEED: u64 = 0xB0A7;

/// Builds the split-and-conquer output for `model` at `sparsity` from
/// the statistical attention ensemble.
pub fn polarize(model: &ViTConfig, sparsity: f64) -> Vec<Vec<PolarizedHead>> {
    let stats = AttentionStats::for_model(model, WORKLOAD_SEED);
    SplitConquer::new(SplitConquerConfig::with_sparsity(sparsity)).apply(&stats.maps)
}

/// Compiles `model` at `sparsity` into an accelerator program,
/// optionally with the 50 % auto-encoder.
pub fn build_program(model: &ViTConfig, sparsity: f64, ae: bool) -> AcceleratorProgram {
    let heads = polarize(model, sparsity);
    let ae_cfg = ae.then(|| AutoEncoderConfig::half(model.heads));
    compile_model(model, &heads, ae_cfg)
}

/// Simulates ViTCoD's attention core for `model` at `sparsity`.
///
/// `scale` multiplies MAC lines and bandwidth (1 = the paper's 3 mm²
/// configuration; >1 for the peak-throughput-comparable GPU pairing).
pub fn vitcod_attention(model: &ViTConfig, sparsity: f64, ae: bool, scale: usize) -> SimReport {
    let program = build_program(model, sparsity, ae);
    let cfg = AcceleratorConfig::vitcod_paper().scaled(scale);
    ViTCoDAccelerator::new(cfg).simulate_attention_scaled(&program, model)
}

/// Simulates ViTCoD end to end for `model` at `sparsity`.
pub fn vitcod_end_to_end(model: &ViTConfig, sparsity: f64, ae: bool, scale: usize) -> SimReport {
    let program = build_program(model, sparsity, ae);
    let cfg = AcceleratorConfig::vitcod_paper().scaled(scale);
    ViTCoDAccelerator::new(cfg).simulate_end_to_end(&program, model)
}

/// Geometric mean of a slice (the paper's "on-average" speedups are
/// means over models; geomean is the fair aggregate for ratios).
///
/// Returns 0.0 for an empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Formats a markdown-ish table row.
pub fn row(cells: &[String]) -> String {
    cells.join(" | ")
}

/// Prints a header line followed by a rule.
pub fn print_header(title: &str) {
    println!("\n=== {title} ===");
}

/// Renders an attention mask down-sampled to an `out × out` ASCII
/// density grid (the Fig. 8 visualisation style): darker glyphs mean
/// denser blocks.
pub fn render_density(mask: &vitcod_core::AttentionMask, out: usize) -> String {
    let n = mask.size();
    let cell = n.div_ceil(out).max(1);
    let glyphs = [' ', '·', '░', '▒', '▓', '█'];
    let mut s = String::new();
    for br in (0..n).step_by(cell) {
        for bc in (0..n).step_by(cell) {
            let mut kept = 0usize;
            let mut total = 0usize;
            for r in br..(br + cell).min(n) {
                for c in bc..(bc + cell).min(n) {
                    total += 1;
                    if mask.is_kept(r, c) {
                        kept += 1;
                    }
                }
            }
            let density = kept as f64 / total.max(1) as f64;
            let idx =
                ((density * (glyphs.len() - 1) as f64).round() as usize).min(glyphs.len() - 1);
            s.push(glyphs[idx]);
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    // The empty-geomean sentinel and the exact mean of exactly
    // representable inputs are deliberate strict comparisons.
    #[allow(clippy::float_cmp)]
    fn geomean_and_mean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn build_program_respects_sparsity() {
        let p = build_program(&ViTConfig::deit_tiny(), 0.9, false);
        assert!((p.overall_sparsity() - 0.9).abs() < 0.03);
        assert!(p.auto_encoder.is_none());
        let p_ae = build_program(&ViTConfig::deit_tiny(), 0.9, true);
        assert!(p_ae.auto_encoder.is_some());
    }

    #[test]
    fn vitcod_reports_are_consistent() {
        let m = ViTConfig::deit_tiny();
        let attn = vitcod_attention(&m, 0.9, true, 1);
        let e2e = vitcod_end_to_end(&m, 0.9, true, 1);
        assert!(e2e.latency_s > attn.latency_s);
    }

    #[test]
    fn render_density_shape() {
        let mask = vitcod_core::AttentionMask::dense(32);
        let s = render_density(&mask, 8);
        assert_eq!(s.lines().count(), 8);
        assert!(s.contains('█'));
    }
}
