//! Criterion micro-benchmarks of the numerical kernels underpinning the
//! reproduction (matmul flavours, softmax, autograd attention).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vitcod_autograd::Tape;
use vitcod_tensor::{Initializer, Matrix};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let a = Initializer::Normal { std: 1.0 }.sample(n, n, 1);
        let b = Initializer::Normal { std: 1.0 }.sample(n, n, 2);
        group.bench_with_input(BenchmarkId::new("nn", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b))
        });
        group.bench_with_input(BenchmarkId::new("nt", n), &n, |bench, _| {
            bench.iter(|| a.matmul_nt(&b))
        });
        group.bench_with_input(BenchmarkId::new("tn", n), &n, |bench, _| {
            bench.iter(|| a.matmul_tn(&b))
        });
    }
    group.finish();
}

fn bench_softmax_layernorm(c: &mut Criterion) {
    let m = Initializer::Normal { std: 1.0 }.sample(197, 197, 3);
    c.bench_function("softmax_rows_197", |b| b.iter(|| m.softmax_rows()));
    let x = Initializer::Normal { std: 1.0 }.sample(197, 192, 4);
    let gamma = vec![1.0f32; 192];
    let beta = vec![0.0f32; 192];
    c.bench_function("layernorm_rows_197x192", |b| {
        b.iter(|| x.layernorm_rows(&gamma, &beta, 1e-5))
    });
}

fn bench_autograd_attention(c: &mut Criterion) {
    let q = Initializer::Normal { std: 1.0 }.sample(64, 32, 5);
    let k = Initializer::Normal { std: 1.0 }.sample(64, 32, 6);
    let v = Initializer::Normal { std: 1.0 }.sample(64, 32, 7);
    let mut mask = Matrix::zeros(64, 64);
    for r in 0..64 {
        for col in 0..64 {
            if (r as i64 - col as i64).abs() > 3 && col != 0 {
                mask.set(r, col, f32::NEG_INFINITY);
            }
        }
    }
    c.bench_function("masked_attention_fwd_bwd_64x32", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let qv = tape.constant(q.clone());
            let kv = tape.constant(k.clone());
            let vv = tape.constant(v.clone());
            let o = tape.masked_attention(qv, kv, vv, 0.176, Some(&mask));
            let loss = tape.mse_loss(o, &Matrix::zeros(64, 32));
            tape.backward(loss);
            tape.scalar(loss)
        })
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_softmax_layernorm,
    bench_autograd_attention
);
criterion_main!(benches);
