//! Kernel-layer benchmark: Scalar reference vs Blocked parallel vs Simd
//! lane-tiled backends on the GEMM shapes a DeiT attention layer
//! actually runs — in fp32 and through the packed int8 projection GEMM —
//! plus the 1024³ acceptance shape.
//!
//! Run with `cargo bench -p vitcod-bench --bench kernels`; results are
//! printed and recorded to `BENCH_kernels.json` at the workspace root so
//! later PRs have a perf trajectory to compare against. Every timed
//! fp32 backend pair is also checked for bit-identical results,
//! enforcing the backend agreement contract at benchmark scale, and the
//! int8 GEMM is checked bit-identical across its reference and panel
//! paths.
//!
//! Gates: the blocked backend must beat scalar ≥ 4× on the 1024³ GEMM,
//! and the int8 projection GEMM must beat the fp32 Blocked GEMM at
//! every DeiT projection shape.

use std::time::Instant;

use vitcod_tensor::kernels::{matmul_with, num_threads, softmax_rows, Backend};
use vitcod_tensor::{int8_gemm, int8_gemm_with, Initializer, PackedGemmWeights, QuantizedRows};

/// (name, tokens, model dim) per DeiT variant: the QKV/output projections
/// are `tokens × dim · dim × dim` GEMMs.
const DEIT_SHAPES: &[(&str, usize, usize)] = &[
    ("deit_tiny", 197, 192),
    ("deit_small", 197, 384),
    ("deit_base", 197, 768),
];

/// Times `f`, re-running until the measurement window fills (or a single
/// run already exceeds it); returns the best observed seconds per run.
fn time_best(window_s: f64, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    loop {
        let t = Instant::now();
        f();
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        spent += dt;
        if spent >= window_s {
            return best;
        }
    }
}

struct Record {
    name: String,
    m: usize,
    k: usize,
    n: usize,
    scalar_s: f64,
    blocked_s: f64,
    simd_s: f64,
    /// Packed int8 GEMM over the same shape; `None` for shapes that only
    /// track the fp32 trajectory (the 1024³ acceptance gate).
    int8_s: Option<f64>,
}

impl Record {
    fn speedup(&self) -> f64 {
        self.scalar_s / self.blocked_s
    }

    fn ops(&self) -> f64 {
        2.0 * (self.m * self.k * self.n) as f64
    }

    fn blocked_gflops(&self) -> f64 {
        self.ops() / self.blocked_s / 1e9
    }

    fn simd_gflops(&self) -> f64 {
        self.ops() / self.simd_s / 1e9
    }

    fn int8_gops(&self) -> Option<f64> {
        self.int8_s.map(|s| self.ops() / s / 1e9)
    }
}

fn bench_gemm(name: &str, m: usize, k: usize, n: usize, int8: bool, window_s: f64) -> Record {
    let a = Initializer::Normal { std: 1.0 }.sample(m, k, 1);
    let b = Initializer::Normal { std: 1.0 }.sample(k, n, 2);
    let scalar_out = matmul_with(Backend::Scalar, &a, &b);
    for backend in [Backend::Blocked, Backend::Simd] {
        assert_eq!(
            matmul_with(backend, &a, &b),
            scalar_out,
            "{name}: {backend:?} disagrees with Scalar at ({m},{k},{n})"
        );
    }
    let blocked_s = time_best(window_s, || {
        std::hint::black_box(matmul_with(Backend::Blocked, &a, &b));
    });
    let simd_s = time_best(window_s, || {
        std::hint::black_box(matmul_with(Backend::Simd, &a, &b));
    });
    let scalar_s = time_best(window_s, || {
        std::hint::black_box(matmul_with(Backend::Scalar, &a, &b));
    });
    let int8_s = int8.then(|| {
        let a8 = QuantizedRows::quantize(&a);
        let b8 = PackedGemmWeights::pack(&b);
        let bias = vec![0.0f32; n];
        assert_eq!(
            int8_gemm_with(Backend::Scalar, &a8, &b8, &bias),
            int8_gemm(&a8, &b8, &bias),
            "{name}: int8 reference and panel paths disagree"
        );
        time_best(window_s, || {
            std::hint::black_box(int8_gemm(&a8, &b8, &bias));
        })
    });
    let rec = Record {
        name: name.to_string(),
        m,
        k,
        n,
        scalar_s,
        blocked_s,
        simd_s,
        int8_s,
    };
    let int8_col = match rec.int8_gops() {
        Some(g) => format!("  int8 {g:>6.2} Gop/s"),
        None => String::new(),
    };
    println!(
        "{:<18} ({m:>4}x{k:>4}x{n:>4})  scalar {:>8.3} ms  blocked {:>8.3} ms ({:>6.2} GF/s)  simd {:>8.3} ms ({:>6.2} GF/s){}",
        rec.name,
        scalar_s * 1e3,
        blocked_s * 1e3,
        rec.blocked_gflops(),
        simd_s * 1e3,
        rec.simd_gflops(),
        int8_col
    );
    rec
}

fn main() {
    println!(
        "kernel benchmarks: {} worker thread(s), backends checked for bit-identical results\n",
        num_threads()
    );
    let mut records = Vec::new();
    for &(model, tokens, dim) in DEIT_SHAPES {
        records.push(bench_gemm(
            &format!("{model}_proj"),
            tokens,
            dim,
            dim,
            true,
            0.5,
        ));
    }
    // The acceptance shape: the blocked backend must beat scalar ≥ 4×.
    let big = bench_gemm("gemm_1024", 1024, 1024, 1024, false, 0.0);
    let big_speedup = big.speedup();
    records.push(big);

    // Softmax at attention-map scale (197 tokens), for the trajectory.
    let s = Initializer::Normal { std: 1.0 }.sample(197, 197, 3);
    let softmax_s = time_best(0.25, || {
        std::hint::black_box(softmax_rows(&s));
    });
    println!(
        "{:<18} (197x197)              blocked {:>8.3} ms",
        "softmax_rows",
        softmax_s * 1e3
    );

    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let mut json = String::from("{\n  \"bench\": \"kernels\",\n");
    json.push_str(&format!("  \"threads\": {},\n", num_threads()));
    json.push_str("  \"gemm\": [\n");
    for (i, r) in records.iter().enumerate() {
        let int8_cols = match (r.int8_s, r.int8_gops()) {
            (Some(s), Some(g)) => format!(", \"int8_s\": {s:.6}, \"int8_gops\": {g:.2}"),
            _ => String::new(),
        };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"scalar_s\": {:.6}, \"blocked_s\": {:.6}, \"simd_s\": {:.6}, \"speedup\": {:.2}, \"blocked_gflops\": {:.2}, \"simd_gflops\": {:.2}{}}}{}\n",
            r.name,
            r.m,
            r.k,
            r.n,
            r.scalar_s,
            r.blocked_s,
            r.simd_s,
            r.speedup(),
            r.blocked_gflops(),
            r.simd_gflops(),
            int8_cols,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"softmax_rows_197_s\": {softmax_s:.6}\n}}\n"));
    std::fs::write(json_path, json).expect("write BENCH_kernels.json");
    println!("\nrecorded baseline to BENCH_kernels.json");

    assert!(
        big_speedup >= 4.0,
        "blocked backend must beat the scalar reference by >= 4x on the \
         1024^3 GEMM (got {big_speedup:.1}x)"
    );
    // The int8 projection GEMM is the serving engine's hot loop: it must
    // beat the fp32 Blocked GEMM at every DeiT projection shape.
    for r in records.iter().filter(|r| r.int8_s.is_some()) {
        let int8_s = r.int8_s.unwrap();
        assert!(
            int8_s < r.blocked_s,
            "{}: int8 GEMM ({:.3} ms) must beat fp32 blocked ({:.3} ms)",
            r.name,
            int8_s * 1e3,
            r.blocked_s * 1e3
        );
    }
}
