//! Kernel-layer benchmark: Scalar reference vs Blocked parallel backend
//! on the GEMM shapes a DeiT attention layer actually runs, plus the
//! 1024³ acceptance shape.
//!
//! Run with `cargo bench -p vitcod-bench --bench kernels`; results are
//! printed and recorded to `BENCH_kernels.json` at the workspace root so
//! later PRs have a perf trajectory to compare against. Every timed pair
//! is also checked for bit-identical results, enforcing the backend
//! agreement contract at benchmark scale.

use std::time::Instant;

use vitcod_tensor::kernels::{matmul_with, num_threads, softmax_rows, Backend};
use vitcod_tensor::Initializer;

/// (name, tokens, model dim) per DeiT variant: the QKV/output projections
/// are `tokens × dim · dim × dim` GEMMs.
const DEIT_SHAPES: &[(&str, usize, usize)] = &[
    ("deit_tiny", 197, 192),
    ("deit_small", 197, 384),
    ("deit_base", 197, 768),
];

/// Times `f`, re-running until the measurement window fills (or a single
/// run already exceeds it); returns the best observed seconds per run.
fn time_best(window_s: f64, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    loop {
        let t = Instant::now();
        f();
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        spent += dt;
        if spent >= window_s {
            return best;
        }
    }
}

struct Record {
    name: String,
    m: usize,
    k: usize,
    n: usize,
    scalar_s: f64,
    blocked_s: f64,
}

impl Record {
    fn speedup(&self) -> f64 {
        self.scalar_s / self.blocked_s
    }

    fn gflops(&self) -> f64 {
        2.0 * (self.m * self.k * self.n) as f64 / self.blocked_s / 1e9
    }
}

fn bench_gemm(name: &str, m: usize, k: usize, n: usize, window_s: f64) -> Record {
    let a = Initializer::Normal { std: 1.0 }.sample(m, k, 1);
    let b = Initializer::Normal { std: 1.0 }.sample(k, n, 2);
    let blocked_out = matmul_with(Backend::Blocked, &a, &b);
    let scalar_out = matmul_with(Backend::Scalar, &a, &b);
    assert_eq!(
        blocked_out, scalar_out,
        "{name}: backends disagree at ({m},{k},{n})"
    );
    let blocked_s = time_best(window_s, || {
        std::hint::black_box(matmul_with(Backend::Blocked, &a, &b));
    });
    let scalar_s = time_best(window_s, || {
        std::hint::black_box(matmul_with(Backend::Scalar, &a, &b));
    });
    let rec = Record {
        name: name.to_string(),
        m,
        k,
        n,
        scalar_s,
        blocked_s,
    };
    println!(
        "{:<28} ({m:>4}x{k:>4}x{n:>4})  scalar {:>9.3} ms  blocked {:>9.3} ms  speedup {:>5.1}x  {:>6.2} GFLOP/s",
        rec.name,
        scalar_s * 1e3,
        blocked_s * 1e3,
        rec.speedup(),
        rec.gflops()
    );
    rec
}

fn main() {
    println!(
        "kernel benchmarks: {} worker thread(s), backends checked for bit-identical results\n",
        num_threads()
    );
    let mut records = Vec::new();
    for &(model, tokens, dim) in DEIT_SHAPES {
        records.push(bench_gemm(&format!("{model}_proj"), tokens, dim, dim, 0.5));
    }
    // The acceptance shape: the blocked backend must beat scalar ≥ 4×.
    let big = bench_gemm("gemm_1024", 1024, 1024, 1024, 0.0);
    let big_speedup = big.speedup();
    records.push(big);

    // Softmax at attention-map scale (197 tokens), for the trajectory.
    let s = Initializer::Normal { std: 1.0 }.sample(197, 197, 3);
    let softmax_s = time_best(0.25, || {
        std::hint::black_box(softmax_rows(&s));
    });
    println!(
        "{:<28} (197x197)              blocked {:>9.3} ms",
        "softmax_rows",
        softmax_s * 1e3
    );

    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let mut json = String::from("{\n  \"bench\": \"kernels\",\n");
    json.push_str(&format!("  \"threads\": {},\n", num_threads()));
    json.push_str("  \"gemm\": [\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"scalar_s\": {:.6}, \"blocked_s\": {:.6}, \"speedup\": {:.2}, \"blocked_gflops\": {:.2}}}{}\n",
            r.name,
            r.m,
            r.k,
            r.n,
            r.scalar_s,
            r.blocked_s,
            r.speedup(),
            r.gflops(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"softmax_rows_197_s\": {softmax_s:.6}\n}}\n"));
    std::fs::write(json_path, json).expect("write BENCH_kernels.json");
    println!("\nrecorded baseline to BENCH_kernels.json");

    assert!(
        big_speedup >= 4.0,
        "blocked backend must beat the scalar reference by >= 4x on the \
         1024^3 GEMM (got {big_speedup:.1}x)"
    );
}
