//! Training-path benchmark: what the `vitcod-train` subsystem buys over
//! the per-sample, dense-`-inf`-masked loop it replaced.
//!
//! Run with `cargo bench -p vitcod-bench --bench training`; results are
//! printed and recorded to `BENCH_training.json` at the workspace root.
//! Three measurements, each with a gate:
//!
//! * **batched vs per-sample step throughput** at the trainable
//!   substrate (DeiT-Tiny's reduced training shape) and 90 % sparsity,
//!   batch 8: the subsystem's step (one stacked tape, masks frozen to
//!   CSC) must beat the loop it replaced (one `-inf`-masked tape per
//!   sample, the pre-`vitcod-train` trainer) by ≥ 1.3× — the batched
//!   tape amortises weight imports, per-op bookkeeping and backward
//!   caches across the batch, and the frozen masks drop the dense
//!   mask-bias arithmetic;
//! * **sparse vs dense-masked attention step** at the full DeiT-Tiny
//!   shape (197 tokens × 64-dim heads) and 90 % sparsity: one layer's
//!   fused attention forward + backward through the CSC dataflow must
//!   beat the `-inf`-masked dense path by ≥ 1.2× — the nnz-scaled
//!   backward is what makes sparse *training* cost follow the mask;
//! * **full finetune step** at the full DeiT-Tiny shape: the sparse
//!   step must not be slower than the dense-masked step (≥ 1.0×; the
//!   QKV/MLP projections dominate this shape on one core, so the
//!   end-to-end margin is structural but small).

use std::sync::Arc;
use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vitcod_autograd::{Adam, Optimizer, ParamStore, Tape};
use vitcod_core::prune_to_sparsity;
use vitcod_model::{
    AttentionStats, Sample, SparsityPlan, TrainConfig, ViTConfig, VisionTransformer,
};
use vitcod_tensor::sparse::{self, CscMatrix};
use vitcod_tensor::{kernels, Initializer, Matrix};

const BATCH: usize = 8;
const SPARSITY: f64 = 0.9;
const BATCHED_GATE: f64 = 1.3;
const ATTENTION_GATE: f64 = 1.2;
const FULL_STEP_GATE: f64 = 1.0;

/// Times `f` over `runs` invocations (after one warm-up) and returns the
/// best observed seconds per invocation.
fn time_best(runs: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Builds a model at `cfg` with a 90 % sparsity plan installed (from the
/// statistical attention ensemble), optionally with the paper's AE
/// modules, optionally frozen to CSC.
fn sparse_model(
    cfg: &ViTConfig,
    in_dim: usize,
    classes: usize,
    auto_encoder: bool,
    frozen: bool,
) -> (VisionTransformer, ParamStore) {
    let mut store = ParamStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(0x7121);
    let mut model = VisionTransformer::new(cfg, in_dim, classes, &mut store, &mut rng);
    if auto_encoder {
        model.insert_auto_encoder(
            vitcod_model::AutoEncoderSpec::half(cfg.heads),
            &mut store,
            &mut rng,
        );
    }
    let stats = AttentionStats::for_model(cfg, vitcod_bench::WORKLOAD_SEED);
    let plan: SparsityPlan = (0..cfg.depth)
        .map(|l| {
            (0..cfg.heads)
                .map(|h| {
                    let map = &stats.maps[l % stats.maps.len()][h % stats.maps[0].len()];
                    Some(prune_to_sparsity(map, SPARSITY).to_matrix())
                })
                .collect()
        })
        .collect();
    model.set_sparsity_plan(plan);
    if frozen {
        model.freeze_sparse_attention();
    }
    (model, store)
}

fn make_batch(cfg: &ViTConfig, in_dim: usize) -> Vec<Sample> {
    (0..BATCH)
        .map(|i| Sample {
            tokens: Initializer::Normal { std: 1.0 }.sample(cfg.tokens, in_dim, 7_000 + i as u64),
            label: i % 4,
        })
        .collect()
}

/// One full optimizer step driven through a single batched tape.
fn batched_step(
    model: &VisionTransformer,
    store: &mut ParamStore,
    opt: &mut Adam,
    batch: &[Sample],
    clip: Option<f32>,
) -> f32 {
    store.zero_grads();
    let tokens: Vec<&Matrix> = batch.iter().map(|s| &s.tokens).collect();
    let targets: Vec<usize> = batch.iter().map(|s| s.label).collect();
    let mut tape = Tape::new();
    let out = model.forward_batch(&mut tape, store, &tokens);
    let ce = tape.cross_entropy(out.logits, &targets);
    let loss_node = match out.recon_loss {
        Some(r) => tape.weighted_sum(ce, r, 1.0, 1.0),
        None => ce,
    };
    let loss = tape.scalar(loss_node);
    tape.backward(loss_node);
    tape.write_grads(store);
    if let Some(c) = clip {
        store.clip_grad_norm(c);
    }
    opt.step(store);
    loss
}

/// The replaced loop: one tape per sample, gradients accumulated and
/// rescaled, then the same clip + optimizer step.
fn per_sample_step(
    model: &VisionTransformer,
    store: &mut ParamStore,
    opt: &mut Adam,
    batch: &[Sample],
    clip: Option<f32>,
) -> f32 {
    store.zero_grads();
    let mut loss_sum = 0.0;
    for s in batch {
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, store, &s.tokens);
        let ce = tape.cross_entropy(out.logits, &[s.label]);
        let loss_node = match out.recon_loss {
            Some(r) => tape.weighted_sum(ce, r, 1.0, 1.0),
            None => ce,
        };
        loss_sum += tape.scalar(loss_node);
        tape.backward(loss_node);
        tape.write_grads(store);
    }
    // The replaced trainer averaged summed gradients with a
    // scale-and-accumulate pass per parameter; reproduced verbatim so
    // the baseline costs what the old loop cost.
    let scale = 1.0 / batch.len() as f32;
    for id in store.ids().collect::<Vec<_>>() {
        let g = store.grad(id).scale(scale - 1.0);
        store.accumulate_grad(id, &g);
    }
    if let Some(c) = clip {
        store.clip_grad_norm(c);
    }
    opt.step(store);
    loss_sum / batch.len() as f32
}

fn main() {
    let train_cfg = TrainConfig::default();
    println!(
        "training benchmark: batch {BATCH}, {} worker thread(s)\n",
        kernels::num_threads()
    );

    // ------------------------------------------------------------------
    // 1. The subsystem's finetune step (batched tape, frozen CSC masks)
    //    vs the loop it replaced (per-sample tapes, dense -inf biases)
    //    at the trainable substrate shape, with the paper's AE modules
    //    installed (the Fig. 10 finetune recipe) — identical weights and
    //    identical masks, only the execution strategy differs.
    // ------------------------------------------------------------------
    let substrate = ViTConfig::deit_tiny().reduced_for_training();
    let in_dim = 8;
    let batch = make_batch(&substrate, in_dim);
    // Same seed -> identical weights and masks; one keeps the -inf
    // biases, the other freezes them to CSC.
    let (masked_substrate, store) = sparse_model(&substrate, in_dim, 4, true, false);
    let (frozen_substrate, _) = sparse_model(&substrate, in_dim, 4, true, true);

    let mut ps_store = store.clone();
    let mut ps_opt = Adam::new(train_cfg.lr);
    let per_sample_s = time_best(20, || {
        std::hint::black_box(per_sample_step(
            &masked_substrate,
            &mut ps_store,
            &mut ps_opt,
            &batch,
            train_cfg.clip_norm,
        ));
    });
    let mut b_store = store.clone();
    let mut b_opt = Adam::new(train_cfg.lr);
    let batched_s = time_best(20, || {
        std::hint::black_box(batched_step(
            &frozen_substrate,
            &mut b_store,
            &mut b_opt,
            &batch,
            train_cfg.clip_norm,
        ));
    });
    let batched_speedup = per_sample_s / batched_s;
    println!(
        "substrate ({} tokens, {} dim, {} heads x {} layers) @ {:.0}% sparse, batch {BATCH}:",
        substrate.tokens,
        substrate.dim,
        substrate.heads,
        substrate.depth,
        SPARSITY * 100.0
    );
    println!(
        "  per-sample -inf-masked step (replaced loop) {:>8.3} ms  ({:.1} samples/s)",
        per_sample_s * 1e3,
        BATCH as f64 / per_sample_s
    );
    println!(
        "  batched frozen-sparse step (vitcod-train)   {:>8.3} ms  ({:.1} samples/s)  -> {batched_speedup:.2}x\n",
        batched_s * 1e3,
        BATCH as f64 / batched_s
    );

    // ------------------------------------------------------------------
    // 2. Sparse vs dense-masked attention training step (forward +
    //    backward of one fused attention layer) at the full DeiT-Tiny
    //    shape and 90 % sparsity.
    // ------------------------------------------------------------------
    let full = ViTConfig::deit_tiny();
    let (n, dk, heads) = (full.tokens, full.head_dim(), full.heads);
    let stats = AttentionStats::for_model(&full, vitcod_bench::WORKLOAD_SEED);
    let masks: Vec<Matrix> = (0..heads)
        .map(|h| prune_to_sparsity(&stats.maps[0][h], SPARSITY).to_matrix())
        .collect();
    let biases: Vec<Arc<Matrix>> = masks
        .iter()
        .map(|m| {
            let mut b = m.clone();
            b.map_inplace(|kept| if kept == 0.0 { f32::NEG_INFINITY } else { 0.0 });
            Arc::new(b)
        })
        .collect();
    let cscs: Vec<Arc<CscMatrix>> = masks
        .iter()
        .map(|m| Arc::new(CscMatrix::from_indicator(n, |q, k| m.get(q, k) != 0.0)))
        .collect();
    let nnz: usize = cscs.iter().map(|c| c.nnz()).sum();
    let q = Initializer::Normal { std: 1.0 }.sample(n, heads * dk, 91);
    let k = Initializer::Normal { std: 1.0 }.sample(n, heads * dk, 92);
    let v = Initializer::Normal { std: 1.0 }.sample(n, heads * dk, 93);
    let gout = Initializer::Normal { std: 1.0 }.sample(n, heads * dk, 94);
    let scale = 1.0 / (dk as f32).sqrt();

    let mask_biases: Vec<Option<Matrix>> = biases.iter().map(|b| Some((**b).clone())).collect();
    let masked_attn_s = time_best(5, || {
        let fwd = kernels::multi_head_attention(&q, &k, &v, dk, scale, &mask_biases);
        std::hint::black_box(kernels::multi_head_attention_backward(
            &q, &k, &v, dk, scale, &fwd.probs, &gout,
        ));
    });
    let sparse_attn_s = time_best(5, || {
        for (h, csc) in cscs.iter().enumerate() {
            let c0 = h * dk;
            let qh = q.submatrix(0, n, c0, c0 + dk);
            let kh = k.submatrix(0, n, c0, c0 + dk);
            let vh = v.submatrix(0, n, c0, c0 + dk);
            let gh = gout.submatrix(0, n, c0, c0 + dk);
            let probs = sparse::sddmm_k_stationary(&qh, &kh, csc, scale).softmax_rows();
            std::hint::black_box(sparse::spmm_output_stationary(&probs, &vh));
            std::hint::black_box(sparse::attention_head_backward(
                &qh, &kh, &vh, scale, &probs, &gh,
            ));
        }
    });
    let attention_speedup = masked_attn_s / sparse_attn_s;
    println!(
        "attention step ({n} tokens x {heads} heads, dk {dk}, {:.1}% actual sparsity):",
        (1.0 - nnz as f64 / (heads * n * n) as f64) * 100.0
    );
    println!("  dense -inf masked {:>8.3} ms", masked_attn_s * 1e3);
    println!(
        "  sparse CSC        {:>8.3} ms  -> {attention_speedup:.2}x\n",
        sparse_attn_s * 1e3
    );

    // ------------------------------------------------------------------
    // 3. Full finetune step, sparse vs dense-masked, at the full
    //    DeiT-Tiny shape (batch 1 keeps the run short; the ratio is
    //    batch-independent).
    // ------------------------------------------------------------------
    let full_in_dim = 48;
    let full_batch = &make_batch(&full, full_in_dim)[..1];
    let (masked_model, masked_store) = sparse_model(&full, full_in_dim, 10, false, false);
    let mut m_store = masked_store.clone();
    let mut m_opt = Adam::new(train_cfg.lr);
    let masked_step_s = time_best(3, || {
        std::hint::black_box(batched_step(
            &masked_model,
            &mut m_store,
            &mut m_opt,
            full_batch,
            train_cfg.clip_norm,
        ));
    });
    let (frozen_model, frozen_store) = sparse_model(&full, full_in_dim, 10, false, true);
    let mut f_store = frozen_store.clone();
    let mut f_opt = Adam::new(train_cfg.lr);
    let sparse_step_s = time_best(3, || {
        std::hint::black_box(batched_step(
            &frozen_model,
            &mut f_store,
            &mut f_opt,
            full_batch,
            train_cfg.clip_norm,
        ));
    });
    let full_step_speedup = masked_step_s / sparse_step_s;
    println!(
        "full finetune step (DeiT-Tiny, {n} tokens, {} dim):",
        full.dim
    );
    println!("  dense -inf masked {:>8.1} ms", masked_step_s * 1e3);
    println!(
        "  sparse CSC        {:>8.1} ms  -> {full_step_speedup:.2}x\n",
        sparse_step_s * 1e3
    );

    // ------------------------------------------------------------------
    // Record + gates.
    // ------------------------------------------------------------------
    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_training.json");
    let json = format!(
        "{{\n  \"bench\": \"training\",\n  \"threads\": {},\n  \"batch\": {BATCH},\n  \
         \"sparsity\": {SPARSITY},\n  \"batched\": {{\"shape\": \"substrate {st} tokens x {sd} dim\", \
         \"per_sample_step_s\": {per_sample_s:.6}, \"batched_step_s\": {batched_s:.6}, \
         \"speedup\": {batched_speedup:.3}, \"gate\": {BATCHED_GATE}}},\n  \
         \"attention_step\": {{\"shape\": \"{n} tokens x {heads} heads x dk {dk}\", \
         \"masked_s\": {masked_attn_s:.6}, \"sparse_s\": {sparse_attn_s:.6}, \
         \"speedup\": {attention_speedup:.3}, \"gate\": {ATTENTION_GATE}}},\n  \
         \"full_step\": {{\"shape\": \"DeiT-Tiny {n} tokens x {fd} dim\", \
         \"masked_s\": {masked_step_s:.6}, \"sparse_s\": {sparse_step_s:.6}, \
         \"speedup\": {full_step_speedup:.3}, \"gate\": {FULL_STEP_GATE}}}\n}}\n",
        kernels::num_threads(),
        st = substrate.tokens,
        sd = substrate.dim,
        fd = full.dim,
    );
    std::fs::write(json_path, json).expect("write BENCH_training.json");
    println!("recorded to BENCH_training.json");

    assert!(
        batched_speedup >= BATCHED_GATE,
        "batched training at batch {BATCH} must beat per-sample by >= {BATCHED_GATE}x \
         (got {batched_speedup:.2}x)"
    );
    assert!(
        attention_speedup >= ATTENTION_GATE,
        "the sparse attention training step must beat the dense -inf-masked step by \
         >= {ATTENTION_GATE}x at DeiT-Tiny/90% (got {attention_speedup:.2}x)"
    );
    assert!(
        full_step_speedup >= FULL_STEP_GATE,
        "a sparse finetune step must not be slower than the dense -inf-masked step \
         (got {full_step_speedup:.2}x)"
    );
}
