//! Criterion benchmarks of the ViTCoD algorithm components: pruning,
//! reordering, CSC construction and a training step of the substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vitcod_autograd::ParamStore;
use vitcod_core::{prune_info, prune_to_sparsity, reorder_global_tokens, CscMatrix};
use vitcod_model::{
    AttentionStats, SyntheticTask, SyntheticTaskConfig, TrainConfig, Trainer, ViTConfig,
    VisionTransformer,
};

fn bench_split_conquer(c: &mut Criterion) {
    let stats = AttentionStats::for_model(&ViTConfig::deit_base(), 1);
    let map = stats.maps[6][6].clone();
    let mut group = c.benchmark_group("split_conquer_197");
    for &s in &[0.6f64, 0.9] {
        group.bench_with_input(
            BenchmarkId::new("prune_to_sparsity", format!("{:.0}%", s * 100.0)),
            &s,
            |b, &s| b.iter(|| prune_to_sparsity(&map, s)),
        );
    }
    group.bench_function("prune_info_theta_0.9", |b| b.iter(|| prune_info(&map, 0.9)));
    let mask = prune_to_sparsity(&map, 0.9);
    group.bench_function("reorder_global_tokens", |b| {
        b.iter(|| reorder_global_tokens(&mask, None))
    });
    group.bench_function("csc_from_mask", |b| b.iter(|| CscMatrix::from_mask(&mask)));
    group.finish();
}

fn bench_training_step(c: &mut Criterion) {
    let task = SyntheticTask::generate(SyntheticTaskConfig {
        train_samples: 8,
        test_samples: 4,
        ..Default::default()
    });
    let cfg = ViTConfig::deit_tiny().reduced_for_training();
    let mut store = ParamStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let vit = VisionTransformer::new(
        &cfg,
        task.config.in_dim,
        task.config.num_classes,
        &mut store,
        &mut rng,
    );
    let trainer = Trainer::new(vit, store);
    c.bench_function("train_epoch_tiny_vit_8_samples", |b| {
        b.iter_batched(
            || trainer.clone(),
            |mut t| {
                t.train(
                    &task,
                    &TrainConfig {
                        epochs: 1,
                        ..Default::default()
                    },
                )
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_attention_stats(c: &mut Criterion) {
    c.bench_function("generate_deit_base_ensemble", |b| {
        b.iter(|| AttentionStats::for_model(&ViTConfig::deit_base(), 3))
    });
}

criterion_group!(
    benches,
    bench_split_conquer,
    bench_training_step,
    bench_attention_stats
);
criterion_main!(benches);
