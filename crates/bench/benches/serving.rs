//! Serving-engine benchmark: batched inference throughput at the real
//! DeiT-Tiny shape (197 tokens, 192 dim, 3 heads, 12 layers) across the
//! engine's four execution modes — dense vs 90 %-sparse attention,
//! fp32 vs int8.
//!
//! Run with `cargo bench -p vitcod-bench --bench serving`; results are
//! printed and recorded to `BENCH_serving.json` at the workspace root.
//! The run enforces the serving acceptance gate: batched **sparse int8**
//! throughput must be at least batched **dense fp32** throughput —
//! the co-designed artifact must not be slower to serve than the
//! baseline it replaces.

use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vitcod_autograd::ParamStore;
use vitcod_core::prune_to_sparsity;
use vitcod_engine::{CompiledVit, Engine, Precision};
use vitcod_model::{AttentionStats, Sample, SparsityPlan, ViTConfig, VisionTransformer};
use vitcod_tensor::{kernels, Initializer};

const IN_DIM: usize = 48;
const CLASSES: usize = 10;
const BATCH: usize = 8;
const SPARSITY: f64 = 0.9;

/// Times `f` over `runs` invocations (after one warm-up) and returns the
/// best observed seconds per invocation.
fn time_best(runs: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct Record {
    name: &'static str,
    latency_s: f64,
}

impl Record {
    fn samples_per_s(&self) -> f64 {
        BATCH as f64 / self.latency_s
    }
}

fn main() {
    let cfg = ViTConfig::deit_tiny();
    println!(
        "serving benchmark: {} at paper shape ({} tokens, {} dim, {} heads x {} layers), \
         batch {BATCH}, {} worker thread(s)\n",
        cfg.name,
        cfg.tokens,
        cfg.dim,
        cfg.heads,
        cfg.depth,
        kernels::num_threads()
    );

    // Random weights at the full DeiT-Tiny shape (throughput does not
    // care about training) and 90 %-sparse masks from the statistical
    // attention ensemble — the same workload source the simulator
    // benchmarks use.
    let mut store = ParamStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(0xE17);
    let mut model = VisionTransformer::new(&cfg, IN_DIM, CLASSES, &mut store, &mut rng);
    let dense = CompiledVit::from_parts(&model, &store);

    let stats = AttentionStats::for_model(&cfg, vitcod_bench::WORKLOAD_SEED);
    let plan: SparsityPlan = stats
        .maps
        .iter()
        .map(|layer| {
            layer
                .iter()
                .map(|m| Some(prune_to_sparsity(m, SPARSITY).to_matrix()))
                .collect()
        })
        .collect();
    model.set_sparsity_plan(plan);
    let sparse = CompiledVit::from_parts(&model, &store);
    println!(
        "sparse artifact: {} sparse heads at {:.1}% mean attention sparsity\n",
        sparse.num_sparse_heads(),
        sparse.mean_attention_sparsity() * 100.0
    );

    let samples: Vec<Sample> = (0..BATCH)
        .map(|i| Sample {
            tokens: Initializer::Normal { std: 1.0 }.sample(cfg.tokens, IN_DIM, 900 + i as u64),
            label: 0,
        })
        .collect();

    let configs: [(&'static str, &CompiledVit, Precision); 4] = [
        ("dense_fp32", &dense, Precision::Fp32),
        ("dense_int8", &dense, Precision::Int8),
        ("sparse_fp32", &sparse, Precision::Fp32),
        ("sparse_int8", &sparse, Precision::Int8),
    ];
    let mut records = Vec::new();
    for (name, artifact, precision) in configs {
        let engine = Engine::builder(artifact.clone())
            .precision(precision)
            .build();
        // Best-of-3: scheduler noise only ever inflates a wall-clock
        // sample, so the minimum converges on the true latency and keeps
        // the ~1.05-1.1x acceptance margin below from flapping.
        let latency_s = time_best(3, || {
            std::hint::black_box(engine.infer_batch(&samples));
        });
        let rec = Record { name, latency_s };
        println!(
            "{:<12}  batch {:>9.1} ms  {:>7.1} samples/s",
            rec.name,
            latency_s * 1e3,
            rec.samples_per_s()
        );
        records.push(rec);
    }

    let throughput = |name: &str| {
        records
            .iter()
            .find(|r| r.name == name)
            .expect("record")
            .samples_per_s()
    };
    let speedup = throughput("sparse_int8") / throughput("dense_fp32");
    println!("\nsparse int8 vs dense fp32 throughput: {speedup:.2}x");

    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    let mut json = String::from("{\n  \"bench\": \"serving\",\n");
    json.push_str(&format!(
        "  \"model\": \"{}\",\n  \"tokens\": {},\n  \"dim\": {},\n  \"heads\": {},\n  \"depth\": {},\n",
        cfg.name, cfg.tokens, cfg.dim, cfg.heads, cfg.depth
    ));
    json.push_str(&format!(
        "  \"sparsity\": {SPARSITY},\n  \"batch\": {BATCH},\n  \"threads\": {},\n",
        kernels::num_threads()
    ));
    json.push_str("  \"configs\": [\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"batch_latency_s\": {:.6}, \"samples_per_s\": {:.2}}}{}\n",
            r.name,
            r.latency_s,
            r.samples_per_s(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"sparse_int8_over_dense_fp32\": {speedup:.3}\n}}\n"
    ));
    std::fs::write(json_path, json).expect("write BENCH_serving.json");
    println!("recorded to BENCH_serving.json");

    assert!(
        speedup >= 1.0,
        "batched sparse int8 throughput must be >= batched dense fp32 \
         throughput at the DeiT-Tiny shape (got {speedup:.2}x)"
    );
}
