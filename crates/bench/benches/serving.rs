//! Serving-engine benchmark: batched inference throughput at the real
//! DeiT-Tiny shape (197 tokens, 192 dim, 3 heads, 12 layers) across the
//! engine's four execution modes — dense vs 90 %-sparse attention,
//! fp32 vs int8.
//!
//! Run with `cargo bench -p vitcod-bench --bench serving`; results are
//! printed and recorded to `BENCH_serving.json` at the workspace root.
//! The run enforces the serving acceptance gates:
//!
//! * batched **dense int8** throughput must be at least batched
//!   **dense fp32** throughput — quantization must pay for itself on the
//!   projection GEMMs, not just shrink the artifact;
//! * batched **sparse int8** throughput must beat batched **dense fp32**
//!   by more than [`SPARSE_INT8_GATE`] — the co-designed artifact's
//!   sparsity and quantization wins must compound end to end;
//! * driving the same engine through the **request-queue `Server`**
//!   (concurrent producers → bounded queue → dynamic batches) must
//!   retain ≥ 0.9× the direct `infer_batch` throughput — the serving
//!   shell may cost at most 10 %;
//! * driving that server through the **HTTP transport** (loopback TCP,
//!   JSON bodies, keep-alive connections) must retain ≥ 0.7× the
//!   in-process queued throughput — the socket, parser and codec may
//!   cost at most 30 %;
//! * an **open-loop scenario** (Poisson arrivals at 0.7× the measured
//!   single-sample saturation rate, through the full transport) is the
//!   **latency of record**: it gates p99 ≤ the stated deadline with
//!   zero expiries, and its p50/p99/p999 plus per-stage breakdown are
//!   what `BENCH_serving.json` reports — the closed-loop sections
//!   above state throughput only, since a closed-loop client's
//!   self-throttling makes its latency percentiles an artifact of the
//!   harness, not a property of the server.

use std::time::{Duration, Instant};

use vitcod_bench::load::{self, LoadConfig, Target};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vitcod_autograd::ParamStore;
use vitcod_core::prune_to_sparsity;
use vitcod_engine::{CompiledVit, Engine, Precision};
use vitcod_model::{AttentionStats, Sample, SparsityPlan, ViTConfig, VisionTransformer};
use vitcod_serve::{BatchConfig, ModelRegistry, Server, TailConfig, TracingConfig};
use vitcod_tensor::{kernels, Initializer, Matrix};
use vitcod_transport::{api, HttpClient, HttpServer, Json, TransportConfig};

const IN_DIM: usize = 48;
const CLASSES: usize = 10;
const BATCH: usize = 8;
const SPARSITY: f64 = 0.9;
/// Queue-driven section: concurrent producers and total request count.
const QUEUE_CLIENTS: usize = 4;
const QUEUE_REQUESTS: usize = 32;
/// Minimum sparse-int8-over-dense-fp32 end-to-end speedup (the seed's
/// recorded edge was 1.14×; the packed int8 projection GEMM must widen
/// it).
const SPARSE_INT8_GATE: f64 = 1.14;
/// Minimum acceptable queued/direct throughput ratio.
const QUEUE_GATE: f64 = 0.9;
/// Minimum acceptable socket/in-process throughput ratio.
const TRANSPORT_GATE: f64 = 0.7;
/// Open-loop section: requests in the Poisson schedule.
const OPEN_REQUESTS: usize = 96;
/// Open-loop offered load as a fraction of the single-sample
/// saturation rate (the utilization the SLO is stated at).
const OPEN_RHO: f64 = 0.7;
/// Open-loop SLO deadline: this many single-sample service times, but
/// never below 1 s (shared-box scheduler noise must not flap the gate).
const OPEN_DEADLINE_SERVICE_TIMES: f64 = 12.0;
/// Tracing-overhead gate: with head sampling at rate 0 the span
/// machinery must cost at most 1% of open-loop p99, plus this absolute
/// scheduler-noise floor (one-CPU CI boxes jitter tails by tens of ms
/// between identical runs).
const TRACING_OVERHEAD_FRAC: f64 = 0.01;
const TRACING_OVERHEAD_EPS_S: f64 = 0.020;

/// Times `f` over `runs` invocations (after one warm-up) and returns the
/// best observed seconds per invocation.
fn time_best(runs: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct Record {
    name: &'static str,
    latency_s: f64,
}

impl Record {
    fn samples_per_s(&self) -> f64 {
        BATCH as f64 / self.latency_s
    }
}

fn main() {
    let cfg = ViTConfig::deit_tiny();
    println!(
        "serving benchmark: {} at paper shape ({} tokens, {} dim, {} heads x {} layers), \
         batch {BATCH}, {} worker thread(s)\n",
        cfg.name,
        cfg.tokens,
        cfg.dim,
        cfg.heads,
        cfg.depth,
        kernels::num_threads()
    );

    // Random weights at the full DeiT-Tiny shape (throughput does not
    // care about training) and 90 %-sparse masks from the statistical
    // attention ensemble — the same workload source the simulator
    // benchmarks use.
    let mut store = ParamStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(0xE17);
    let mut model = VisionTransformer::new(&cfg, IN_DIM, CLASSES, &mut store, &mut rng);
    let dense = CompiledVit::from_parts(&model, &store);

    let stats = AttentionStats::for_model(&cfg, vitcod_bench::WORKLOAD_SEED);
    let plan: SparsityPlan = stats
        .maps
        .iter()
        .map(|layer| {
            layer
                .iter()
                .map(|m| Some(prune_to_sparsity(m, SPARSITY).to_matrix()))
                .collect()
        })
        .collect();
    model.set_sparsity_plan(plan);
    let sparse = CompiledVit::from_parts(&model, &store);
    println!(
        "sparse artifact: {} sparse heads at {:.1}% mean attention sparsity\n",
        sparse.num_sparse_heads(),
        sparse.mean_attention_sparsity() * 100.0
    );

    let samples: Vec<Sample> = (0..BATCH)
        .map(|i| Sample {
            tokens: Initializer::Normal { std: 1.0 }.sample(cfg.tokens, IN_DIM, 900 + i as u64),
            label: 0,
        })
        .collect();

    let configs: [(&'static str, &CompiledVit, Precision); 4] = [
        ("dense_fp32", &dense, Precision::Fp32),
        ("dense_int8", &dense, Precision::Int8),
        ("sparse_fp32", &sparse, Precision::Fp32),
        ("sparse_int8", &sparse, Precision::Int8),
    ];
    let mut records = Vec::new();
    for (name, artifact, precision) in configs {
        let engine = Engine::builder(artifact.clone())
            .precision(precision)
            .build();
        // Best-of-3: scheduler noise only ever inflates a wall-clock
        // sample, so the minimum converges on the true latency and keeps
        // the ~1.05-1.1x acceptance margin below from flapping.
        let latency_s = time_best(3, || {
            std::hint::black_box(engine.infer_batch(&samples));
        });
        let rec = Record { name, latency_s };
        println!(
            "{:<12}  batch {:>9.1} ms  {:>7.1} samples/s",
            rec.name,
            latency_s * 1e3,
            rec.samples_per_s()
        );
        records.push(rec);
    }

    let throughput = |name: &str| {
        records
            .iter()
            .find(|r| r.name == name)
            .expect("record")
            .samples_per_s()
    };
    let speedup = throughput("sparse_int8") / throughput("dense_fp32");
    let int8_speedup = throughput("dense_int8") / throughput("dense_fp32");
    println!("\ndense int8 vs dense fp32 throughput: {int8_speedup:.2}x");
    println!("sparse int8 vs dense fp32 throughput: {speedup:.2}x");

    // ------------------------------------------------------------------
    // End-to-end through the serving layer: the same dense fp32 engine
    // behind a `Server` — concurrent producers submit tickets through
    // the bounded queue, the dynamic batcher assembles full batches,
    // workers drain them. Measures what the queueing shell costs over
    // direct `infer_batch`.
    // ------------------------------------------------------------------
    let run_queued = || {
        let mut registry = ModelRegistry::new();
        registry
            .register("dense_fp32", Engine::builder(dense.clone()).build())
            .expect("register");
        let server = Server::start(
            registry,
            BatchConfig {
                max_batch_size: BATCH,
                max_wait: Duration::from_millis(2),
                queue_capacity: QUEUE_REQUESTS,
                workers: 2,
            },
        );
        let t = Instant::now();
        let handles: Vec<_> = (0..QUEUE_CLIENTS)
            .map(|c| {
                let client = server.client();
                std::thread::spawn(move || {
                    // Submit the whole burst, then await the tickets —
                    // keeping the queue full so batches assemble at the
                    // size trigger, not the deadline.
                    let tickets: Vec<_> = (0..QUEUE_REQUESTS / QUEUE_CLIENTS)
                        .map(|i| {
                            let tokens: Matrix = Initializer::Normal { std: 1.0 }.sample(
                                ViTConfig::deit_tiny().tokens,
                                IN_DIM,
                                (c * 1000 + i) as u64,
                            );
                            client.submit("dense_fp32", tokens).expect("submit")
                        })
                        .collect();
                    for ticket in tickets {
                        std::hint::black_box(ticket.wait().expect("served"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("producer");
        }
        let elapsed = t.elapsed().as_secs_f64();
        let stats = server.shutdown();
        let m = stats.model("dense_fp32").expect("model served").clone();
        (QUEUE_REQUESTS as f64 / elapsed, m)
    };
    // Warm-up once, then best-of-3 like the direct section.
    let _ = run_queued();
    let mut queued_tput = 0.0f64;
    let mut queued_stats = None;
    for _ in 0..3 {
        let (tput, m) = run_queued();
        if tput > queued_tput {
            queued_tput = tput;
            queued_stats = Some(m);
        }
    }
    let queued_stats = queued_stats.expect("at least one queued run");
    let queue_ratio = queued_tput / throughput("dense_fp32");
    println!(
        "queued dense_fp32: {:.1} samples/s ({QUEUE_CLIENTS} clients, mean fill {:.2}, \
         p50 {:.1} ms, p99 {:.1} ms) -> {:.2}x of direct",
        queued_tput,
        queued_stats.mean_batch_fill,
        queued_stats.p50_latency_s * 1e3,
        queued_stats.p99_latency_s * 1e3,
        queue_ratio
    );

    // ------------------------------------------------------------------
    // Through the wire: the same server behind `vitcod_transport` on a
    // loopback socket — concurrent keep-alive connections, JSON batch
    // bodies, hand-rolled parser. Measures what the network front end
    // costs over the in-process client.
    // ------------------------------------------------------------------
    let run_transport = || {
        let mut registry = ModelRegistry::new();
        registry
            .register("dense_fp32", Engine::builder(dense.clone()).build())
            .expect("register");
        let server = Server::start(
            registry,
            BatchConfig {
                max_batch_size: BATCH,
                max_wait: Duration::from_millis(2),
                queue_capacity: QUEUE_REQUESTS,
                workers: 2,
            },
        );
        let http = HttpServer::bind("127.0.0.1:0", server, TransportConfig::default())
            .expect("bind loopback");
        let addr = http.local_addr();
        let t = Instant::now();
        let handles: Vec<_> = (0..QUEUE_CLIENTS)
            .map(|c| {
                std::thread::spawn(move || {
                    // One batch request per connection carrying this
                    // client's whole burst: the server submits one
                    // ticket per sample, so the dynamic batcher sees
                    // the same 32 in-flight samples as the in-process
                    // section.
                    let mut client = HttpClient::connect(addr).expect("connect");
                    let items: Vec<Json> = (0..QUEUE_REQUESTS / QUEUE_CLIENTS)
                        .map(|i| {
                            let tokens: Matrix = Initializer::Normal { std: 1.0 }.sample(
                                ViTConfig::deit_tiny().tokens,
                                IN_DIM,
                                (c * 1000 + i) as u64,
                            );
                            Json::Object(vec![("tokens".into(), api::tokens_json(&tokens))])
                        })
                        .collect();
                    let body = Json::Object(vec![("batch".into(), Json::Array(items))]).to_string();
                    let resp = client
                        .post("/v1/models/dense_fp32/classify", &body)
                        .expect("classify over loopback");
                    assert_eq!(resp.status, 200, "{}", resp.body_str());
                    std::hint::black_box(resp);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("http client");
        }
        let elapsed = t.elapsed().as_secs_f64();
        let stats = http.shutdown();
        let m = stats.model("dense_fp32").expect("model served").clone();
        (QUEUE_REQUESTS as f64 / elapsed, m)
    };
    let _ = run_transport();
    let mut transport_tput = 0.0f64;
    let mut transport_stats = None;
    for _ in 0..3 {
        let (tput, m) = run_transport();
        if tput > transport_tput {
            transport_tput = tput;
            transport_stats = Some(m);
        }
    }
    let transport_stats = transport_stats.expect("at least one transport run");
    let transport_ratio = transport_tput / queued_tput;
    println!(
        "transport dense_fp32: {:.1} samples/s ({QUEUE_CLIENTS} connections, \
         p50 {:.1} ms, p99 {:.1} ms) -> {:.2}x of in-process",
        transport_tput,
        transport_stats.p50_latency_s * 1e3,
        transport_stats.p99_latency_s * 1e3,
        transport_ratio
    );

    // ------------------------------------------------------------------
    // Open-loop latency of record: Poisson arrivals at 0.7x the
    // measured single-sample saturation rate, through the full
    // transport. Unlike the closed-loop sections above (whose clients
    // slow down whenever the server does), the arrival schedule here is
    // fixed up front, so the percentiles describe the server at a
    // stated offered load — the only form in which an SLO is honest.
    // ------------------------------------------------------------------
    let dense_engine = Engine::builder(dense.clone()).build();
    let single = &samples[..1];
    let s1 = time_best(3, || {
        std::hint::black_box(dense_engine.infer_batch(single));
    });
    drop(dense_engine);
    // One sample every `s1` seconds is the engine's worst-case (fill-1)
    // service rate, so offering OPEN_RHO of it bounds utilization at
    // OPEN_RHO regardless of how well batches fill.
    let open_rate = OPEN_RHO / s1;
    let open_deadline_s = (OPEN_DEADLINE_SERVICE_TIMES * s1).max(1.0);
    let open_deadline_ms = (open_deadline_s * 1e3).ceil() as u64;
    let run_open_loop = |tracing: TracingConfig| {
        let mut registry = ModelRegistry::new();
        registry
            .register("dense_fp32", Engine::builder(dense.clone()).build())
            .expect("register");
        let server = Server::start_with_tracing(
            registry,
            BatchConfig {
                max_batch_size: BATCH,
                max_wait: Duration::from_millis(2),
                queue_capacity: QUEUE_REQUESTS,
                workers: 2,
            },
            tracing,
        );
        let http = HttpServer::bind("127.0.0.1:0", server, TransportConfig::default())
            .expect("bind loopback");
        let tokens: Matrix = Initializer::Normal { std: 1.0 }.sample(cfg.tokens, IN_DIM, 0x0BE7);
        let body = Json::Object(vec![
            ("tokens".into(), api::tokens_json(&tokens)),
            ("timeout_ms".into(), Json::Number(open_deadline_ms as f64)),
        ])
        .to_string();
        let report = load::run(
            http.local_addr(),
            &LoadConfig {
                rate: open_rate,
                requests: OPEN_REQUESTS,
                poisson: true,
                seed: 0x510,
                senders: 4,
                targets: vec![Target {
                    model: "dense_fp32".into(),
                    body,
                }],
            },
        );
        let stats = http.shutdown();
        let model = stats.model("dense_fp32").expect("open-loop model").clone();
        (report, model)
    };
    // Latency of record: the default tracing config (sampling off).
    let (open_report, open_model) = run_open_loop(TracingConfig::default());
    println!(
        "open-loop dense_fp32: {open_rate:.2} req/s offered (poisson, rho {OPEN_RHO}), \
         {OPEN_REQUESTS} requests -> p50 {:.0} ms, p99 {:.0} ms, p999 {:.0} ms \
         (deadline {open_deadline_ms} ms, timed out {}, late sends {})",
        open_report.p50_s * 1e3,
        open_report.p99_s * 1e3,
        open_report.p999_s * 1e3,
        open_report.timed_out,
        open_report.late_sends
    );
    for (stage, h) in open_model.stages.iter() {
        println!(
            "  {stage:<15} mean {:>7.1} ms  p99 {:>7.1} ms  ({} obs)",
            h.mean_s() * 1e3,
            h.quantile(0.99) * 1e3,
            h.count
        );
    }

    // ------------------------------------------------------------------
    // Tracing-overhead gate: replay the identical open-loop schedule
    // with tracing explicitly configured at sample rate 0. Unsampled
    // requests take the stamp-free fast path (no per-op timing, no span
    // allocation), so this pass must land within 1% of the recorded p99
    // plus a fixed scheduler-noise floor. A second pass turns tail
    // retention on (reservoir over completions, pending-span buffer):
    // the tail bookkeeping is two cheap map operations per request, so
    // it must fit the same budget.
    // ------------------------------------------------------------------
    let (rate0_report, _) = run_open_loop(TracingConfig {
        sample_rate: 0.0,
        slow_threshold: None,
        tail: None,
    });
    let (tail_report, _) = run_open_loop(TracingConfig {
        sample_rate: 0.0,
        slow_threshold: None,
        tail: Some(TailConfig::default()),
    });
    let tracing_p99_budget_s =
        open_report.p99_s * (1.0 + TRACING_OVERHEAD_FRAC) + TRACING_OVERHEAD_EPS_S;
    println!(
        "tracing at rate 0: p99 {:.1} ms, tail mode p99 {:.1} ms vs record {:.1} ms (budget {:.1} ms)",
        rate0_report.p99_s * 1e3,
        tail_report.p99_s * 1e3,
        open_report.p99_s * 1e3,
        tracing_p99_budget_s * 1e3
    );

    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    let mut json = String::from("{\n  \"bench\": \"serving\",\n");
    json.push_str(&format!(
        "  \"model\": \"{}\",\n  \"tokens\": {},\n  \"dim\": {},\n  \"heads\": {},\n  \"depth\": {},\n",
        cfg.name, cfg.tokens, cfg.dim, cfg.heads, cfg.depth
    ));
    json.push_str(&format!(
        "  \"sparsity\": {SPARSITY},\n  \"batch\": {BATCH},\n  \"threads\": {},\n",
        kernels::num_threads()
    ));
    json.push_str("  \"configs\": [\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"batch_latency_s\": {:.6}, \"samples_per_s\": {:.2}}}{}\n",
            r.name,
            r.latency_s,
            r.samples_per_s(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    // The closed-loop sections record throughput and fill only: their
    // latency percentiles are harness artifacts (see the module docs)
    // and the open_loop section below is the latency of record.
    json.push_str(&format!(
        "  \"queued\": {{\"model\": \"dense_fp32\", \"clients\": {QUEUE_CLIENTS}, \
         \"requests\": {QUEUE_REQUESTS}, \"samples_per_s\": {queued_tput:.2}, \
         \"mean_batch_fill\": {:.3}, \"over_direct\": {queue_ratio:.3}}},\n",
        queued_stats.mean_batch_fill
    ));
    json.push_str(&format!(
        "  \"transport\": {{\"model\": \"dense_fp32\", \"connections\": {QUEUE_CLIENTS}, \
         \"requests\": {QUEUE_REQUESTS}, \"transport_throughput\": {transport_tput:.2}, \
         \"over_in_process\": {transport_ratio:.3}}},\n",
    ));
    let stage_fields: Vec<String> = open_model
        .stages
        .iter()
        .map(|(stage, h)| {
            format!(
                "\"{stage}\": {{\"mean_s\": {:.6}, \"p50_s\": {:.6}, \"p99_s\": {:.6}, \"count\": {}}}",
                h.mean_s(),
                h.quantile(0.50),
                h.quantile(0.99),
                h.count
            )
        })
        .collect();
    json.push_str(&format!(
        "  \"open_loop\": {{\"model\": \"dense_fp32\", \"arrivals\": \"poisson\", \
         \"offered_rate\": {open_rate:.3}, \"rho\": {OPEN_RHO}, \"requests\": {OPEN_REQUESTS}, \
         \"service_time_s\": {s1:.6}, \"deadline_s\": {open_deadline_s:.3}, \
         \"p50_latency_s\": {:.6}, \"p99_latency_s\": {:.6}, \"p999_latency_s\": {:.6}, \
         \"timed_out\": {}, \"failed\": {}, \"late_sends\": {}, \
         \"stages\": {{{}}}}},\n",
        open_report.p50_s,
        open_report.p99_s,
        open_report.p999_s,
        open_report.timed_out,
        open_report.failed,
        open_report.late_sends,
        stage_fields.join(", ")
    ));
    json.push_str(&format!(
        "  \"tracing_overhead\": {{\"sample_rate\": 0.0, \"p99_base_s\": {:.6}, \
         \"p99_rate0_s\": {:.6}, \"p99_tail_s\": {:.6}, \
         \"budget_s\": {tracing_p99_budget_s:.6}, \
         \"max_overhead_frac\": {TRACING_OVERHEAD_FRAC}}},\n",
        open_report.p99_s, rate0_report.p99_s, tail_report.p99_s
    ));
    json.push_str(&format!(
        "  \"dense_int8_over_dense_fp32\": {int8_speedup:.3},\n"
    ));
    json.push_str(&format!(
        "  \"sparse_int8_over_dense_fp32\": {speedup:.3}\n}}\n"
    ));
    std::fs::write(json_path, json).expect("write BENCH_serving.json");
    println!("recorded to BENCH_serving.json");

    assert!(
        int8_speedup >= 1.0,
        "batched dense int8 throughput must be >= batched dense fp32 \
         throughput at the DeiT-Tiny shape (got {int8_speedup:.2}x)"
    );
    assert!(
        speedup > SPARSE_INT8_GATE,
        "batched sparse int8 throughput must beat batched dense fp32 by \
         more than {SPARSE_INT8_GATE}x at the DeiT-Tiny shape (got {speedup:.2}x)"
    );
    assert!(
        queue_ratio >= QUEUE_GATE,
        "queue-batched throughput must retain >= {QUEUE_GATE}x of direct \
         infer_batch (got {queue_ratio:.2}x)"
    );
    assert!(
        transport_ratio >= TRANSPORT_GATE,
        "socket throughput must retain >= {TRANSPORT_GATE}x of the in-process \
         queued path (got {transport_ratio:.2}x)"
    );
    assert_eq!(
        open_report.failed, 0,
        "open-loop requests failed outright (connection errors or 5xx)"
    );
    assert_eq!(
        open_report.timed_out, 0,
        "open-loop requests expired at {OPEN_RHO}x saturation — the deadline \
         ({open_deadline_ms} ms) should be comfortable at this load"
    );
    assert!(
        open_report.p99_s <= open_deadline_s,
        "SLO gate violated: open-loop p99 {:.0} ms > deadline {open_deadline_ms} ms \
         at {OPEN_RHO}x saturation ({open_rate:.2} req/s)",
        open_report.p99_s * 1e3
    );
    assert_eq!(
        rate0_report.failed, 0,
        "tracing-at-rate-0 open-loop requests failed outright"
    );
    assert!(
        rate0_report.p99_s <= tracing_p99_budget_s,
        "tracing at sample rate 0 must be free: p99 {:.1} ms exceeds the \
         {:.0}%-plus-noise budget of {:.1} ms over the recorded {:.1} ms",
        rate0_report.p99_s * 1e3,
        TRACING_OVERHEAD_FRAC * 1e2,
        tracing_p99_budget_s * 1e3,
        open_report.p99_s * 1e3
    );
    assert_eq!(tail_report.failed, 0, "tail-mode open-loop requests failed");
    assert!(
        tail_report.p99_s <= tracing_p99_budget_s,
        "tail retention must be as cheap as rate-0 head sampling: \
         p99 {:.1} ms exceeds the budget of {:.1} ms over the recorded {:.1} ms",
        tail_report.p99_s * 1e3,
        tracing_p99_budget_s * 1e3,
        open_report.p99_s * 1e3
    );
}
