//! Criterion benchmarks of the accelerator simulators themselves: how
//! fast a full model simulation runs, per platform, per sparsity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vitcod_baselines::{GeneralPlatform, SangerSim, SpAttenSim};
use vitcod_bench::build_program;
use vitcod_model::ViTConfig;
use vitcod_sim::{AcceleratorConfig, ViTCoDAccelerator};

fn bench_vitcod_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("vitcod_simulate");
    let acc = ViTCoDAccelerator::new(AcceleratorConfig::vitcod_paper());
    for &s in &[0.6f64, 0.9] {
        let model = ViTConfig::deit_base();
        let program = build_program(&model, s, true);
        group.bench_with_input(
            BenchmarkId::new("deit_base_attention", format!("{:.0}%", s * 100.0)),
            &program,
            |b, p| b.iter(|| acc.simulate_attention(p)),
        );
        group.bench_with_input(
            BenchmarkId::new("deit_base_end_to_end", format!("{:.0}%", s * 100.0)),
            &program,
            |b, p| b.iter(|| acc.simulate_end_to_end(p, &model)),
        );
    }
    group.finish();
}

fn bench_baseline_simulation(c: &mut Criterion) {
    let model = ViTConfig::deit_base();
    let hw = AcceleratorConfig::vitcod_paper();
    let spatten = SpAttenSim::new(hw);
    let sanger = SangerSim::new(hw);
    c.bench_function("spatten_simulate_deit_base", |b| {
        b.iter(|| spatten.simulate_attention(&model, 0.9))
    });
    c.bench_function("sanger_simulate_deit_base", |b| {
        b.iter(|| sanger.simulate_attention(&model, 0.9))
    });
    c.bench_function("cpu_platform_model_deit_base", |b| {
        let cpu = GeneralPlatform::cpu_xeon_6230r();
        b.iter(|| cpu.simulate_attention(&model))
    });
}

fn bench_program_compilation(c: &mut Criterion) {
    c.bench_function("compile_deit_base_90pct", |b| {
        b.iter(|| build_program(&ViTConfig::deit_base(), 0.9, true))
    });
}

criterion_group!(
    benches,
    bench_vitcod_simulation,
    bench_baseline_simulation,
    bench_program_compilation
);
criterion_main!(benches);
