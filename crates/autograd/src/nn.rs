//! Reusable neural-network layers built on the tape.

use rand::Rng;
use vitcod_tensor::{Initializer, Matrix};

use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};

/// Fully connected layer `y = x · W + b`.
///
/// The weights live in a [`ParamStore`]; the layer itself is a lightweight
/// handle that can be applied to any tape.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use vitcod_autograd::{Linear, ParamStore, Tape};
/// use vitcod_tensor::Matrix;
///
/// let mut store = ParamStore::new();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let layer = Linear::new(&mut store, "proj", 4, 2, &mut rng);
/// let mut tape = Tape::new();
/// let x = tape.constant(Matrix::zeros(3, 4));
/// let y = layer.forward(&mut tape, &store, x);
/// assert_eq!(tape.value(y).shape(), (3, 2));
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: ParamId,
    bias: ParamId,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Registers a new layer's parameters (Xavier weights, zero bias) in
    /// `store` under names derived from `name`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        in_features: usize,
        out_features: usize,
        rng: &mut R,
    ) -> Self {
        let weight = store.register(
            format!("{name}.weight"),
            Initializer::XavierUniform.sample_with(in_features, out_features, rng),
        );
        let bias = store.register(format!("{name}.bias"), Matrix::zeros(1, out_features));
        Self {
            weight,
            bias,
            in_features,
            out_features,
        }
    }

    /// Applies the layer: `x · W + b`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let w = tape.param(store, self.weight);
        let b = tape.param(store, self.bias);
        let y = tape.matmul(x, w);
        tape.add_bias(y, b)
    }

    /// Handle to the weight matrix parameter.
    pub fn weight(&self) -> ParamId {
        self.weight
    }

    /// Handle to the bias parameter.
    pub fn bias(&self) -> ParamId {
        self.bias
    }

    /// Input feature dimension.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature dimension.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Number of trainable scalars (weights + biases).
    pub fn num_params(&self) -> usize {
        self.in_features * self.out_features + self.out_features
    }
}

/// Row-wise LayerNorm with learnable scale and shift.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    features: usize,
}

impl LayerNorm {
    /// Registers gamma (ones) and beta (zeros) for `features` columns.
    pub fn new(store: &mut ParamStore, name: &str, features: usize) -> Self {
        let gamma = store.register(format!("{name}.gamma"), Matrix::filled(1, features, 1.0));
        let beta = store.register(format!("{name}.beta"), Matrix::zeros(1, features));
        Self {
            gamma,
            beta,
            features,
        }
    }

    /// Applies LayerNorm over each row of `x`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let g = tape.param(store, self.gamma);
        let b = tape.param(store, self.beta);
        tape.layernorm(x, g, b)
    }

    /// Normalised feature count.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Handle to gamma.
    pub fn gamma(&self) -> ParamId {
        self.gamma
    }

    /// Handle to beta.
    pub fn beta(&self) -> ParamId {
        self.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, Optimizer};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn linear_shapes_and_param_count() {
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let l = Linear::new(&mut store, "l", 8, 3, &mut rng);
        assert_eq!(l.num_params(), 8 * 3 + 3);
        assert_eq!(l.in_features(), 8);
        assert_eq!(l.out_features(), 3);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::zeros(5, 8));
        let y = l.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (5, 3));
    }

    #[test]
    fn layernorm_forward_normalises() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]));
        let y = ln.forward(&mut tape, &store, x);
        let row = tape.value(y).row(0).to_vec();
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn linear_regression_learns_target() {
        // Train y = x·W to match a fixed target map; a smoke test that the
        // whole tape → grads → optimizer loop descends.
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let l = Linear::new(&mut store, "l", 2, 1, &mut rng);
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[2.0, -1.0]]);
        let target = Matrix::from_rows(&[&[2.0], &[-3.0], &[-1.0], &[7.0]]);
        let mut opt = Adam::new(0.05);
        let mut last = f32::INFINITY;
        for _ in 0..1200 {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let y = l.forward(&mut tape, &store, xv);
            let loss = tape.mse_loss(y, &target);
            last = tape.scalar(loss);
            tape.backward(loss);
            store.zero_grads();
            tape.write_grads(&mut store);
            opt.step(&mut store);
        }
        assert!(last < 1e-3, "final loss {last}");
        // Learned W ≈ [2, -3].
        let w = store.value(l.weight());
        assert!((w.get(0, 0) - 2.0).abs() < 0.05);
        assert!((w.get(1, 0) + 3.0).abs() < 0.05);
    }
}
