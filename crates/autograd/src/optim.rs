//! First-order optimizers operating on a [`ParamStore`].

use vitcod_tensor::Matrix;

use crate::params::ParamStore;

/// A first-order optimizer that consumes accumulated gradients from a
/// [`ParamStore`] and updates parameter values in place.
///
/// The trait is object-safe so training loops can hold a
/// `Box<dyn Optimizer>` chosen from configuration.
pub trait Optimizer {
    /// Applies one update step using the gradients currently stored in
    /// `store`, then leaves the gradients untouched (callers usually
    /// follow with [`ParamStore::zero_grads`]).
    fn step(&mut self, store: &mut ParamStore);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for cosine decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and weight decay.
///
/// # Example
///
/// ```
/// use vitcod_autograd::{Optimizer, ParamStore, Sgd};
/// use vitcod_tensor::Matrix;
///
/// let mut store = ParamStore::new();
/// let w = store.register("w", Matrix::filled(1, 1, 1.0));
/// store.accumulate_grad(w, &Matrix::filled(1, 1, 0.5));
/// let mut opt = Sgd::new(0.1);
/// opt.step(&mut store);
/// assert!((store.value(w).get(0, 0) - 0.95).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Adds classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Adds decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<_> = store.ids().collect();
        if self.velocity.len() != ids.len() {
            self.velocity = ids
                .iter()
                .map(|&id| {
                    let (r, c) = store.value(id).shape();
                    Matrix::zeros(r, c)
                })
                .collect();
        }
        for (i, &id) in ids.iter().enumerate() {
            let grad = store.grad(id).clone();
            let lr = self.lr;
            let wd = self.weight_decay;
            if self.momentum > 0.0 {
                let vel = &mut self.velocity[i];
                for (v, g) in vel.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                    *v = self.momentum * *v + g;
                }
                let vel = self.velocity[i].clone();
                let value = store.value_mut(id);
                for ((w, v), _g) in value
                    .as_mut_slice()
                    .iter_mut()
                    .zip(vel.as_slice())
                    .zip(grad.as_slice())
                {
                    *w -= lr * (v + wd * *w);
                }
            } else {
                let value = store.value_mut(id);
                for (w, g) in value.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                    *w -= lr * (g + wd * *w);
                }
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with decoupled weight decay (AdamW-style).
///
/// This mirrors the finetuning recipe the paper uses for DeiT/LeViT
/// (AdamW), scaled down to our synthetic tasks.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with the customary `beta1 = 0.9`, `beta2 = 0.999`.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adds decoupled (AdamW) weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<_> = store.ids().collect();
        if self.m.len() != ids.len() {
            self.m = ids
                .iter()
                .map(|&id| {
                    let (r, c) = store.value(id).shape();
                    Matrix::zeros(r, c)
                })
                .collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, &id) in ids.iter().enumerate() {
            let grad = store.grad(id).clone();
            for ((m, v), g) in self.m[i]
                .as_mut_slice()
                .iter_mut()
                .zip(self.v[i].as_mut_slice().iter_mut())
                .zip(grad.as_slice())
            {
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            }
            let lr = self.lr;
            let eps = self.eps;
            let wd = self.weight_decay;
            let mi = &self.m[i];
            let vi = &self.v[i];
            let value = store.value_mut(id);
            for ((w, m), v) in value
                .as_mut_slice()
                .iter_mut()
                .zip(mi.as_slice())
                .zip(vi.as_slice())
            {
                let mhat = m / bc1;
                let vhat = v / bc2;
                *w -= lr * (mhat / (vhat.sqrt() + eps) + wd * *w);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Cosine learning-rate schedule from `base_lr` down to `min_lr` over
/// `total_steps`, matching the DeiT finetuning recipe shape.
///
/// # Example
///
/// ```
/// let lr = vitcod_autograd::cosine_lr(1e-3, 1e-5, 0, 100);
/// assert!((lr - 1e-3).abs() < 1e-9);
/// let lr_end = vitcod_autograd::cosine_lr(1e-3, 1e-5, 100, 100);
/// assert!((lr_end - 1e-5).abs() < 1e-9);
/// ```
pub fn cosine_lr(base_lr: f32, min_lr: f32, step: usize, total_steps: usize) -> f32 {
    if total_steps == 0 {
        return base_lr;
    }
    let progress = (step.min(total_steps)) as f32 / total_steps as f32;
    min_lr + 0.5 * (base_lr - min_lr) * (1.0 + (std::f32::consts::PI * progress).cos())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_store() -> (ParamStore, crate::ParamId) {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::filled(1, 2, 5.0));
        (store, w)
    }

    /// loss = 0.5 * |w|^2, grad = w.
    fn grad_step(store: &mut ParamStore, id: crate::ParamId) {
        store.zero_grads();
        let g = store.value(id).clone();
        store.accumulate_grad(id, &g);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let (mut store, w) = quadratic_store();
        let mut opt = Sgd::new(0.1);
        for _ in 0..200 {
            grad_step(&mut store, w);
            opt.step(&mut store);
        }
        assert!(store.value(w).frobenius_norm() < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges_faster_than_plain_for_few_steps() {
        let (mut s1, w1) = quadratic_store();
        let (mut s2, w2) = quadratic_store();
        let mut plain = Sgd::new(0.01);
        let mut mom = Sgd::new(0.01).with_momentum(0.9);
        for _ in 0..50 {
            grad_step(&mut s1, w1);
            plain.step(&mut s1);
            grad_step(&mut s2, w2);
            mom.step(&mut s2);
        }
        assert!(s2.value(w2).frobenius_norm() < s1.value(w1).frobenius_norm());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let (mut store, w) = quadratic_store();
        let mut opt = Adam::new(0.3);
        for _ in 0..300 {
            grad_step(&mut store, w);
            opt.step(&mut store);
        }
        assert!(store.value(w).frobenius_norm() < 1e-2);
    }

    #[test]
    fn weight_decay_shrinks_params_with_zero_grad() {
        let (mut store, w) = quadratic_store();
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        store.zero_grads();
        opt.step(&mut store);
        // w -= lr * wd * w = 5 - 0.1*0.5*5 = 4.75
        assert!((store.value(w).get(0, 0) - 4.75).abs() < 1e-5);
    }

    #[test]
    // The setter stores the exact literal; strict comparison is right.
    #[allow(clippy::float_cmp)]
    fn set_learning_rate_round_trips() {
        let mut opt = Adam::new(0.1);
        opt.set_learning_rate(0.05);
        assert_eq!(opt.learning_rate(), 0.05);
    }

    #[test]
    fn cosine_schedule_is_monotone_decreasing() {
        let mut prev = f32::INFINITY;
        for step in 0..=50 {
            let lr = cosine_lr(1.0, 0.0, step, 50);
            assert!(lr <= prev + 1e-7);
            prev = lr;
        }
    }

    #[test]
    fn optimizer_is_object_safe() {
        let opts: Vec<Box<dyn Optimizer>> = vec![Box::new(Sgd::new(0.1)), Box::new(Adam::new(0.1))];
        assert_eq!(opts.len(), 2);
    }
}
