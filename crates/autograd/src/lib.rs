//! Tape-based reverse-mode automatic differentiation for the ViTCoD
//! reproduction.
//!
//! The ViTCoD pipeline (paper Fig. 10) finetunes Vision Transformers twice:
//! once after inserting the learnable auto-encoder modules and once after
//! applying the split-and-conquer sparsification. That requires gradients
//! through attention (with *fixed sparse masks*), LayerNorm, GELU MLPs and
//! the head-dimension auto-encoder. This crate provides exactly that: a
//! small, dependency-free tape autograd over [`vitcod_tensor::Matrix`]
//! with fused operators for the expensive composites (masked softmax
//! attention, LayerNorm, head-mixing used by the auto-encoder).
//!
//! # Design
//!
//! * A [`Tape`] records a DAG of [`Op`]s produced during a forward pass;
//!   [`Tape::backward`] walks it in reverse, accumulating gradients.
//! * Trainable parameters live outside the tape in a [`ParamStore`], so a
//!   fresh tape per training step reuses the same parameters; after
//!   `backward`, [`Tape::write_grads`] flushes accumulated gradients into
//!   the store where an optimizer ([`Sgd`] / [`Adam`]) consumes them.
//! * Every operator's backward pass is verified against central finite
//!   differences in the test suite.
//!
//! # Example
//!
//! ```
//! use vitcod_autograd::{ParamStore, Tape};
//! use vitcod_tensor::{Initializer, Matrix};
//!
//! let mut store = ParamStore::new();
//! let w = store.register("w", Initializer::XavierUniform.sample(2, 2, 0));
//! let mut tape = Tape::new();
//! let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0]]));
//! let wv = tape.param(&store, w);
//! let y = tape.matmul(x, wv);
//! let loss = tape.mse_loss(y, &Matrix::from_rows(&[&[0.0, 0.0]]));
//! tape.backward(loss);
//! tape.write_grads(&mut store);
//! assert_eq!(store.grad(w).shape(), (2, 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod nn;
mod optim;
mod params;
mod tape;

pub use nn::{LayerNorm, Linear};
pub use optim::{cosine_lr, Adam, Optimizer, Sgd};
pub use params::{ParamId, ParamStore};
pub use tape::{HeadExec, Tape, Var, LAYERNORM_EPS};
