//! The autograd tape: forward operator recording and reverse accumulation.
//!
//! All dense inner loops (GEMMs, bias broadcasts, activations, softmax
//! and LayerNorm forward/backward, head-mixing, attention) are delegated
//! to [`vitcod_tensor::kernels`], so the tape records *what* is computed
//! while the kernel layer decides *how* (scalar reference vs blocked
//! parallel — see [`vitcod_tensor::Backend`]).

use std::sync::Arc;

use vitcod_tensor::sparse::{self, CscMatrix, SparseScores};
use vitcod_tensor::{gelu, gelu_grad, kernels, Matrix};

use crate::params::{ParamId, ParamStore};

/// LayerNorm epsilon the tape's [`Tape::layernorm`] uses. Inference
/// engines that must reproduce the tape's logits bit for bit (the
/// `vitcod-engine` parity contract) share this constant instead of
/// duplicating the literal.
pub const LAYERNORM_EPS: f32 = 1e-5;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

/// Per-head execution plan of a [`Tape::batched_multi_head_attention`]
/// node. Plans are `Arc`-shared so a model can build them once (mask
/// freeze) and every training step's tape references them without
/// re-materialising an `n × n` bias or recompiling a CSC index per
/// sample.
#[derive(Debug, Clone)]
pub enum HeadExec {
    /// Full dense attention.
    Dense,
    /// Dense attention with an additive mask bias (`0` kept, `-inf`
    /// pruned) — the finetuning path before the mask is frozen sparse.
    Masked(Arc<Matrix>),
    /// Truly-sparse attention over a fixed CSC index: the head runs the
    /// accelerator's SDDMM → sparse-softmax → SpMM dataflow in both
    /// passes, so its training cost scales with `nnz` instead of `n²`.
    Sparse(Arc<CscMatrix>),
}

/// Cached forward probabilities of one `(sample, head)` attention task.
#[derive(Debug, Clone)]
enum HeadProbs {
    Dense(Matrix),
    Sparse(SparseScores),
}

/// Recorded operator. Parents are earlier tape nodes, so a single reverse
/// sweep in index order is a valid topological traversal.
#[derive(Debug, Clone)]
enum OpKind {
    /// Leaf: constant input or imported parameter.
    Leaf {
        param: Option<ParamId>,
    },
    MatMul {
        a: Var,
        b: Var,
    },
    Add {
        a: Var,
        b: Var,
    },
    Sub {
        a: Var,
        b: Var,
    },
    Hadamard {
        a: Var,
        b: Var,
    },
    Scale {
        a: Var,
        s: f32,
    },
    /// Broadcast-add a `1 × c` bias to every row of `a`.
    AddBias {
        a: Var,
        bias: Var,
    },
    Gelu {
        a: Var,
    },
    Relu {
        a: Var,
    },
    /// Row-wise LayerNorm with `1 × c` gamma/beta; caches normalized rows
    /// and inverse std-dev for the backward pass.
    LayerNorm {
        a: Var,
        gamma: Var,
        beta: Var,
        normed: Matrix,
        inv_std: Vec<f32>,
    },
    /// Fused masked softmax attention: `softmax(Q·Kᵀ·scale + maskbias) · V`.
    /// Caches the probability matrix for the backward pass.
    MaskedAttention {
        q: Var,
        k: Var,
        v: Var,
        scale: f32,
        probs: Matrix,
    },
    /// Fused multi-head masked attention over head-fused `n × (h·dk)`
    /// Q/K/V: heads fan out across worker threads in both passes. Caches
    /// one probability matrix per head.
    MultiHeadAttention {
        q: Var,
        k: Var,
        v: Var,
        dk: usize,
        scale: f32,
        probs: Vec<Matrix>,
    },
    /// Fused batched multi-head attention over `batch` vertically stacked
    /// samples of `n` tokens each: `(sample, head)` tasks fan out across
    /// worker threads, each head following its [`HeadExec`] plan (dense,
    /// dense-masked, or the truly-sparse CSC dataflow). Caches one
    /// probability record per task, sample-major.
    BatchedAttention {
        q: Var,
        k: Var,
        v: Var,
        dk: usize,
        scale: f32,
        batch: usize,
        heads: Vec<HeadExec>,
        probs: Vec<HeadProbs>,
    },
    /// Vertical tiling: `a` repeated `times` times (broadcasting shared
    /// per-sample state, e.g. positional embeddings, over a batch).
    TileRows {
        a: Var,
        times: usize,
    },
    /// Row gather `out[i, :] = a[rows[i], :]` (batched class-token
    /// readout); backward scatter-adds in ascending output-row order.
    GatherRows {
        a: Var,
        rows: Vec<usize>,
    },
    /// Mixes the head dimension: input `n × (h·dk)`, weight `h_in × h_out`,
    /// output `n × (h_out·dk)`. This is the ViTCoD auto-encoder primitive.
    HeadMix {
        a: Var,
        w: Var,
        dk: usize,
    },
    /// Column-slice `a[:, c0..c1]` (per-head views of fused projections).
    SliceCols {
        a: Var,
        c0: usize,
    },
    /// Column-concatenation of several nodes (re-fusing heads).
    ConcatCols {
        parts: Vec<Var>,
    },
    /// Mean over rows producing a `1 × c` pooled representation.
    MeanRows {
        a: Var,
    },
    /// Single row extracted as `1 × c` (class-token readout).
    RowSlice {
        a: Var,
        r: usize,
    },
    /// Mean softmax cross-entropy between `logits` rows and integer targets;
    /// caches probabilities.
    CrossEntropy {
        logits: Var,
        targets: Vec<usize>,
        probs: Matrix,
    },
    /// Mean squared error against a constant target.
    MseConst {
        a: Var,
        target: Matrix,
    },
    /// Sum of two scalar losses (weighted).
    WeightedSum {
        a: Var,
        b: Var,
        wa: f32,
        wb: f32,
    },
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: OpKind,
}

/// Records a forward computation and replays it backwards for gradients.
///
/// All operator methods panic on shape mismatches — inside a model the
/// shapes are structural invariants, so a mismatch is a bug, not an input
/// error.
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl std::fmt::Debug for Tape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tape({} nodes)", self.nodes.len())
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: OpKind) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Current value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Gradient of the last `backward` root with respect to node `v`, if
    /// the node participated in the backward sweep.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Records a constant (non-trainable) input.
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, OpKind::Leaf { param: None })
    }

    /// Imports a parameter from `store` as a leaf node.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(store.value(id).clone(), OpKind::Leaf { param: Some(id) })
    }

    /// Matrix product `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(value, OpKind::MatMul { a, b })
    }

    /// Elementwise sum `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = &self.nodes[a.0].value + &self.nodes[b.0].value;
        self.push(value, OpKind::Add { a, b })
    }

    /// Elementwise difference `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = &self.nodes[a.0].value - &self.nodes[b.0].value;
        self.push(value, OpKind::Sub { a, b })
    }

    /// Elementwise product `a ⊙ b`.
    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.hadamard(&self.nodes[b.0].value);
        self.push(value, OpKind::Hadamard { a, b })
    }

    /// Scalar multiple `a * s`.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let value = self.nodes[a.0].value.scale(s);
        self.push(value, OpKind::Scale { a, s })
    }

    /// Adds a `1 × c` bias row to every row of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × a.cols()`.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let (_, c) = self.nodes[a.0].value.shape();
        assert_eq!(
            self.nodes[bias.0].value.shape(),
            (1, c),
            "bias must be 1 x cols"
        );
        let value = kernels::add_bias(&self.nodes[a.0].value, self.nodes[bias.0].value.row(0));
        self.push(value, OpKind::AddBias { a, bias })
    }

    /// GELU nonlinearity.
    pub fn gelu(&mut self, a: Var) -> Var {
        let value = kernels::map(&self.nodes[a.0].value, gelu);
        self.push(value, OpKind::Gelu { a })
    }

    /// ReLU nonlinearity.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.relu();
        self.push(value, OpKind::Relu { a })
    }

    /// Row-wise LayerNorm with learnable `1 × c` gamma and beta.
    pub fn layernorm(&mut self, a: Var, gamma: Var, beta: Var) -> Var {
        let x = &self.nodes[a.0].value;
        let g = self.nodes[gamma.0].value.row(0).to_vec();
        let b = self.nodes[beta.0].value.row(0).to_vec();
        let (out, normed, inv_std) = kernels::layernorm_train_forward(x, &g, &b, LAYERNORM_EPS);
        self.push(
            out,
            OpKind::LayerNorm {
                a,
                gamma,
                beta,
                normed,
                inv_std,
            },
        )
    }

    /// Fused masked softmax attention for one head:
    /// `softmax(q·kᵀ·scale + maskbias) · v`.
    ///
    /// `mask_bias`, when provided, is added to the scores before softmax;
    /// ViTCoD's fixed sparse masks use `0.0` for kept positions and
    /// `f32::NEG_INFINITY` for pruned ones, which the softmax maps to an
    /// exact zero probability (and hence an exactly-zero gradient).
    ///
    /// # Panics
    ///
    /// Panics if `q`/`k`/`v` shapes are inconsistent or the mask is not
    /// `q.rows() × k.rows()`.
    pub fn masked_attention(
        &mut self,
        q: Var,
        k: Var,
        v: Var,
        scale: f32,
        mask_bias: Option<&Matrix>,
    ) -> Var {
        let qv = &self.nodes[q.0].value;
        let kv = &self.nodes[k.0].value;
        let vv = &self.nodes[v.0].value;
        let (out, probs) = kernels::attention_head(qv, kv, vv, scale, mask_bias);
        self.push(
            out,
            OpKind::MaskedAttention {
                q,
                k,
                v,
                scale,
                probs,
            },
        )
    }

    /// Fused multi-head masked attention over head-fused `n × (h·dk)`
    /// Q/K/V nodes: each of the `q.cols() / dk` heads attends over its
    /// own `dk`-wide column stripe, with heads fanned out across worker
    /// threads in both the forward and backward pass (see
    /// [`vitcod_tensor::kernels::multi_head_attention`]).
    ///
    /// `masks[h]`, when present, is the additive bias for head `h`
    /// (`0.0` kept, `-inf` pruned); pass an empty slice for all-dense
    /// heads. Per-head probabilities are retrievable through
    /// [`Self::head_probs`].
    ///
    /// # Panics
    ///
    /// Panics if Q/K/V shapes differ, `q.cols()` is not a multiple of
    /// `dk`, or `masks` is non-empty but does not cover every head.
    pub fn multi_head_attention(
        &mut self,
        q: Var,
        k: Var,
        v: Var,
        dk: usize,
        scale: f32,
        masks: &[Option<Matrix>],
    ) -> Var {
        let qv = &self.nodes[q.0].value;
        let kv = &self.nodes[k.0].value;
        let vv = &self.nodes[v.0].value;
        let fwd = kernels::multi_head_attention(qv, kv, vv, dk, scale, masks);
        self.push(
            fwd.out,
            OpKind::MultiHeadAttention {
                q,
                k,
                v,
                dk,
                scale,
                probs: fwd.probs,
            },
        )
    }

    /// Fused multi-head attention over a whole minibatch: `q`/`k`/`v`
    /// hold `batch` samples of `n` tokens stacked vertically
    /// (`(batch·n) × (h·dk)`), and every `(sample, head)` pair attends
    /// independently inside its own block — one tape node per step
    /// instead of one per sample, which is what lets a training step
    /// amortise weight imports and per-op overhead across the batch.
    ///
    /// `heads[h]` selects each head's execution plan ([`HeadExec`]):
    /// dense, dense with an additive `-inf` mask bias, or the
    /// truly-sparse CSC dataflow whose forward *and* backward cost scale
    /// with the index's `nnz`. Pass an empty slice for all-dense heads.
    /// Tasks fan out across worker threads in both passes; outputs and
    /// gradients are assembled in fixed `(sample, head)` order, so
    /// results are bit-identical regardless of the worker count.
    ///
    /// # Panics
    ///
    /// Panics if Q/K/V shapes differ, the row count is not a multiple of
    /// `batch`, `q.cols()` is not a multiple of `dk`, `heads` is
    /// non-empty but does not cover exactly every head, or a plan's
    /// mask/index size differs from the per-sample token count.
    #[allow(clippy::too_many_arguments)]
    pub fn batched_multi_head_attention(
        &mut self,
        q: Var,
        k: Var,
        v: Var,
        dk: usize,
        scale: f32,
        batch: usize,
        heads: &[HeadExec],
    ) -> Var {
        let qv = &self.nodes[q.0].value;
        let kv = &self.nodes[k.0].value;
        let vv = &self.nodes[v.0].value;
        let heads = normalize_head_plans(qv, kv, vv, dk, batch, heads);
        let (out, probs) = batched_attention_forward(qv, kv, vv, dk, scale, batch, &heads);
        self.push(
            out,
            OpKind::BatchedAttention {
                q,
                k,
                v,
                dk,
                scale,
                batch,
                heads,
                probs,
            },
        )
    }

    /// Repeats `a` vertically `times` times (broadcast over a batch);
    /// the backward pass sums the tile gradients in ascending tile
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `times == 0`.
    pub fn tile_rows(&mut self, a: Var, times: usize) -> Var {
        assert!(times >= 1, "tile_rows needs at least one repetition");
        let av = &self.nodes[a.0].value;
        let parts: Vec<&Matrix> = (0..times).map(|_| av).collect();
        let value = Matrix::vcat(&parts);
        self.push(value, OpKind::TileRows { a, times })
    }

    /// Gathers rows of `a`: `out[i, :] = a[rows[i], :]` (batched
    /// class-token readout). Duplicate indices are allowed; their
    /// gradients accumulate.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or an index is out of bounds.
    pub fn gather_rows(&mut self, a: Var, rows: &[usize]) -> Var {
        assert!(!rows.is_empty(), "gather_rows needs at least one row");
        let av = &self.nodes[a.0].value;
        let mut value = Matrix::zeros(rows.len(), av.cols());
        for (i, &r) in rows.iter().enumerate() {
            assert!(r < av.rows(), "row {r} out of bounds");
            value.row_mut(i).copy_from_slice(av.row(r));
        }
        self.push(
            value,
            OpKind::GatherRows {
                a,
                rows: rows.to_vec(),
            },
        )
    }

    /// Attention probabilities of the most recent [`Self::masked_attention`]
    /// node `attn`; used to extract averaged attention maps for the
    /// split-and-conquer algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `attn` is not a masked-attention node.
    pub fn attention_probs(&self, attn: Var) -> &Matrix {
        match &self.nodes[attn.0].op {
            OpKind::MaskedAttention { probs, .. } => probs,
            other => panic!("attention_probs on non-attention node: {other:?}"),
        }
    }

    /// Attention probabilities of head `head` of a
    /// [`Self::multi_head_attention`] node (also accepts a single-head
    /// [`Self::masked_attention`] node at `head == 0`).
    ///
    /// # Panics
    ///
    /// Panics if `attn` is not an attention node or `head` is out of
    /// range.
    pub fn head_probs(&self, attn: Var, head: usize) -> &Matrix {
        match &self.nodes[attn.0].op {
            OpKind::MultiHeadAttention { probs, .. } => probs
                .get(head)
                .unwrap_or_else(|| panic!("head {head} out of range ({} heads)", probs.len())),
            OpKind::MaskedAttention { probs, .. } if head == 0 => probs,
            OpKind::BatchedAttention {
                batch: 1, probs, ..
            } => match probs
                .get(head)
                .unwrap_or_else(|| panic!("head {head} out of range ({} heads)", probs.len()))
            {
                HeadProbs::Dense(m) => m,
                HeadProbs::Sparse(_) => {
                    panic!("head {head} runs the sparse dataflow; use head_probs_dense")
                }
            },
            other => panic!("head_probs on non-attention node: {other:?}"),
        }
    }

    /// Borrowed attention probabilities of `(sample, head)` when the
    /// head's probabilities are cached densely; `None` for heads on the
    /// sparse dataflow (densify those with [`Self::head_probs_dense`]).
    /// Lets accumulation loops over dense heads avoid one `n × n` copy
    /// per head.
    ///
    /// # Panics
    ///
    /// Panics if `attn` is not an attention node or `sample`/`head` are
    /// out of range.
    pub fn try_head_probs(&self, attn: Var, sample: usize, head: usize) -> Option<&Matrix> {
        match &self.nodes[attn.0].op {
            OpKind::BatchedAttention {
                batch,
                heads,
                probs,
                ..
            } => {
                assert!(
                    sample < *batch,
                    "sample {sample} out of range ({batch} samples)"
                );
                assert!(head < heads.len(), "head {head} out of range");
                match &probs[sample * heads.len() + head] {
                    HeadProbs::Dense(m) => Some(m),
                    HeadProbs::Sparse(_) => None,
                }
            }
            OpKind::MultiHeadAttention { probs, .. } if sample == 0 => Some(&probs[head]),
            OpKind::MaskedAttention { probs, .. } if sample == 0 && head == 0 => Some(probs),
            other => panic!("try_head_probs on incompatible node: {other:?}"),
        }
    }

    /// Attention probabilities of `(sample, head)` of a batched attention
    /// node as an owned dense matrix; sparse heads are densified (zeros
    /// at pruned positions). Also accepts the single-sample attention ops
    /// at `sample == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `attn` is not an attention node or `sample`/`head` are
    /// out of range.
    pub fn head_probs_dense(&self, attn: Var, sample: usize, head: usize) -> Matrix {
        match &self.nodes[attn.0].op {
            OpKind::BatchedAttention {
                batch,
                heads,
                probs,
                ..
            } => {
                assert!(
                    sample < *batch,
                    "sample {sample} out of range ({batch} samples)"
                );
                assert!(head < heads.len(), "head {head} out of range");
                match &probs[sample * heads.len() + head] {
                    HeadProbs::Dense(m) => m.clone(),
                    HeadProbs::Sparse(s) => s.to_dense(),
                }
            }
            OpKind::MultiHeadAttention { probs, .. } if sample == 0 => probs[head].clone(),
            OpKind::MaskedAttention { probs, .. } if sample == 0 && head == 0 => probs.clone(),
            other => panic!("head_probs_dense on incompatible node: {other:?}"),
        }
    }

    /// Number of stacked samples recorded by an attention node (1 for
    /// the single-sample ops).
    ///
    /// # Panics
    ///
    /// Panics if `attn` is not an attention node.
    pub fn attention_batch(&self, attn: Var) -> usize {
        match &self.nodes[attn.0].op {
            OpKind::BatchedAttention { batch, .. } => *batch,
            OpKind::MultiHeadAttention { .. } | OpKind::MaskedAttention { .. } => 1,
            other => panic!("attention_batch on non-attention node: {other:?}"),
        }
    }

    /// Number of heads recorded by an attention node (1 for the
    /// single-head op).
    ///
    /// # Panics
    ///
    /// Panics if `attn` is not an attention node.
    pub fn num_heads(&self, attn: Var) -> usize {
        match &self.nodes[attn.0].op {
            OpKind::MultiHeadAttention { probs, .. } => probs.len(),
            OpKind::BatchedAttention { heads, .. } => heads.len(),
            OpKind::MaskedAttention { .. } => 1,
            other => panic!("num_heads on non-attention node: {other:?}"),
        }
    }

    /// Head-dimension mixing (the auto-encoder primitive): with input
    /// `n × (h_in·dk)` and weight `h_in × h_out`, produces
    /// `n × (h_out·dk)` where output head `j` is `Σᵢ W[i, j] · head i`.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols()` is not a multiple of `dk` equal to
    /// `w.rows() · dk`.
    pub fn head_mix(&mut self, a: Var, w: Var, dk: usize) -> Var {
        let av = &self.nodes[a.0].value;
        let wv = &self.nodes[w.0].value;
        let value = kernels::head_mix(av, wv, dk);
        self.push(value, OpKind::HeadMix { a, w, dk })
    }

    /// Column slice `a[:, c0..c1]`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn slice_cols(&mut self, a: Var, c0: usize, c1: usize) -> Var {
        let av = &self.nodes[a.0].value;
        let value = av.submatrix(0, av.rows(), c0, c1);
        self.push(value, OpKind::SliceCols { a, c0 })
    }

    /// Concatenates nodes along columns.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols requires at least one part");
        let mats: Vec<&Matrix> = parts.iter().map(|p| &self.nodes[p.0].value).collect();
        let value = Matrix::hcat(&mats);
        self.push(
            value,
            OpKind::ConcatCols {
                parts: parts.to_vec(),
            },
        )
    }

    /// Mean over rows, producing `1 × cols` (mean-pooled readout).
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let out = kernels::mean_rows(&self.nodes[a.0].value);
        self.push(out, OpKind::MeanRows { a })
    }

    /// Extracts row `r` as a `1 × cols` node (class-token readout).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_slice(&mut self, a: Var, r: usize) -> Var {
        let av = &self.nodes[a.0].value;
        let value = av.submatrix(r, r + 1, 0, av.cols());
        self.push(value, OpKind::RowSlice { a, r })
    }

    /// Mean softmax cross-entropy of `logits` rows against integer class
    /// `targets`; returns a `1 × 1` scalar node.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != logits.rows()` or a target index is out
    /// of range.
    pub fn cross_entropy(&mut self, logits: Var, targets: &[usize]) -> Var {
        let lv = &self.nodes[logits.0].value;
        assert_eq!(targets.len(), lv.rows(), "one target per logits row");
        let probs = lv.softmax_rows();
        let mut loss = 0.0;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < lv.cols(), "target {t} out of range");
            loss -= probs.get(r, t).max(1e-12).ln();
        }
        loss /= targets.len() as f32;
        self.push(
            Matrix::from_vec(1, 1, vec![loss]),
            OpKind::CrossEntropy {
                logits,
                targets: targets.to_vec(),
                probs,
            },
        )
    }

    /// Mean of all elements as a `1 × 1` scalar node (composite of
    /// [`Self::mean_rows`] and a constant averaging matmul).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let cols = self.nodes[a.0].value.cols();
        let pooled = self.mean_rows(a);
        let ones = self.constant(Matrix::filled(cols, 1, 1.0 / cols as f32));
        self.matmul(pooled, ones)
    }

    /// Mean squared error between two tape nodes, `mean((a − b)²)`, as a
    /// `1 × 1` scalar node. Gradients flow into both operands — this is
    /// the form used for the auto-encoder reconstruction loss where both
    /// the original and the reconstructed Q/K are differentiable.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mse_between(&mut self, a: Var, b: Var) -> Var {
        let d = self.sub(a, b);
        let sq = self.hadamard(d, d);
        self.mean_all(sq)
    }

    /// Mean squared error between `a` and a constant `target`; returns a
    /// `1 × 1` scalar node. This is the differentiable surrogate for the
    /// paper's `‖Q − Q′‖₀` reconstruction loss.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mse_loss(&mut self, a: Var, target: &Matrix) -> Var {
        let av = &self.nodes[a.0].value;
        assert_eq!(av.shape(), target.shape(), "mse target shape mismatch");
        let diff = av - target;
        let loss = diff.as_slice().iter().map(|v| v * v).sum::<f32>() / av.len() as f32;
        self.push(
            Matrix::from_vec(1, 1, vec![loss]),
            OpKind::MseConst {
                a,
                target: target.clone(),
            },
        )
    }

    /// Weighted sum of two scalar nodes: `wa·a + wb·b` (total loss
    /// `L = L_CE + L_Recons` in the paper's Eq. 2).
    ///
    /// # Panics
    ///
    /// Panics if either node is not `1 × 1`.
    pub fn weighted_sum(&mut self, a: Var, b: Var, wa: f32, wb: f32) -> Var {
        assert_eq!(self.nodes[a.0].value.shape(), (1, 1), "a must be scalar");
        assert_eq!(self.nodes[b.0].value.shape(), (1, 1), "b must be scalar");
        let val = wa * self.nodes[a.0].value.get(0, 0) + wb * self.nodes[b.0].value.get(0, 0);
        self.push(
            Matrix::from_vec(1, 1, vec![val]),
            OpKind::WeightedSum { a, b, wa, wb },
        )
    }

    /// Scalar value of a `1 × 1` node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not `1 × 1`.
    pub fn scalar(&self, v: Var) -> f32 {
        let m = &self.nodes[v.0].value;
        assert_eq!(m.shape(), (1, 1), "scalar() on non-scalar node");
        m.get(0, 0)
    }

    fn add_grad(&mut self, v: Var, g: Matrix) {
        match &mut self.nodes[v.0].grad {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Runs reverse-mode accumulation from scalar node `root`.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not `1 × 1`.
    pub fn backward(&mut self, root: Var) {
        assert_eq!(
            self.nodes[root.0].value.shape(),
            (1, 1),
            "backward root must be scalar"
        );
        for n in &mut self.nodes {
            n.grad = None;
        }
        self.nodes[root.0].grad = Some(Matrix::from_vec(1, 1, vec![1.0]));

        for i in (0..self.nodes.len()).rev() {
            if self.nodes[i].grad.is_none() {
                continue;
            }
            // Move the upstream gradient and the op out of the node for
            // the duration of the arm (both are restored afterwards):
            // the backward formulas then read cached matrices and parent
            // values by reference instead of deep-copying them — at
            // training scale those clones (attention probabilities,
            // LayerNorm activations, GEMM operands) dominate the sweep's
            // memory traffic.
            let gout = self.nodes[i].grad.take().expect("checked above");
            let op = std::mem::replace(&mut self.nodes[i].op, OpKind::Leaf { param: None });
            match &op {
                OpKind::Leaf { .. } => {}
                &OpKind::MatMul { a, b } => {
                    let ga = gout.matmul_nt(&self.nodes[b.0].value);
                    let gb = self.nodes[a.0].value.matmul_tn(&gout);
                    self.add_grad(a, ga);
                    self.add_grad(b, gb);
                }
                &OpKind::Add { a, b } => {
                    self.add_grad(a, gout.clone());
                    self.add_grad(b, gout.clone());
                }
                &OpKind::Sub { a, b } => {
                    self.add_grad(a, gout.clone());
                    self.add_grad(b, gout.scale(-1.0));
                }
                &OpKind::Hadamard { a, b } => {
                    let ga = gout.hadamard(&self.nodes[b.0].value);
                    let gb = gout.hadamard(&self.nodes[a.0].value);
                    self.add_grad(a, ga);
                    self.add_grad(b, gb);
                }
                &OpKind::Scale { a, s } => {
                    self.add_grad(a, gout.scale(s));
                }
                &OpKind::AddBias { a, bias } => {
                    let gbias = kernels::col_sums(&gout);
                    self.add_grad(a, gout.clone());
                    self.add_grad(bias, gbias);
                }
                &OpKind::Gelu { a } => {
                    let g =
                        kernels::zip_map(&gout, &self.nodes[a.0].value, |g, x| g * gelu_grad(x));
                    self.add_grad(a, g);
                }
                &OpKind::Relu { a } => {
                    let g = kernels::zip_map(&gout, &self.nodes[a.0].value, |g, x| {
                        if x <= 0.0 {
                            0.0
                        } else {
                            g
                        }
                    });
                    self.add_grad(a, g);
                }
                OpKind::LayerNorm {
                    a,
                    gamma,
                    beta,
                    normed,
                    inv_std,
                } => {
                    let (a, gamma, beta) = (*a, *gamma, *beta);
                    let gvec = self.nodes[gamma.0].value.row(0).to_vec();
                    let (gx, ggamma, gbeta) =
                        kernels::layernorm_backward(&gout, normed, inv_std, &gvec);
                    self.add_grad(a, gx);
                    self.add_grad(gamma, ggamma);
                    self.add_grad(beta, gbeta);
                }
                OpKind::MaskedAttention {
                    q,
                    k,
                    v,
                    scale,
                    probs,
                } => {
                    let (q, k, v) = (*q, *k, *v);
                    let (gq, gk, gv) = kernels::attention_head_backward(
                        &self.nodes[q.0].value,
                        &self.nodes[k.0].value,
                        &self.nodes[v.0].value,
                        *scale,
                        probs,
                        &gout,
                    );
                    self.add_grad(q, gq);
                    self.add_grad(k, gk);
                    self.add_grad(v, gv);
                }
                OpKind::MultiHeadAttention {
                    q,
                    k,
                    v,
                    dk,
                    scale,
                    probs,
                } => {
                    let (q, k, v) = (*q, *k, *v);
                    let (gq, gk, gv) = kernels::multi_head_attention_backward(
                        &self.nodes[q.0].value,
                        &self.nodes[k.0].value,
                        &self.nodes[v.0].value,
                        *dk,
                        *scale,
                        probs,
                        &gout,
                    );
                    self.add_grad(q, gq);
                    self.add_grad(k, gk);
                    self.add_grad(v, gv);
                }
                OpKind::BatchedAttention {
                    q,
                    k,
                    v,
                    dk,
                    scale,
                    batch,
                    heads,
                    probs,
                } => {
                    let (q, k, v) = (*q, *k, *v);
                    let (gq, gk, gv) = batched_attention_backward(
                        &self.nodes[q.0].value,
                        &self.nodes[k.0].value,
                        &self.nodes[v.0].value,
                        *dk,
                        *scale,
                        *batch,
                        heads,
                        probs,
                        &gout,
                    );
                    self.add_grad(q, gq);
                    self.add_grad(k, gk);
                    self.add_grad(v, gv);
                }
                &OpKind::TileRows { a, times } => {
                    let (rows, cols) = self.nodes[a.0].value.shape();
                    let mut g = Matrix::zeros(rows, cols);
                    let gv = gout.as_slice();
                    // Ascending tile order: one fixed reduction chain per
                    // element regardless of worker count.
                    for t in 0..times {
                        let base = t * rows * cols;
                        for (o, &x) in g
                            .as_mut_slice()
                            .iter_mut()
                            .zip(&gv[base..base + rows * cols])
                        {
                            *o += x;
                        }
                    }
                    self.add_grad(a, g);
                }
                OpKind::GatherRows { a, rows } => {
                    let a = *a;
                    let (arows, cols) = self.nodes[a.0].value.shape();
                    let mut g = Matrix::zeros(arows, cols);
                    for (i, &r) in rows.iter().enumerate() {
                        let grow = g.row_mut(r);
                        for (o, &x) in grow.iter_mut().zip(gout.row(i)) {
                            *o += x;
                        }
                    }
                    self.add_grad(a, g);
                }
                &OpKind::HeadMix { a, w, dk } => {
                    let (ga, gw) = kernels::head_mix_backward(
                        &self.nodes[a.0].value,
                        &self.nodes[w.0].value,
                        dk,
                        &gout,
                    );
                    self.add_grad(a, ga);
                    self.add_grad(w, gw);
                }
                &OpKind::SliceCols { a, c0 } => {
                    let (rows, cols) = self.nodes[a.0].value.shape();
                    let mut g = Matrix::zeros(rows, cols);
                    for r in 0..gout.rows() {
                        for c in 0..gout.cols() {
                            g.set(r, c0 + c, gout.get(r, c));
                        }
                    }
                    self.add_grad(a, g);
                }
                OpKind::ConcatCols { parts } => {
                    let mut off = 0;
                    for &p in parts {
                        let pc = self.nodes[p.0].value.cols();
                        let g = gout.submatrix(0, gout.rows(), off, off + pc);
                        self.add_grad(p, g);
                        off += pc;
                    }
                }
                &OpKind::MeanRows { a } => {
                    let rows = self.nodes[a.0].value.rows();
                    let g = kernels::broadcast_row(&gout, rows, 1.0 / rows as f32);
                    self.add_grad(a, g);
                }
                &OpKind::RowSlice { a, r } => {
                    let (rows, cols) = self.nodes[a.0].value.shape();
                    let mut g = Matrix::zeros(rows, cols);
                    for c in 0..cols {
                        g.set(r, c, gout.get(0, c));
                    }
                    self.add_grad(a, g);
                }
                OpKind::CrossEntropy {
                    logits,
                    targets,
                    probs,
                } => {
                    let logits = *logits;
                    let gscale = gout.get(0, 0) / targets.len() as f32;
                    let mut g = probs.clone();
                    for (r, &t) in targets.iter().enumerate() {
                        g.set(r, t, g.get(r, t) - 1.0);
                    }
                    g.map_inplace(|v| v * gscale);
                    self.add_grad(logits, g);
                }
                OpKind::MseConst { a, target } => {
                    let a = *a;
                    let av = &self.nodes[a.0].value;
                    let gscale = gout.get(0, 0) * 2.0 / av.len() as f32;
                    let g = (av - target).scale(gscale);
                    self.add_grad(a, g);
                }
                &OpKind::WeightedSum { a, b, wa, wb } => {
                    self.add_grad(a, gout.scale(wa));
                    self.add_grad(b, gout.scale(wb));
                }
            }
            self.nodes[i].op = op;
            self.nodes[i].grad = Some(gout);
        }
    }

    /// Flushes accumulated leaf gradients back into `store`.
    ///
    /// Multiple imports of the same parameter within one tape all
    /// contribute, as do successive tapes between `store.zero_grads()`
    /// calls (gradient accumulation across a mini-batch).
    pub fn write_grads(&self, store: &mut ParamStore) {
        for n in &self.nodes {
            if let (OpKind::Leaf { param: Some(id) }, Some(g)) = (&n.op, &n.grad) {
                store.accumulate_grad(*id, g);
            }
        }
    }
}

/// Validates a batched attention call's shapes and expands an empty plan
/// slice to all-dense.
fn normalize_head_plans(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    dk: usize,
    batch: usize,
    heads: &[HeadExec],
) -> Vec<HeadExec> {
    assert!(dk > 0, "dk must be positive");
    assert!(batch > 0, "batch must be positive");
    assert_eq!(q.shape(), k.shape(), "q/k shapes differ");
    assert_eq!(q.shape(), v.shape(), "q/v shapes differ");
    assert_eq!(q.cols() % dk, 0, "cols must be a multiple of dk");
    assert_eq!(q.rows() % batch, 0, "rows must be a multiple of batch");
    let h = q.cols() / dk;
    let n = q.rows() / batch;
    if heads.is_empty() {
        return vec![HeadExec::Dense; h];
    }
    assert_eq!(heads.len(), h, "head plans must cover exactly all heads");
    for (i, plan) in heads.iter().enumerate() {
        match plan {
            HeadExec::Dense => {}
            HeadExec::Masked(bias) => assert_eq!(
                bias.shape(),
                (n, n),
                "head {i} mask must be tokens x tokens"
            ),
            HeadExec::Sparse(csc) => {
                assert_eq!(csc.size(), n, "head {i} CSC size must match tokens")
            }
        }
    }
    heads.to_vec()
}

/// Forward of the batched attention op: `(sample, head)` tasks fan out
/// via the kernel layer, then outputs are written into the stacked
/// result in fixed task order.
fn batched_attention_forward(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    dk: usize,
    scale: f32,
    batch: usize,
    heads: &[HeadExec],
) -> (Matrix, Vec<HeadProbs>) {
    let h = heads.len();
    let n = q.rows() / batch;
    let tasks = batch * h;
    let per_task = kernels::par_map_collect(tasks, 2 * n * n * dk, |t| {
        let (s, head) = (t / h, t % h);
        let (r0, c0) = (s * n, head * dk);
        let qh = q.submatrix(r0, r0 + n, c0, c0 + dk);
        let kh = k.submatrix(r0, r0 + n, c0, c0 + dk);
        let vh = v.submatrix(r0, r0 + n, c0, c0 + dk);
        match &heads[head] {
            HeadExec::Dense => {
                let (out, probs) = kernels::attention_head(&qh, &kh, &vh, scale, None);
                (out, HeadProbs::Dense(probs))
            }
            HeadExec::Masked(bias) => {
                let (out, probs) =
                    kernels::attention_head(&qh, &kh, &vh, scale, Some(bias.as_ref()));
                (out, HeadProbs::Dense(probs))
            }
            HeadExec::Sparse(csc) => {
                // The shared-index entry point: every sample of every
                // step references the model's frozen index by Arc.
                let scores = sparse::sddmm_k_stationary_shared(&qh, &kh, csc, scale);
                let probs = scores.softmax_rows();
                let out = sparse::spmm_output_stationary(&probs, &vh);
                (out, HeadProbs::Sparse(probs))
            }
        }
    });
    let mut out = Matrix::zeros(batch * n, h * dk);
    let mut probs = Vec::with_capacity(tasks);
    for (t, (block, p)) in per_task.into_iter().enumerate() {
        let (s, head) = (t / h, t % h);
        write_block(&mut out, &block, s * n, head * dk);
        probs.push(p);
    }
    (out, probs)
}

/// Backward of the batched attention op; tasks fan out like the forward
/// and the per-block gradients are assembled in fixed task order.
#[allow(clippy::too_many_arguments)]
fn batched_attention_backward(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    dk: usize,
    scale: f32,
    batch: usize,
    heads: &[HeadExec],
    probs: &[HeadProbs],
    gout: &Matrix,
) -> (Matrix, Matrix, Matrix) {
    let h = heads.len();
    let n = q.rows() / batch;
    assert_eq!(gout.shape(), q.shape(), "gout shape mismatch");
    let tasks = batch * h;
    let per_task = kernels::par_map_collect(tasks, 4 * n * n * dk, |t| {
        let (s, head) = (t / h, t % h);
        let (r0, c0) = (s * n, head * dk);
        let qh = q.submatrix(r0, r0 + n, c0, c0 + dk);
        let kh = k.submatrix(r0, r0 + n, c0, c0 + dk);
        let vh = v.submatrix(r0, r0 + n, c0, c0 + dk);
        let gh = gout.submatrix(r0, r0 + n, c0, c0 + dk);
        match &probs[t] {
            HeadProbs::Dense(p) => kernels::attention_head_backward(&qh, &kh, &vh, scale, p, &gh),
            HeadProbs::Sparse(p) => sparse::attention_head_backward(&qh, &kh, &vh, scale, p, &gh),
        }
    });
    let mut gq = Matrix::zeros(batch * n, h * dk);
    let mut gk = Matrix::zeros(batch * n, h * dk);
    let mut gv = Matrix::zeros(batch * n, h * dk);
    for (t, (bq, bk, bv)) in per_task.into_iter().enumerate() {
        let (s, head) = (t / h, t % h);
        write_block(&mut gq, &bq, s * n, head * dk);
        write_block(&mut gk, &bk, s * n, head * dk);
        write_block(&mut gv, &bv, s * n, head * dk);
    }
    (gq, gk, gv)
}

/// Copies `block` into `out` with its top-left corner at `(r0, c0)`.
fn write_block(out: &mut Matrix, block: &Matrix, r0: usize, c0: usize) {
    let cols = block.cols();
    for r in 0..block.rows() {
        out.row_mut(r0 + r)[c0..c0 + cols].copy_from_slice(block.row(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitcod_tensor::Initializer;

    /// Central finite-difference check of `d loss / d param` for the
    /// parameter `id`, where `build` constructs the loss from a fresh tape.
    fn gradcheck(
        store: &mut ParamStore,
        id: ParamId,
        build: &mut dyn FnMut(&mut Tape, &ParamStore) -> Var,
        tol: f32,
    ) {
        let mut tape = Tape::new();
        let loss = build(&mut tape, store);
        tape.backward(loss);
        store.zero_grads();
        tape.write_grads(store);
        let analytic = store.grad(id).clone();

        let (rows, cols) = store.value(id).shape();
        let h = 1e-2f32;
        for r in 0..rows {
            for c in 0..cols {
                let orig = store.value(id).get(r, c);
                store.value_mut(id).set(r, c, orig + h);
                let mut tp = Tape::new();
                let lp_var = build(&mut tp, store);
                let lp = tp.scalar(lp_var);
                store.value_mut(id).set(r, c, orig - h);
                let mut tm = Tape::new();
                let lm_var = build(&mut tm, store);
                let lm = tm.scalar(lm_var);
                store.value_mut(id).set(r, c, orig);
                let fd = (lp - lm) / (2.0 * h);
                let an = analytic.get(r, c);
                assert!(
                    (fd - an).abs() <= tol * (1.0 + fd.abs().max(an.abs())),
                    "grad mismatch at ({r},{c}): fd={fd} analytic={an}"
                );
            }
        }
    }

    #[test]
    fn gradcheck_matmul_chain() {
        let mut store = ParamStore::new();
        let w = store.register("w", Initializer::Normal { std: 0.5 }.sample(3, 2, 1));
        let x = Matrix::from_rows(&[&[0.5, -1.0, 2.0], &[1.5, 0.3, -0.7]]);
        let target = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        gradcheck(
            &mut store,
            w,
            &mut |tape, store| {
                let xv = tape.constant(x.clone());
                let wv = tape.param(store, w);
                let y = tape.matmul(xv, wv);
                tape.mse_loss(y, &target)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_bias_and_gelu() {
        let mut store = ParamStore::new();
        let b = store.register("b", Initializer::Normal { std: 0.5 }.sample(1, 3, 2));
        let x = Matrix::from_rows(&[&[0.5, -1.0, 2.0], &[0.1, 0.2, 0.3]]);
        let target = Matrix::zeros(2, 3);
        gradcheck(
            &mut store,
            b,
            &mut |tape, store| {
                let xv = tape.constant(x.clone());
                let bv = tape.param(store, b);
                let y = tape.add_bias(xv, bv);
                let g = tape.gelu(y);
                tape.mse_loss(g, &target)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_layernorm_gamma_and_input() {
        let mut store = ParamStore::new();
        let g = store.register("g", Matrix::filled(1, 4, 1.2));
        let x = store.register("x", Initializer::Normal { std: 1.0 }.sample(2, 4, 3));
        let beta = Matrix::filled(1, 4, 0.1);
        let target = Matrix::zeros(2, 4);
        for id in [g, x] {
            gradcheck(
                &mut store,
                id,
                &mut |tape, store| {
                    let xv = tape.param(store, x);
                    let gv = tape.param(store, g);
                    let bv = tape.constant(beta.clone());
                    let y = tape.layernorm(xv, gv, bv);
                    tape.mse_loss(y, &target)
                },
                5e-2,
            );
        }
    }

    #[test]
    fn gradcheck_masked_attention_all_inputs() {
        let mut store = ParamStore::new();
        let q = store.register("q", Initializer::Normal { std: 0.7 }.sample(3, 4, 4));
        let k = store.register("k", Initializer::Normal { std: 0.7 }.sample(3, 4, 5));
        let v = store.register("v", Initializer::Normal { std: 0.7 }.sample(3, 4, 6));
        // Fixed sparse mask: prune position (0, 2) and (2, 0).
        let mut mask = Matrix::zeros(3, 3);
        mask.set(0, 2, f32::NEG_INFINITY);
        mask.set(2, 0, f32::NEG_INFINITY);
        let target = Matrix::zeros(3, 4);
        for id in [q, k, v] {
            gradcheck(
                &mut store,
                id,
                &mut |tape, store| {
                    let qv = tape.param(store, q);
                    let kv = tape.param(store, k);
                    let vv = tape.param(store, v);
                    let o = tape.masked_attention(qv, kv, vv, 0.5, Some(&mask));
                    tape.mse_loss(o, &target)
                },
                5e-2,
            );
        }
    }

    #[test]
    // Pruned positions must be exactly zero — a structural sentinel.
    #[allow(clippy::float_cmp)]
    fn masked_attention_pruned_positions_have_zero_prob() {
        let mut tape = Tape::new();
        let q = tape.constant(Initializer::Normal { std: 1.0 }.sample(4, 8, 7));
        let k = tape.constant(Initializer::Normal { std: 1.0 }.sample(4, 8, 8));
        let v = tape.constant(Initializer::Normal { std: 1.0 }.sample(4, 8, 9));
        let mut mask = Matrix::zeros(4, 4);
        mask.set(1, 3, f32::NEG_INFINITY);
        let attn = tape.masked_attention(q, k, v, 0.35, Some(&mask));
        let p = tape.attention_probs(attn);
        assert_eq!(p.get(1, 3), 0.0);
        // Every row still sums to one.
        for r in 0..4 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    #[test]
    fn gradcheck_head_mix() {
        let dk = 3;
        let mut store = ParamStore::new();
        let w = store.register("w", Initializer::Normal { std: 0.6 }.sample(4, 2, 10));
        let x = Initializer::Normal { std: 1.0 }.sample(2, 4 * dk, 11);
        let target = Matrix::zeros(2, 2 * dk);
        gradcheck(
            &mut store,
            w,
            &mut |tape, store| {
                let xv = tape.constant(x.clone());
                let wv = tape.param(store, w);
                let y = tape.head_mix(xv, wv, dk);
                tape.mse_loss(y, &target)
            },
            2e-2,
        );
    }

    #[test]
    fn head_mix_identity_weight_is_noop() {
        let dk = 2;
        let mut tape = Tape::new();
        let x = Initializer::Normal { std: 1.0 }.sample(3, 3 * dk, 12);
        let xv = tape.constant(x.clone());
        let wv = tape.constant(Matrix::identity(3));
        let y = tape.head_mix(xv, wv, dk);
        assert!(tape.value(y).max_abs_diff(&x) < 1e-6);
    }

    #[test]
    fn gradcheck_cross_entropy() {
        let mut store = ParamStore::new();
        let w = store.register("w", Initializer::Normal { std: 0.8 }.sample(3, 4, 13));
        let x = Matrix::from_rows(&[&[1.0, -0.5, 0.25], &[0.0, 2.0, -1.0]]);
        let targets = vec![2usize, 0usize];
        gradcheck(
            &mut store,
            w,
            &mut |tape, store| {
                let xv = tape.constant(x.clone());
                let wv = tape.param(store, w);
                let logits = tape.matmul(xv, wv);
                tape.cross_entropy(logits, &targets)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_slice_concat_mean() {
        let mut store = ParamStore::new();
        let w = store.register("w", Initializer::Normal { std: 0.5 }.sample(2, 6, 14));
        let x = Matrix::from_rows(&[&[1.0, -1.0], &[0.5, 0.25], &[2.0, 0.0]]);
        let target = Matrix::zeros(1, 6);
        gradcheck(
            &mut store,
            w,
            &mut |tape, store| {
                let xv = tape.constant(x.clone());
                let wv = tape.param(store, w);
                let y = tape.matmul(xv, wv);
                let h0 = tape.slice_cols(y, 0, 3);
                let h1 = tape.slice_cols(y, 3, 6);
                let cat = tape.concat_cols(&[h1, h0]);
                let pooled = tape.mean_rows(cat);
                tape.mse_loss(pooled, &target)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_weighted_sum_combines_losses() {
        let mut store = ParamStore::new();
        let w = store.register("w", Initializer::Normal { std: 0.5 }.sample(2, 2, 15));
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        let t1 = Matrix::from_rows(&[&[0.5, 0.5]]);
        let t2 = Matrix::from_rows(&[&[1.0, -1.0]]);
        gradcheck(
            &mut store,
            w,
            &mut |tape, store| {
                let xv = tape.constant(x.clone());
                let wv = tape.param(store, w);
                let y = tape.matmul(xv, wv);
                let l1 = tape.mse_loss(y, &t1);
                let l2 = tape.mse_loss(y, &t2);
                tape.weighted_sum(l1, l2, 1.0, 0.5)
            },
            2e-2,
        );
    }

    #[test]
    fn shared_param_grads_accumulate() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::filled(1, 1, 2.0));
        let mut tape = Tape::new();
        let w1 = tape.param(&store, w);
        let w2 = tape.param(&store, w);
        // loss = (w * w) via two imports: d/dw = 2w = 4.
        let prod = tape.hadamard(w1, w2);
        let loss = tape.mse_loss(prod, &Matrix::zeros(1, 1));
        tape.backward(loss);
        store.zero_grads();
        tape.write_grads(&mut store);
        // loss = w^2 squared error to 0 => (w^2)^2; d/dw = 4 w^3 = 32.
        assert!((store.grad(w).get(0, 0) - 32.0).abs() < 1e-3);
    }

    #[test]
    fn relu_and_row_slice_backward() {
        let mut store = ParamStore::new();
        let w = store.register("w", Initializer::Normal { std: 0.9 }.sample(3, 3, 16));
        let x = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.3, 0.1, -0.2]]);
        let target = Matrix::zeros(1, 3);
        gradcheck(
            &mut store,
            w,
            &mut |tape, store| {
                let xv = tape.constant(x.clone());
                let wv = tape.param(store, w);
                let y = tape.matmul(xv, wv);
                let a = tape.relu(y);
                let r0 = tape.row_slice(a, 0);
                tape.mse_loss(r0, &target)
            },
            3e-2,
        );
    }

    #[test]
    // Head probes replay the same kernel path; equality is bitwise.
    #[allow(clippy::float_cmp)]
    fn multi_head_attention_matches_per_head_graph() {
        let (n, dk, heads) = (5, 3, 2);
        let mut store = ParamStore::new();
        let q = store.register(
            "q",
            Initializer::Normal { std: 0.8 }.sample(n, heads * dk, 20),
        );
        let k = store.register(
            "k",
            Initializer::Normal { std: 0.8 }.sample(n, heads * dk, 21),
        );
        let v = store.register(
            "v",
            Initializer::Normal { std: 0.8 }.sample(n, heads * dk, 22),
        );
        let mut mask = Matrix::zeros(n, n);
        mask.set(0, 4, f32::NEG_INFINITY);
        let masks = vec![Some(mask.clone()), None];
        let target = Matrix::zeros(n, heads * dk);

        // Fused op.
        let mut fused = Tape::new();
        let (qv, kv, vv) = (
            fused.param(&store, q),
            fused.param(&store, k),
            fused.param(&store, v),
        );
        let attn = fused.multi_head_attention(qv, kv, vv, dk, 0.5, &masks);
        assert_eq!(fused.num_heads(attn), heads);
        let loss = fused.mse_loss(attn, &target);
        fused.backward(loss);
        store.zero_grads();
        fused.write_grads(&mut store);
        let fused_gq = store.grad(q).clone();
        let fused_out = fused.value(attn).clone();
        let fused_loss = fused.scalar(loss);

        // Composed per-head graph (slice → attend → concat).
        let mut composed = Tape::new();
        let (qv, kv, vv) = (
            composed.param(&store, q),
            composed.param(&store, k),
            composed.param(&store, v),
        );
        let mut outs = Vec::new();
        for (h, mask) in masks.iter().enumerate() {
            let c0 = h * dk;
            let qh = composed.slice_cols(qv, c0, c0 + dk);
            let kh = composed.slice_cols(kv, c0, c0 + dk);
            let vh = composed.slice_cols(vv, c0, c0 + dk);
            outs.push(composed.masked_attention(qh, kh, vh, 0.5, mask.as_ref()));
        }
        let cat = composed.concat_cols(&outs);
        let loss2 = composed.mse_loss(cat, &target);
        composed.backward(loss2);
        store.zero_grads();
        composed.write_grads(&mut store);

        assert!(fused_out.max_abs_diff(composed.value(cat)) < 1e-6);
        assert!((fused_loss - composed.scalar(loss2)).abs() < 1e-7);
        assert!(fused_gq.max_abs_diff(store.grad(q)) < 1e-6);
        // Head-probe API agrees with the per-head nodes.
        assert_eq!(fused.head_probs(attn, 0), composed.attention_probs(outs[0]));
        assert_eq!(fused.head_probs(attn, 0).get(0, 4), 0.0);
    }

    #[test]
    fn batched_attention_batch_one_matches_fused_op() {
        let (n, dk, heads) = (6, 4, 2);
        let mut store = ParamStore::new();
        let q = store.register(
            "q",
            Initializer::Normal { std: 0.8 }.sample(n, heads * dk, 30),
        );
        let k = store.register(
            "k",
            Initializer::Normal { std: 0.8 }.sample(n, heads * dk, 31),
        );
        let v = store.register(
            "v",
            Initializer::Normal { std: 0.8 }.sample(n, heads * dk, 32),
        );
        let mut mask = Matrix::zeros(n, n);
        mask.set(0, 3, f32::NEG_INFINITY);
        let masks = vec![Some(mask.clone()), None];
        let target = Matrix::zeros(n, heads * dk);

        let mut fused = Tape::new();
        let (qv, kv, vv) = (
            fused.param(&store, q),
            fused.param(&store, k),
            fused.param(&store, v),
        );
        let attn = fused.multi_head_attention(qv, kv, vv, dk, 0.5, &masks);
        let loss = fused.mse_loss(attn, &target);
        fused.backward(loss);
        store.zero_grads();
        fused.write_grads(&mut store);
        let fused_gq = store.grad(q).clone();

        let plans = vec![HeadExec::Masked(Arc::new(mask)), HeadExec::Dense];
        let mut batched = Tape::new();
        let (qv, kv, vv) = (
            batched.param(&store, q),
            batched.param(&store, k),
            batched.param(&store, v),
        );
        let attn_b = batched.batched_multi_head_attention(qv, kv, vv, dk, 0.5, 1, &plans);
        assert_eq!(batched.attention_batch(attn_b), 1);
        assert_eq!(batched.num_heads(attn_b), heads);
        let loss_b = batched.mse_loss(attn_b, &target);
        batched.backward(loss_b);
        store.zero_grads();
        batched.write_grads(&mut store);

        // The batch-1 batched op runs the exact same per-head kernels, so
        // values and gradients are bit-identical to the fused op.
        assert_eq!(fused.value(attn), batched.value(attn_b));
        assert_eq!(&fused_gq, store.grad(q));
        assert_eq!(
            fused.head_probs(attn, 0),
            &batched.head_probs_dense(attn_b, 0, 0)
        );
    }

    #[test]
    fn batched_attention_blocks_match_per_sample_ops() {
        let (n, dk, heads, batch) = (5, 3, 2, 3);
        let rows = batch * n;
        let q = Initializer::Normal { std: 0.8 }.sample(rows, heads * dk, 33);
        let k = Initializer::Normal { std: 0.8 }.sample(rows, heads * dk, 34);
        let v = Initializer::Normal { std: 0.8 }.sample(rows, heads * dk, 35);
        let mut tape = Tape::new();
        let (qv, kv, vv) = (
            tape.constant(q.clone()),
            tape.constant(k.clone()),
            tape.constant(v.clone()),
        );
        let attn = tape.batched_multi_head_attention(qv, kv, vv, dk, 0.5, batch, &[]);
        for s in 0..batch {
            let mut single = Tape::new();
            let (qs, ks, vs) = (
                single.constant(q.submatrix(s * n, (s + 1) * n, 0, heads * dk)),
                single.constant(k.submatrix(s * n, (s + 1) * n, 0, heads * dk)),
                single.constant(v.submatrix(s * n, (s + 1) * n, 0, heads * dk)),
            );
            let a = single.multi_head_attention(qs, ks, vs, dk, 0.5, &[]);
            assert_eq!(
                tape.value(attn)
                    .submatrix(s * n, (s + 1) * n, 0, heads * dk),
                *single.value(a),
                "sample {s} block differs"
            );
            for h in 0..heads {
                assert_eq!(
                    tape.head_probs_dense(attn, s, h),
                    *single.head_probs(a, h),
                    "sample {s} head {h} probs differ"
                );
            }
        }
    }

    #[test]
    fn gradcheck_sparse_attention_tiny_head() {
        // Finite-difference spot check of the sparse dataflow through the
        // tape on a tiny head (satellite of the sparse-backward work).
        let n = 4;
        let dk = 3;
        let csc = Arc::new(CscMatrix::from_indicator(n, |q, k| q == k || k == 0));
        let mut store = ParamStore::new();
        let q = store.register("q", Initializer::Normal { std: 0.7 }.sample(n, dk, 40));
        let k = store.register("k", Initializer::Normal { std: 0.7 }.sample(n, dk, 41));
        let v = store.register("v", Initializer::Normal { std: 0.7 }.sample(n, dk, 42));
        let target = Matrix::zeros(n, dk);
        for id in [q, k, v] {
            gradcheck(
                &mut store,
                id,
                &mut |tape, store| {
                    let qv = tape.param(store, q);
                    let kv = tape.param(store, k);
                    let vv = tape.param(store, v);
                    let plans = vec![HeadExec::Sparse(csc.clone())];
                    let o = tape.batched_multi_head_attention(qv, kv, vv, dk, 0.5, 1, &plans);
                    tape.mse_loss(o, &target)
                },
                5e-2,
            );
        }
    }

    #[test]
    fn sparse_head_grads_match_masked_head_grads() {
        let (n, dk) = (8, 4);
        let keep = |q: usize, k: usize| q == k || k == 0 || (q + k).is_multiple_of(3);
        let csc = Arc::new(CscMatrix::from_indicator(n, keep));
        let mut bias = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                if !keep(r, c) {
                    bias.set(r, c, f32::NEG_INFINITY);
                }
            }
        }
        let mut store = ParamStore::new();
        let q = store.register("q", Initializer::Normal { std: 0.8 }.sample(n, dk, 43));
        let k = store.register("k", Initializer::Normal { std: 0.8 }.sample(n, dk, 44));
        let v = store.register("v", Initializer::Normal { std: 0.8 }.sample(n, dk, 45));
        let target = Matrix::zeros(n, dk);
        let run = |plans: Vec<HeadExec>| {
            let mut tape = Tape::new();
            let (qv, kv, vv) = (
                tape.param(&store, q),
                tape.param(&store, k),
                tape.param(&store, v),
            );
            let o = tape.batched_multi_head_attention(qv, kv, vv, dk, 0.5, 1, &plans);
            let loss = tape.mse_loss(o, &target);
            tape.backward(loss);
            (
                tape.grad(qv).unwrap().clone(),
                tape.grad(kv).unwrap().clone(),
                tape.grad(vv).unwrap().clone(),
            )
        };
        let (sq, sk, sv) = run(vec![HeadExec::Sparse(csc)]);
        let (mq, mk, mv) = run(vec![HeadExec::Masked(Arc::new(bias))]);
        assert!(
            sq.max_abs_diff(&mq) < 1e-4,
            "gq off by {}",
            sq.max_abs_diff(&mq)
        );
        assert!(
            sk.max_abs_diff(&mk) < 1e-4,
            "gk off by {}",
            sk.max_abs_diff(&mk)
        );
        assert!(
            sv.max_abs_diff(&mv) < 1e-4,
            "gv off by {}",
            sv.max_abs_diff(&mv)
        );
    }

    #[test]
    fn gradcheck_tile_and_gather_rows() {
        let mut store = ParamStore::new();
        let w = store.register("w", Initializer::Normal { std: 0.5 }.sample(3, 4, 46));
        let target = Matrix::zeros(3, 4);
        gradcheck(
            &mut store,
            w,
            &mut |tape, store| {
                let wv = tape.param(store, w);
                let tiled = tape.tile_rows(wv, 2);
                // Gather rows 0 and 3 (first row of each tile) plus a
                // duplicate of row 0, so the backward's scatter-add must
                // accumulate, not overwrite.
                let picked = tape.gather_rows(tiled, &[0, 3, 0]);
                tape.mse_loss(picked, &target)
            },
            2e-2,
        );
    }

    #[test]
    fn tile_rows_values_and_shapes() {
        let mut tape = Tape::new();
        let a = tape.constant(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let t = tape.tile_rows(a, 3);
        assert_eq!(tape.value(t).shape(), (6, 2));
        assert_eq!(tape.value(t).row(4), &[1.0, 2.0]);
        let g = tape.gather_rows(t, &[0, 2, 4]);
        assert_eq!(tape.value(g).shape(), (3, 2));
        assert_eq!(tape.value(g).row(2), &[1.0, 2.0]);
    }

    #[test]
    fn backward_requires_scalar_root() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::zeros(2, 2));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tape.backward(x);
        }));
        assert!(result.is_err());
    }
}
