//! External parameter storage shared by successive tapes.

use vitcod_tensor::Matrix;

/// Opaque handle to a parameter registered in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

#[derive(Debug, Clone)]
struct ParamSlot {
    name: String,
    value: Matrix,
    grad: Matrix,
}

/// Holds trainable parameters, their accumulated gradients and their names.
///
/// Parameters outlive any single [`crate::Tape`]: each forward pass imports
/// them as leaf nodes, and after `backward` the tape flushes gradients back
/// here via [`crate::Tape::write_grads`]. Optimizers then mutate the stored
/// values in place.
///
/// # Example
///
/// ```
/// use vitcod_autograd::ParamStore;
/// use vitcod_tensor::Matrix;
///
/// let mut store = ParamStore::new();
/// let id = store.register("bias", Matrix::zeros(1, 4));
/// assert_eq!(store.value(id).shape(), (1, 4));
/// assert_eq!(store.name(id), "bias");
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    slots: Vec<ParamSlot>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle.
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let (r, c) = value.shape();
        self.slots.push(ParamSlot {
            name: name.into(),
            value,
            grad: Matrix::zeros(r, c),
        });
        ParamId(self.slots.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.slots.iter().map(|s| s.value.len()).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.slots[id.0].value
    }

    /// Mutable access to a parameter's value (used by optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.slots[id.0].value
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.slots[id.0].grad
    }

    /// Name the parameter was registered under.
    pub fn name(&self, id: ParamId) -> &str {
        &self.slots[id.0].name
    }

    /// Adds `g` into the stored gradient of `id`.
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape does not match the parameter shape.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Matrix) {
        self.slots[id.0].grad.add_assign(g);
    }

    /// Resets all gradients to zero; call once per optimization step.
    pub fn zero_grads(&mut self) {
        for s in &mut self.slots {
            s.grad.map_inplace(|_| 0.0);
        }
    }

    /// Iterator over all parameter handles.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.slots.len()).map(ParamId)
    }

    /// Scales every accumulated gradient by `s` (e.g. `1 / batch` to
    /// turn a sum of per-sample gradients into a mean).
    pub fn scale_grads(&mut self, s: f32) {
        for slot in &mut self.slots {
            slot.grad.map_inplace(|v| v * s);
        }
    }

    /// Global L2 norm of all gradients, for gradient clipping.
    pub fn grad_norm(&self) -> f32 {
        self.slots
            .iter()
            .map(|s| {
                let n = s.grad.frobenius_norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Scales all gradients so the global norm does not exceed `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for slot in &mut self.slots {
                slot.grad.map_inplace(|v| v * s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut store = ParamStore::new();
        let a = store.register("a", Matrix::zeros(2, 2));
        let b = store.register("b", Matrix::zeros(1, 3));
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_scalars(), 7);
        assert_eq!(store.name(a), "a");
        assert_eq!(store.value(b).shape(), (1, 3));
    }

    #[test]
    fn grads_accumulate_and_zero() {
        let mut store = ParamStore::new();
        let a = store.register("a", Matrix::zeros(1, 2));
        store.accumulate_grad(a, &Matrix::filled(1, 2, 1.0));
        store.accumulate_grad(a, &Matrix::filled(1, 2, 2.0));
        assert_eq!(store.grad(a), &Matrix::filled(1, 2, 3.0));
        store.zero_grads();
        assert_eq!(store.grad(a), &Matrix::zeros(1, 2));
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut store = ParamStore::new();
        let a = store.register("a", Matrix::zeros(1, 2));
        store.accumulate_grad(a, &Matrix::from_rows(&[&[3.0, 4.0]]));
        store.clip_grad_norm(1.0);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
        // Direction preserved.
        let g = store.grad(a);
        assert!((g.get(0, 0) / g.get(0, 1) - 0.75).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_leaves_small_grads_alone() {
        let mut store = ParamStore::new();
        let a = store.register("a", Matrix::zeros(1, 2));
        store.accumulate_grad(a, &Matrix::from_rows(&[&[0.3, 0.4]]));
        store.clip_grad_norm(1.0);
        assert!((store.grad_norm() - 0.5).abs() < 1e-6);
    }
}
