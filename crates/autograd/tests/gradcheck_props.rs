//! Property-based gradient checks: random shapes, random data, every
//! differentiable operator agrees with central finite differences.

use proptest::prelude::*;
use vitcod_autograd::{ParamStore, Tape, Var};
use vitcod_tensor::Matrix;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// Finite-difference check for the single parameter `w` under `build`.
fn check(
    w0: Matrix,
    build: impl Fn(&mut Tape, &ParamStore, vitcod_autograd::ParamId) -> Var,
    tol: f32,
) -> Result<(), TestCaseError> {
    let mut store = ParamStore::new();
    let w = store.register("w", w0);
    let mut tape = Tape::new();
    let loss = build(&mut tape, &store, w);
    tape.backward(loss);
    store.zero_grads();
    tape.write_grads(&mut store);
    let analytic = store.grad(w).clone();
    let (rows, cols) = store.value(w).shape();
    let h = 1e-2f32;
    for r in 0..rows {
        for c in 0..cols {
            let orig = store.value(w).get(r, c);
            store.value_mut(w).set(r, c, orig + h);
            let mut tp = Tape::new();
            let lv = build(&mut tp, &store, w);
            let lp = tp.scalar(lv);
            store.value_mut(w).set(r, c, orig - h);
            let mut tm = Tape::new();
            let lv2 = build(&mut tm, &store, w);
            let lm = tm.scalar(lv2);
            store.value_mut(w).set(r, c, orig);
            let fd = (lp - lm) / (2.0 * h);
            let an = analytic.get(r, c);
            prop_assert!(
                (fd - an).abs() <= tol * (1.0 + fd.abs().max(an.abs())),
                "({r},{c}): fd {fd} vs analytic {an}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_grads(w in matrix(3, 2), x in matrix(2, 3)) {
        check(w, |tape, store, w| {
            let xv = tape.constant(x.clone());
            let wv = tape.param(store, w);
            let y = tape.matmul(xv, wv);
            tape.mse_loss(y, &Matrix::zeros(2, 2))
        }, 5e-2)?;
    }

    #[test]
    fn gelu_chain_grads(w in matrix(2, 4)) {
        check(w, |tape, store, w| {
            let wv = tape.param(store, w);
            let g = tape.gelu(wv);
            let s = tape.scale(g, 0.7);
            tape.mse_loss(s, &Matrix::filled(2, 4, 0.3))
        }, 5e-2)?;
    }

    #[test]
    fn attention_q_grads(q in matrix(4, 4), k in matrix(4, 4), v in matrix(4, 4)) {
        check(q, |tape, store, w| {
            let qv = tape.param(store, w);
            let kv = tape.constant(k.clone());
            let vv = tape.constant(v.clone());
            let o = tape.masked_attention(qv, kv, vv, 0.5, None);
            tape.mse_loss(o, &Matrix::zeros(4, 4))
        }, 8e-2)?;
    }

    #[test]
    fn head_mix_grads(w in matrix(3, 2), x in matrix(2, 9)) {
        check(w, |tape, store, w| {
            let xv = tape.constant(x.clone());
            let wv = tape.param(store, w);
            let y = tape.head_mix(xv, wv, 3);
            tape.mse_loss(y, &Matrix::zeros(2, 6))
        }, 5e-2)?;
    }

    #[test]
    fn layernorm_input_grads(x in matrix(3, 5)) {
        // Keep inputs away from degenerate constant rows where the
        // 1/sigma term explodes.
        let spread = x.map(|v| v * 2.0);
        check(spread, |tape, store, w| {
            let xv = tape.param(store, w);
            let g = tape.constant(Matrix::filled(1, 5, 1.1));
            let b = tape.constant(Matrix::filled(1, 5, -0.2));
            let y = tape.layernorm(xv, g, b);
            tape.mse_loss(y, &Matrix::zeros(3, 5))
        }, 2e-1)?;
    }

    #[test]
    fn mse_between_grads_flow_to_both(a in matrix(2, 3)) {
        check(a, |tape, store, w| {
            let av = tape.param(store, w);
            let shifted = tape.scale(av, 0.5);
            tape.mse_between(av, shifted)
        }, 5e-2)?;
    }

    #[test]
    fn cross_entropy_grads(w in matrix(3, 4)) {
        check(w, |tape, store, w| {
            let x = tape.constant(Matrix::from_rows(&[&[0.4, -1.2, 0.8]]));
            let wv = tape.param(store, w);
            let logits = tape.matmul(x, wv);
            tape.cross_entropy(logits, &[2])
        }, 5e-2)?;
    }
}
