//! Malformed-wire-input suite, mirroring the artifact layer's
//! corrupt-input tests: truncated headers, oversized `Content-Length`,
//! bad UTF-8, hostile JSON nesting — every one must come back as a
//! clean `400` with a JSON error body, with allocation bounded by the
//! parser caps (an oversized body is rejected from the head alone,
//! before a body byte is read).

use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vitcod_autograd::ParamStore;
use vitcod_engine::{CompiledVit, Engine};
use vitcod_model::{ViTConfig, VisionTransformer};
use vitcod_serve::{BatchConfig, ModelRegistry, Server};
use vitcod_transport::{http, HttpClient, HttpServer, TransportConfig};

fn start_http() -> HttpServer {
    let cfg = ViTConfig::deit_tiny().reduced_for_training();
    let mut store = ParamStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let vit = VisionTransformer::new(&cfg, 8, 4, &mut store, &mut rng);
    let mut registry = ModelRegistry::new();
    registry
        .register(
            "m",
            Engine::builder(CompiledVit::from_parts(&vit, &store)).build(),
        )
        .unwrap();
    let server = Server::start(registry, BatchConfig::default());
    HttpServer::bind(
        "127.0.0.1:0",
        server,
        TransportConfig {
            idle_timeout: Duration::from_secs(2),
            ..TransportConfig::default()
        },
    )
    .unwrap()
}

/// Sends raw bytes, half-closes the write side, and reads the response.
fn send_raw(server: &HttpServer, bytes: &[u8]) -> http::HttpResponse {
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // The server may reject and reset the connection while we are still
    // mid-write (e.g. the oversized header section trips the cap long
    // before the last byte), so a failed write or half-close only means
    // the rejection already happened; the buffered response stays
    // readable and the read below is the assertion that matters.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(Shutdown::Write);
    http::read_response(&mut stream).expect("server must respond, not drop")
}

#[test]
fn truncated_headers_get_a_clean_400() {
    let server = start_http();
    // The peer gives up mid-header; the server answers instead of
    // hanging or dropping silently.
    let resp = send_raw(
        &server,
        b"POST /v1/models/m/classify HTTP/1.1\r\nContent-Le",
    );
    assert_eq!(resp.status, 400);
    assert!(
        resp.json().unwrap().get("error").is_some(),
        "error body must be JSON: {}",
        resp.body_str()
    );
    // Same for a body cut short of its Content-Length.
    let resp = send_raw(
        &server,
        b"POST /v1/models/m/classify HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"tokens\"",
    );
    assert_eq!(resp.status, 400);
    server.shutdown();
}

#[test]
fn oversized_content_length_is_rejected_from_the_head_alone() {
    let server = start_http();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Claim a 10 GiB body — far past the 16 MiB cap — and send none of
    // it. The refusal must come immediately, from the head, without
    // the server buffering toward the claim.
    let t = Instant::now();
    stream
        .write_all(b"POST /v1/models/m/classify HTTP/1.1\r\nContent-Length: 10737418240\r\n\r\n")
        .unwrap();
    let resp = http::read_response(&mut stream).unwrap();
    assert_eq!(resp.status, 400);
    assert!(
        resp.body_str().contains("exceeds the body limit"),
        "{}",
        resp.body_str()
    );
    assert!(
        t.elapsed() < Duration::from_secs(1),
        "rejection must not wait on the declared body"
    );
    server.shutdown();
}

#[test]
fn oversized_header_section_is_capped() {
    let server = start_http();
    let mut raw = b"GET /healthz HTTP/1.1\r\n".to_vec();
    for i in 0..2048 {
        raw.extend_from_slice(format!("X-Filler-{i}: aaaaaaaaaaaaaaaa\r\n").as_bytes());
    }
    raw.extend_from_slice(b"\r\n");
    let resp = send_raw(&server, &raw);
    assert_eq!(resp.status, 400);
    assert!(resp.body_str().contains("header"), "{}", resp.body_str());
    server.shutdown();
}

#[test]
fn bad_utf8_bodies_and_garbage_request_lines_are_400s() {
    let server = start_http();
    // Invalid UTF-8 in the body of an otherwise well-formed request.
    let mut raw = b"POST /v1/models/m/classify HTTP/1.1\r\nContent-Length: 4\r\n\r\n".to_vec();
    raw.extend_from_slice(&[0xff, 0xfe, 0x80, 0x81]);
    let resp = send_raw(&server, &raw);
    assert_eq!(resp.status, 400);
    assert!(resp.body_str().contains("UTF-8"), "{}", resp.body_str());

    for raw in [
        &b"TOTAL GARBAGE\r\n\r\n"[..],
        b"POST /v1/models/m/classify HTTP/9.9\r\n\r\n",
        b"POST /v1/models/m/classify HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
        b"POST /v1/models/m/classify HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
    ] {
        assert_eq!(send_raw(&server, raw).status, 400);
    }
    server.shutdown();
}

#[test]
fn hostile_json_is_a_400_not_a_stack_overflow() {
    let server = start_http();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    // Nesting far past the codec cap.
    let hostile = "[".repeat(100_000);
    let resp = client
        .post("/v1/models/m/classify", &hostile)
        .expect("connection survives in the sense of getting a response");
    assert_eq!(resp.status, 400);
    assert!(resp.body_str().contains("nesting"), "{}", resp.body_str());

    // Structurally valid JSON, wrong shapes: still 400 with the field
    // named, on a fresh connection (parse failures close the socket).
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    for (body, needle) in [
        ("{", "json"),
        ("null", "tokens"),
        (r#"{"tokens": [[1], [1, 2]]}"#, "ragged"),
        (r#"{"batch": []}"#, "empty"),
        ("", "empty body"),
    ] {
        let resp = client.post("/v1/models/m/classify", body).unwrap();
        assert_eq!(resp.status, 400, "{body}");
        assert!(
            resp.body_str().to_lowercase().contains(needle),
            "{body} -> {}",
            resp.body_str()
        );
    }
    // The model is unharmed by any of it.
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    server.shutdown();
}

#[test]
fn slow_loris_headers_are_shed_at_the_request_deadline() {
    // Trickling one header byte per poll keeps `idle_timeout` reset
    // forever; the per-request deadline must shed the connection anyway.
    let server = {
        let cfg = ViTConfig::deit_tiny().reduced_for_training();
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let vit = VisionTransformer::new(&cfg, 8, 4, &mut store, &mut rng);
        let mut registry = ModelRegistry::new();
        registry
            .register(
                "m",
                Engine::builder(CompiledVit::from_parts(&vit, &store)).build(),
            )
            .unwrap();
        HttpServer::bind(
            "127.0.0.1:0",
            Server::start(registry, BatchConfig::default()),
            TransportConfig {
                idle_timeout: Duration::from_secs(10),
                request_deadline: Duration::from_millis(300),
                ..TransportConfig::default()
            },
        )
        .unwrap()
    };
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .write_all(b"POST /v1/models/m/classify HTTP/1.1\r\nX-Slow: ")
        .unwrap();
    let t = Instant::now();
    // Trickle until the server hangs up on us (write error) or answers.
    stream
        .set_read_timeout(Some(Duration::from_millis(25)))
        .unwrap();
    let resp = loop {
        assert!(
            t.elapsed() < Duration::from_secs(5),
            "server never shed the slow-loris connection"
        );
        if stream.write_all(b"a").is_err() {
            // Shed via reset before we managed to read the 408 — the
            // connection is gone either way, which is the point.
            server.shutdown();
            return;
        }
        match http::read_response(&mut stream) {
            Ok(resp) => break resp,
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    };
    assert_eq!(resp.status, 408, "{}", resp.body_str());
    assert!(
        t.elapsed() >= Duration::from_millis(250),
        "shed before the request deadline"
    );
    assert!(
        t.elapsed() < Duration::from_secs(5),
        "shed far too late: {:?}",
        t.elapsed()
    );
    // A well-behaved client on a fresh connection is unaffected.
    let mut ok = HttpClient::connect(server.local_addr()).unwrap();
    assert_eq!(ok.get("/healthz").unwrap().status, 200);
    server.shutdown();
}
