//! End-to-end loopback tests for the HTTP transport: bit-identical
//! predictions through the socket, wire-level deadlines, round-robin
//! fairness under a flooding model, hot artifact reload with in-flight
//! requests, graceful shutdown, and status-code mapping.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vitcod_autograd::ParamStore;
use vitcod_engine::{save_compiled_vit, CompiledVit, Engine, Precision};
use vitcod_model::{Sample, SparsityPlan, ViTConfig, VisionTransformer};
use vitcod_serve::{BatchConfig, ModelRegistry, Server};
use vitcod_tensor::{Initializer, Matrix};
use vitcod_transport::{api::tokens_json, http, HttpClient, HttpServer, Json, TransportConfig};

const IN_DIM: usize = 8;
const CLASSES: usize = 4;

fn tiny_model(seed: u64, sparse: bool) -> CompiledVit {
    let cfg = ViTConfig::deit_tiny().reduced_for_training();
    let mut store = ParamStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut vit = VisionTransformer::new(&cfg, IN_DIM, CLASSES, &mut store, &mut rng);
    if sparse {
        let n = cfg.tokens;
        let mut mask = Matrix::zeros(n, n);
        for q in 0..n {
            mask.set(q, q, 1.0);
            mask.set(q, 0, 1.0);
            mask.set(q, (q + 1) % n, 1.0);
        }
        let plan: SparsityPlan = (0..cfg.depth)
            .map(|_| (0..cfg.heads).map(|_| Some(mask.clone())).collect())
            .collect();
        vit.set_sparsity_plan(plan);
    }
    CompiledVit::from_parts(&vit, &store)
}

fn tokens_for(model: &CompiledVit, seed: u64) -> Matrix {
    Initializer::Normal { std: 1.0 }.sample(model.config().tokens, IN_DIM, seed)
}

fn classify_body(m: &Matrix, timeout_ms: Option<u64>) -> String {
    let mut fields = vec![("tokens".to_string(), tokens_json(m))];
    if let Some(t) = timeout_ms {
        fields.push(("timeout_ms".into(), Json::Number(t as f64)));
    }
    Json::Object(fields).to_string()
}

fn batch_body(items: &[Matrix]) -> String {
    Json::Object(vec![(
        "batch".into(),
        Json::Array(
            items
                .iter()
                .map(|m| Json::Object(vec![("tokens".into(), tokens_json(m))]))
                .collect(),
        ),
    )])
    .to_string()
}

fn logits_of(v: &Json) -> Vec<f32> {
    v.get("logits")
        .expect("logits")
        .as_array()
        .expect("array")
        .iter()
        .map(|x| x.as_f64().expect("number") as f32)
        .collect()
}

/// A scratch directory unique to this test, cleaned up on drop.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("vitcod-transport-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn start_http(registry: ModelRegistry, batch: BatchConfig) -> HttpServer {
    start_http_with_root(registry, batch, None)
}

/// Like [`start_http`], with wire reloads enabled under `root`.
fn start_http_with_root(
    registry: ModelRegistry,
    batch: BatchConfig,
    root: Option<std::path::PathBuf>,
) -> HttpServer {
    let server = Server::start(registry, batch);
    HttpServer::bind(
        "127.0.0.1:0",
        server,
        TransportConfig {
            idle_timeout: Duration::from_secs(5),
            artifact_root: root,
            ..TransportConfig::default()
        },
    )
    .expect("bind loopback")
}

/// The ISSUE's acceptance criterion: predictions served through the
/// socket — artifact round trip included — are bit-identical to direct
/// `Engine::infer_batch` on the same tokens, for both the single and
/// the batch wire shape.
#[test]
fn loopback_predictions_are_bit_identical_to_direct_inference() {
    let original = tiny_model(42, true);
    let dir = TempDir::new("bitident");
    std::fs::write(
        dir.0.join("deit-tiny.vitcod"),
        save_compiled_vit(&original, Precision::Fp32),
    )
    .unwrap();
    let registry = ModelRegistry::load_dir(&dir.0).unwrap();
    let http = start_http(registry, BatchConfig::default());
    let mut client = HttpClient::connect(http.local_addr()).unwrap();

    // Health first: the process is alive and knows its model.
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    let health = health.json().unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(
        health.get("models").unwrap().as_array().unwrap()[0].as_str(),
        Some("deit-tiny")
    );

    let samples: Vec<Matrix> = (0..6).map(|i| tokens_for(&original, 7000 + i)).collect();
    let engine = Engine::builder(original.clone()).build();
    let direct = engine.infer_batch(
        &samples
            .iter()
            .map(|t| Sample {
                tokens: t.clone(),
                label: 0,
            })
            .collect::<Vec<_>>(),
    );

    // Single-shape requests over one keep-alive connection.
    for (tokens, expect) in samples.iter().take(3).zip(&direct) {
        let resp = client
            .post(
                "/v1/models/deit-tiny/classify",
                &classify_body(tokens, None),
            )
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        let body = resp.json().unwrap();
        let logits = logits_of(&body);
        assert_eq!(logits.len(), expect.logits.len());
        for (a, b) in logits.iter().zip(&expect.logits) {
            assert_eq!(a.to_bits(), b.to_bits(), "socket must not perturb logits");
        }
        assert_eq!(
            body.get("class").unwrap().as_u64(),
            Some(expect.class as u64)
        );
    }

    // Batch shape: one HTTP round trip, three serving-layer tickets.
    let resp = client
        .post("/v1/models/deit-tiny/classify", &batch_body(&samples[3..]))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let results = resp.json().unwrap();
    let results = results.get("results").unwrap().as_array().unwrap().to_vec();
    assert_eq!(results.len(), 3);
    for (r, expect) in results.iter().zip(&direct[3..]) {
        for (a, b) in logits_of(r).iter().zip(&expect.logits) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    // Stats went through the wire too.
    let stats = client.get("/v1/stats").unwrap().json().unwrap();
    let models = stats.get("models").unwrap().as_array().unwrap();
    assert_eq!(models[0].get("model").unwrap().as_str(), Some("deit-tiny"));
    assert_eq!(models[0].get("requests").unwrap().as_u64(), Some(6));

    let final_stats = http.shutdown();
    assert_eq!(final_stats.total_requests(), 6);
}

/// A wire-level `timeout_ms` is a real deadline: on a server whose
/// batcher would otherwise hold the request for 10 s, the response is a
/// prompt 504 and the expiry shows up in the stats.
#[test]
fn wire_timeout_resolves_504_and_counts_in_stats() {
    let model = tiny_model(5, false);
    let mut registry = ModelRegistry::new();
    registry
        .register("m", Engine::builder(model.clone()).build())
        .unwrap();
    let http = start_http(
        registry,
        BatchConfig {
            max_batch_size: 64,
            max_wait: Duration::from_secs(10),
            queue_capacity: 64,
            workers: 1,
        },
    );
    let mut client = HttpClient::connect(http.local_addr()).unwrap();
    let t = Instant::now();
    let resp = client
        .post(
            "/v1/models/m/classify",
            &classify_body(&tokens_for(&model, 1), Some(40)),
        )
        .unwrap();
    assert_eq!(resp.status, 504, "{}", resp.body_str());
    assert!(
        t.elapsed() < Duration::from_secs(5),
        "timeout must not wait for the 10s flush deadline"
    );
    let stats = client.get("/v1/stats").unwrap().json().unwrap();
    let m = &stats.get("models").unwrap().as_array().unwrap()[0];
    assert_eq!(m.get("timed_out").unwrap().as_u64(), Some(1));
    assert_eq!(m.get("requests").unwrap().as_u64(), Some(0));
    drop(client);
    http.shutdown();
}

/// The fairness acceptance criterion: with one model flooding the
/// server, a light model's latency must not collapse — the batcher
/// hands out ready batches round-robin, so the victim waits behind at
/// most one of the flooder's batches, never its whole backlog.
#[test]
fn round_robin_fairness_under_mixed_traffic() {
    let model = tiny_model(21, false);
    let mut registry = ModelRegistry::new();
    registry
        .register("hot", Engine::builder(model.clone()).build())
        .unwrap();
    registry
        .register("cold", Engine::builder(model.clone()).build())
        .unwrap();
    let http = start_http(
        registry,
        BatchConfig {
            max_batch_size: 4,
            max_wait: Duration::from_millis(2),
            queue_capacity: 512,
            workers: 1,
        },
    );
    let addr = http.local_addr();

    const VICTIM_REQUESTS: usize = 40;
    let run_victim = || {
        let mut client = HttpClient::connect(addr).unwrap();
        let mut latencies: Vec<f64> = (0..VICTIM_REQUESTS as u64)
            .map(|i| {
                let body = classify_body(&tokens_for(&model, 100 + i), None);
                let t = Instant::now();
                let resp = client.post("/v1/models/cold/classify", &body).unwrap();
                assert_eq!(resp.status, 200, "{}", resp.body_str());
                t.elapsed().as_secs_f64()
            })
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
        latencies[((latencies.len() - 1) as f64 * 0.99).round() as usize]
    };

    // Baseline: the light model alone.
    let baseline_p99 = run_victim();

    // Flood: three connections hammering "hot" with 32-sample batches
    // (each explodes into eight ready batches) while the victim runs.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flooders: Vec<_> = (0..3)
        .map(|f| {
            let stop = std::sync::Arc::clone(&stop);
            let model = model.clone();
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                let items: Vec<Matrix> = (0..32)
                    .map(|i| tokens_for(&model, 9000 + f * 100 + i))
                    .collect();
                let body = batch_body(&items);
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let resp = client.post("/v1/models/hot/classify", &body).unwrap();
                    assert_eq!(resp.status, 200);
                }
            })
        })
        .collect();
    // Let the flood build a backlog before measuring.
    std::thread::sleep(Duration::from_millis(100));
    let flooded_p99 = run_victim();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for f in flooders {
        f.join().unwrap();
    }

    let stats = http.shutdown();
    let hot_p99 = stats.model("hot").expect("hot served").p99_latency_s;
    let cold_served = stats.model("cold").expect("cold served").requests;
    assert_eq!(cold_served as usize, 2 * VICTIM_REQUESTS);
    // The acceptance bound (with a floor to keep 1-CPU scheduler noise
    // from flapping a sub-millisecond baseline): the victim's p99 must
    // not degrade more than 3x under the flood.
    let bound = (3.0 * baseline_p99).max(0.060);
    println!(
        "fairness: victim p99 {:.1}ms alone -> {:.1}ms flooded (bound {:.1}ms, hot p99 {:.1}ms)",
        baseline_p99 * 1e3,
        flooded_p99 * 1e3,
        bound * 1e3,
        hot_p99 * 1e3
    );
    assert!(
        flooded_p99 <= bound,
        "victim p99 {flooded_p99:.4}s exceeds {bound:.4}s (baseline {baseline_p99:.4}s) — \
         round-robin draining failed"
    );
    // And round-robin shows up server-side: the flooder waits behind
    // its own backlog, the victim does not wait behind the flooder's.
    assert!(
        flooded_p99 < hot_p99,
        "victim p99 {flooded_p99:.4}s should undercut the flooding model's {hot_p99:.4}s"
    );
}

/// Hot reload: `POST /v1/models/m/reload` swaps the artifact while
/// requests already in the batch assembler still complete on the old
/// weights, and later requests see the new ones.
#[test]
fn reload_swaps_artifact_without_dropping_in_flight_requests() {
    let v1 = tiny_model(31, false);
    let v2 = tiny_model(32, false);
    let dir = TempDir::new("reload");
    std::fs::write(
        dir.0.join("m.vitcod"),
        save_compiled_vit(&v1, Precision::Fp32),
    )
    .unwrap();
    let v2_path = dir.0.join("m-v2.vitcod");
    std::fs::write(&v2_path, save_compiled_vit(&v2, Precision::Fp32)).unwrap();

    let registry = ModelRegistry::load_dir(&dir.0).unwrap();
    let http = start_http_with_root(
        registry,
        BatchConfig {
            // In-flight window: requests pend in the assembler for up
            // to 1s unless 64 arrive.
            max_batch_size: 64,
            max_wait: Duration::from_secs(1),
            queue_capacity: 64,
            workers: 1,
        },
        Some(dir.0.clone()),
    );
    let addr = http.local_addr();

    let in_flight: Vec<Matrix> = (0..4).map(|i| tokens_for(&v1, 500 + i)).collect();
    let direct_v1 = Engine::builder(v1.clone()).build().infer_batch(
        &in_flight
            .iter()
            .map(|t| Sample {
                tokens: t.clone(),
                label: 0,
            })
            .collect::<Vec<_>>(),
    );

    // Fire the in-flight batch on a raw connection and do NOT read the
    // response yet: its four tickets now pend against the v1 engine.
    let mut conn1 = TcpStream::connect(addr).unwrap();
    let body = batch_body(&in_flight);
    let head = format!(
        "POST /v1/models/m/classify HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    conn1.write_all(head.as_bytes()).unwrap();
    conn1.write_all(body.as_bytes()).unwrap();
    conn1.flush().unwrap();
    // Generous delivery margin, well inside the 1s flush deadline.
    std::thread::sleep(Duration::from_millis(150));

    // Swap the artifact mid-flight.
    let mut conn2 = HttpClient::connect(addr).unwrap();
    let resp = conn2
        .post(
            "/v1/models/m/reload",
            &Json::Object(vec![(
                "path".into(),
                Json::String(v2_path.display().to_string()),
            )])
            .to_string(),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let reload = resp.json().unwrap();
    assert_eq!(reload.get("replaced").unwrap().as_bool(), Some(true));
    assert_eq!(reload.get("precision").unwrap().as_str(), Some("fp32"));

    // A post-reload request resolves against the new weights…
    let probe = tokens_for(&v2, 900);
    let direct_v2 = Engine::builder(v2.clone()).build().infer_one(&probe);
    let resp = conn2
        .post("/v1/models/m/classify", &classify_body(&probe, None))
        .unwrap();
    assert_eq!(resp.status, 200);
    for (a, b) in logits_of(&resp.json().unwrap())
        .iter()
        .zip(&direct_v2.logits)
    {
        assert_eq!(a.to_bits(), b.to_bits(), "post-reload must serve v2");
    }

    // …while the in-flight batch still completes on the old ones.
    let resp = http::read_response(&mut conn1).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let results = resp.json().unwrap();
    let results = results.get("results").unwrap().as_array().unwrap().to_vec();
    assert_eq!(results.len(), 4);
    for (r, expect) in results.iter().zip(&direct_v1) {
        for (a, b) in logits_of(r).iter().zip(&expect.logits) {
            assert_eq!(a.to_bits(), b.to_bits(), "in-flight must finish on v1");
        }
    }
    http.shutdown();
}

/// Graceful shutdown: requests already on the wire complete; new
/// connections are refused afterwards; accepted work shows up in the
/// final statistics.
#[test]
fn shutdown_completes_wire_requests_then_refuses_connections() {
    let model = tiny_model(61, false);
    let mut registry = ModelRegistry::new();
    registry
        .register("m", Engine::builder(model.clone()).build())
        .unwrap();
    let http = start_http(
        registry,
        BatchConfig {
            max_batch_size: 8,
            max_wait: Duration::from_millis(20),
            queue_capacity: 64,
            workers: 2,
        },
    );
    let addr = http.local_addr();

    let workers: Vec<_> = (0..4u64)
        .map(|c| {
            let model = model.clone();
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                let resp = client
                    .post(
                        "/v1/models/m/classify",
                        &classify_body(&tokens_for(&model, 80 + c), None),
                    )
                    .unwrap();
                assert_eq!(resp.status, 200, "{}", resp.body_str());
            })
        })
        .collect();
    // Let the requests reach the wire, then shut down under them.
    std::thread::sleep(Duration::from_millis(30));
    let stats = http.shutdown();
    for w in workers {
        w.join().expect("an accepted wire request was stranded");
    }
    assert_eq!(stats.total_requests(), 4);
    // The listener is gone: a fresh connection cannot complete a
    // request (refused outright, or reset before a response).
    let refused = match HttpClient::connect(addr) {
        Err(_) => true,
        Ok(mut c) => c.get("/healthz").is_err(),
    };
    assert!(refused, "shutdown server must not accept new work");
}

/// Status-code mapping for well-formed requests that cannot be served.
#[test]
fn api_errors_map_to_clean_statuses() {
    let model = tiny_model(71, false);
    let mut registry = ModelRegistry::new();
    registry
        .register("m", Engine::builder(model.clone()).build())
        .unwrap();
    let root = TempDir::new("apierrors");
    let http = start_http_with_root(registry, BatchConfig::default(), Some(root.0.clone()));
    let mut client = HttpClient::connect(http.local_addr()).unwrap();

    // Unknown model → 404.
    let resp = client
        .post(
            "/v1/models/nope/classify",
            &classify_body(&tokens_for(&model, 1), None),
        )
        .unwrap();
    assert_eq!(resp.status, 404);
    // Wrong token shape → 400 naming both shapes.
    let resp = client
        .post(
            "/v1/models/m/classify",
            &classify_body(&Matrix::zeros(2, 2), None),
        )
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(
        resp.body_str().contains("does not match"),
        "{}",
        resp.body_str()
    );
    // Unknown endpoint → 404; wrong method → 405.
    assert_eq!(client.get("/v2/whatever").unwrap().status, 404);
    assert_eq!(client.post("/healthz", "{}").unwrap().status, 405);
    // Reload without a path → 400; reload of an unregistered id → 404;
    // a path escaping the artifact root → 403.
    let resp = client.post("/v1/models/m/reload", "{}").unwrap();
    assert_eq!(resp.status, 400);
    let resp = client.post("/v1/models/ghost/reload", "{}").unwrap();
    assert_eq!(resp.status, 404);
    let resp = client
        .post(
            "/v1/models/m/reload",
            r#"{"path": "/definitely/not/here.vitcod"}"#,
        )
        .unwrap();
    assert_eq!(resp.status, 403);
    http.shutdown();

    // With no artifact_root configured, wire reloads are off entirely.
    let mut registry = ModelRegistry::new();
    registry
        .register("m", Engine::builder(model.clone()).build())
        .unwrap();
    let http = start_http(registry, BatchConfig::default());
    let mut client = HttpClient::connect(http.local_addr()).unwrap();
    let resp = client
        .post("/v1/models/m/reload", r#"{"path": "x.vitcod"}"#)
        .unwrap();
    assert_eq!(resp.status, 403);
    assert!(resp.body_str().contains("disabled"), "{}", resp.body_str());
    http.shutdown();
}
