//! Loopback e2e for the observability surface: `/v1/metrics` is valid
//! Prometheus text exposition (parsed through `vitcod_obs::promtext` —
//! the same parser the monitor binary ships — and cross-checked
//! against `/v1/stats`, per the acceptance criterion), `/v1/trace`
//! drains typed events, `/v1/health?deep=1` runs per-model inference
//! probes, and `/healthz` + `/v1/stats` report uptime and per-model
//! backend/precision/stage breakdowns.

use std::time::Duration;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vitcod_autograd::ParamStore;
use vitcod_engine::{CompiledVit, Engine, Precision};
use vitcod_model::{ViTConfig, VisionTransformer};
use vitcod_obs::promtext::{check_histogram, Exposition};
use vitcod_serve::{BatchConfig, ModelRegistry, Server, TailConfig, TracingConfig};
use vitcod_tensor::Initializer;
use vitcod_transport::{
    api::tokens_json, HttpClient, HttpServer, Json, TransportConfig, TRACE_ID_HEADER,
};

const IN_DIM: usize = 8;
const CLASSES: usize = 4;

fn tiny_model(seed: u64) -> CompiledVit {
    let cfg = ViTConfig::deit_tiny().reduced_for_training();
    let mut store = ParamStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let vit = VisionTransformer::new(&cfg, IN_DIM, CLASSES, &mut store, &mut rng);
    CompiledVit::from_parts(&vit, &store)
}

fn classify_body(model: &CompiledVit, seed: u64) -> String {
    let tokens = Initializer::Normal { std: 1.0 }.sample(model.config().tokens, IN_DIM, seed);
    Json::Object(vec![("tokens".into(), tokens_json(&tokens))]).to_string()
}

/// Parses an exposition body through the shared `vitcod-obs` parser,
/// panicking (test context) on malformed input.
fn parse_prom(text: &str) -> Exposition {
    Exposition::parse(text).expect("valid text exposition")
}

/// The single sample of `name` matching the label pairs.
fn prom_one(prom: &Exposition, name: &str, want: &[(&str, &str)]) -> f64 {
    prom.one(name, want)
        .unwrap_or_else(|e| panic!("{name}{want:?}: {e}"))
}

/// Validates one histogram entry, returning its `_count`.
fn prom_histogram(prom: &Exposition, name: &str, labels: &[(&str, &str)]) -> f64 {
    check_histogram(prom, name, labels).unwrap_or_else(|e| panic!("{name}{labels:?}: {e}"))
}

#[test]
fn metrics_exposition_parses_and_matches_stats() {
    let model = tiny_model(11);
    let mut registry = ModelRegistry::new();
    registry
        .register("tiny-fp32", Engine::builder(model.clone()).build())
        .unwrap();
    registry
        .register(
            "tiny-int8",
            Engine::builder(model.clone())
                .precision(Precision::Int8)
                .build(),
        )
        .unwrap();
    let server = Server::start(
        registry,
        BatchConfig {
            max_batch_size: 4,
            max_wait: Duration::from_millis(2),
            queue_capacity: 64,
            workers: 1,
        },
    );
    let http = HttpServer::bind(
        "127.0.0.1:0",
        server,
        TransportConfig {
            idle_timeout: Duration::from_secs(5),
            ..TransportConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = HttpClient::connect(http.local_addr()).unwrap();

    const FP32_REQS: u64 = 6;
    const INT8_REQS: u64 = 3;
    for i in 0..FP32_REQS {
        let resp = client
            .post("/v1/models/tiny-fp32/classify", &classify_body(&model, i))
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
    }
    for i in 0..INT8_REQS {
        let resp = client
            .post(
                "/v1/models/tiny-int8/classify",
                &classify_body(&model, 100 + i),
            )
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
    }

    let resp = client.get("/v1/metrics").unwrap();
    assert_eq!(resp.status, 200);
    let content_type = resp
        .headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-type"))
        .map(|(_, v)| v.clone())
        .expect("metrics must carry a Content-Type");
    assert!(
        content_type.starts_with("text/plain") && content_type.contains("version=0.0.4"),
        "exposition content type, got {content_type}"
    );
    let text = resp.body_str();
    let prom = parse_prom(&text);

    // Request counters match what we actually sent, per model.
    assert!(
        (prom_one(&prom, "vitcod_requests_total", &[("model", "tiny-fp32")]) - FP32_REQS as f64)
            .abs()
            < 0.5
    );
    assert!(
        (prom_one(&prom, "vitcod_requests_total", &[("model", "tiny-int8")]) - INT8_REQS as f64)
            .abs()
            < 0.5
    );
    assert_eq!(
        prom.types.get("vitcod_requests_total").map(String::as_str),
        Some("counter")
    );
    assert!(prom_one(&prom, "vitcod_uptime_seconds", &[]) > 0.0);
    assert!(prom_one(&prom, "vitcod_queue_depth", &[]) >= 0.0);

    // Backend/precision surface as model_info labels.
    let info = prom.with("vitcod_model_info", &[("model", "tiny-int8")]);
    assert_eq!(info.len(), 1);
    assert_eq!(
        info[0].labels.get("precision").map(String::as_str),
        Some("int8")
    );
    assert!(info[0].labels.contains_key("backend"));

    // End-to-end latency histogram: cumulative, +Inf == count == reqs.
    let count = prom_histogram(
        &prom,
        "vitcod_request_latency_seconds",
        &[("model", "tiny-fp32")],
    );
    assert!((count - FP32_REQS as f64).abs() < 0.5);

    // Per-stage histograms exist for every stage of every model — the
    // serialize stage included, since responses went over the wire.
    for model_id in ["tiny-fp32", "tiny-int8"] {
        for stage in ["queue_wait", "batch_assembly", "compute", "serialize"] {
            let count = prom_histogram(
                &prom,
                "vitcod_stage_latency_seconds",
                &[("model", model_id), ("stage", stage)],
            );
            assert!(count > 0.0, "{model_id}/{stage} must have observations");
        }
    }
    prom_histogram(&prom, "vitcod_batch_fill", &[("model", "tiny-fp32")]);
    prom_histogram(&prom, "vitcod_batch_fill", &[("model", "tiny-int8")]);

    // The exposition agrees with the JSON stats surface.
    let stats = client.get("/v1/stats").unwrap().json().unwrap();
    let models = stats.get("models").unwrap().as_array().unwrap().to_vec();
    for m in &models {
        let id = m.get("model").unwrap().as_str().unwrap().to_string();
        let json_reqs = m.get("requests").unwrap().as_u64().unwrap() as f64;
        assert!(
            (prom_one(&prom, "vitcod_requests_total", &[("model", &id)]) - json_reqs).abs() < 0.5,
            "{id}: /v1/metrics and /v1/stats disagree on requests"
        );
    }
    http.shutdown();
}

#[test]
fn stats_report_backend_precision_stages_and_uptime() {
    let model = tiny_model(12);
    let mut registry = ModelRegistry::new();
    registry
        .register(
            "m",
            Engine::builder(model.clone())
                .precision(Precision::Int8)
                .build(),
        )
        .unwrap();
    let http = HttpServer::bind(
        "127.0.0.1:0",
        Server::start(registry, BatchConfig::default()),
        TransportConfig {
            idle_timeout: Duration::from_secs(5),
            ..TransportConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = HttpClient::connect(http.local_addr()).unwrap();
    let resp = client
        .post("/v1/models/m/classify", &classify_body(&model, 7))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());

    let health = client.get("/healthz").unwrap().json().unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert!(health.get("uptime_s").unwrap().as_f64().unwrap() > 0.0);

    let stats = client.get("/v1/stats").unwrap().json().unwrap();
    assert!(stats.get("uptime_s").unwrap().as_f64().unwrap() > 0.0);
    let m = stats.get("models").unwrap().as_array().unwrap()[0].clone();
    assert_eq!(m.get("precision").unwrap().as_str(), Some("int8"));
    assert!(m.get("backend").unwrap().as_str().is_some());
    assert!(m.get("p999_latency_s").unwrap().as_f64().unwrap() > 0.0);
    assert_eq!(
        m.get("latency_samples_truncated").unwrap().as_bool(),
        Some(false)
    );
    let stages = m.get("stages").unwrap();
    for stage in ["queue_wait", "batch_assembly", "compute", "serialize"] {
        let s = stages
            .get(stage)
            .unwrap_or_else(|| panic!("stats missing stage {stage}"));
        assert_eq!(s.get("count").unwrap().as_u64(), Some(1), "{stage}");
        assert!(s.get("p99_s").unwrap().as_f64().is_some(), "{stage}");
    }
    http.shutdown();
}

#[test]
fn trace_endpoint_drains_typed_events() {
    let model = tiny_model(13);
    let mut registry = ModelRegistry::new();
    registry
        .register("m", Engine::builder(model.clone()).build())
        .unwrap();
    let http = HttpServer::bind(
        "127.0.0.1:0",
        Server::start(registry, BatchConfig::default()),
        TransportConfig {
            idle_timeout: Duration::from_secs(5),
            ..TransportConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = HttpClient::connect(http.local_addr()).unwrap();
    for i in 0..3 {
        let resp = client
            .post("/v1/models/m/classify", &classify_body(&model, 20 + i))
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
    }

    let trace = client.get("/v1/trace").unwrap().json().unwrap();
    assert_eq!(trace.get("dropped").unwrap().as_u64(), Some(0));
    let events = trace.get("events").unwrap().as_array().unwrap().to_vec();
    assert!(!events.is_empty());
    let mut kinds = Vec::new();
    let mut last_seq = 0u64;
    for (i, e) in events.iter().enumerate() {
        let seq = e.get("seq").unwrap().as_u64().unwrap();
        if i > 0 {
            assert!(seq > last_seq, "trace must drain in sequence order");
        }
        last_seq = seq;
        assert!(e.get("at_s").unwrap().as_f64().unwrap() >= 0.0);
        kinds.push(e.get("kind").unwrap().as_str().unwrap().to_string());
        if e.get("model").unwrap().as_str().is_some() {
            assert_eq!(e.get("model").unwrap().as_str(), Some("m"));
        }
    }
    assert!(kinds.iter().any(|k| k == "enqueue"), "kinds: {kinds:?}");
    assert!(kinds.iter().any(|k| k == "dispatch"), "kinds: {kinds:?}");

    // The drain is destructive: a second read starts empty (modulo any
    // events the server emitted between the two reads).
    let again = client.get("/v1/trace").unwrap().json().unwrap();
    let again = again.get("events").unwrap().as_array().unwrap().to_vec();
    for e in &again {
        assert!(
            e.get("seq").unwrap().as_u64().unwrap() > last_seq,
            "drained events must not reappear"
        );
    }
    http.shutdown();
}

/// Walks a span tree in its JSON shape.
fn span_name(span: &Json) -> String {
    span.get("name").unwrap().as_str().unwrap().to_string()
}

fn span_duration(span: &Json) -> f64 {
    span.get("duration_s").unwrap().as_f64().unwrap()
}

fn span_children(span: &Json) -> Vec<Json> {
    span.get("children").unwrap().as_array().unwrap().to_vec()
}

/// The tentpole acceptance path, end to end over loopback: a request
/// carrying `x-vitcod-trace-id` is force-sampled, its span tree is
/// fetchable from `/v1/traces` (non-destructively via `?peek=1` first),
/// the tree partitions correctly, and its compute subtree names every
/// per-layer op. The per-op histograms and the achieved-GFLOP/s gauge
/// surface in `/v1/metrics`.
#[test]
fn trace_id_header_yields_partitioned_span_tree_and_op_metrics() {
    let model = tiny_model(21);
    let depth = model.config().depth;
    let mut registry = ModelRegistry::new();
    registry
        .register("m", Engine::builder(model.clone()).build())
        .unwrap();
    // sample_rate 0: only the header can force a request into the ring.
    let server = Server::start_with_tracing(
        registry,
        BatchConfig::default(),
        TracingConfig {
            sample_rate: 0.0,
            slow_threshold: None,
            tail: None,
        },
    );
    let http = HttpServer::bind(
        "127.0.0.1:0",
        server,
        TransportConfig {
            idle_timeout: Duration::from_secs(5),
            ..TransportConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = HttpClient::connect(http.local_addr()).unwrap();

    // One unsampled request (must NOT land in the ring)…
    let resp = client
        .post("/v1/models/m/classify", &classify_body(&model, 30))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    // …and one force-sampled request with a caller-chosen trace id.
    let resp = client
        .post_with_header(
            "/v1/models/m/classify",
            &classify_body(&model, 31),
            (TRACE_ID_HEADER, "forensics-1"),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());

    // `?peek=1` is non-destructive: the trace is still there afterwards.
    let peeked = client.get("/v1/traces?peek=1").unwrap().json().unwrap();
    let peeked = peeked.get("traces").unwrap().as_array().unwrap().to_vec();
    assert_eq!(peeked.len(), 1, "exactly the header-forced request");

    let drained = client.get("/v1/traces").unwrap().json().unwrap();
    assert_eq!(drained.get("dropped").unwrap().as_u64(), Some(0));
    let traces = drained.get("traces").unwrap().as_array().unwrap().to_vec();
    assert_eq!(traces.len(), 1);
    let t = &traces[0];
    assert_eq!(t.get("trace_id").unwrap().as_str(), Some("forensics-1"));
    assert_eq!(t.get("model").unwrap().as_str(), Some("m"));
    assert_eq!(t.get("sampled").unwrap().as_bool(), Some(true));
    let total_s = t.get("total_s").unwrap().as_f64().unwrap();
    assert!(total_s > 0.0);

    // Root partition: request → parse, queue, batch_assembly, compute,
    // serialize; children never sum past the parent (gaps are real
    // waiting, not accounting error).
    let root = t.get("root").unwrap().clone();
    assert_eq!(span_name(&root), "request");
    assert!((span_duration(&root) - total_s).abs() < 1e-9);
    let stages = span_children(&root);
    let stage_names: Vec<String> = stages.iter().map(span_name).collect();
    assert_eq!(
        stage_names,
        ["parse", "queue", "batch_assembly", "compute", "serialize"]
    );
    let stage_sum: f64 = stages.iter().map(span_duration).sum();
    assert!(
        stage_sum <= span_duration(&root) + 1e-9,
        "stage sum {stage_sum} exceeds request {}",
        span_duration(&root)
    );

    // Compute partition is exact: per-layer spans plus an `other` leaf
    // account for every second, and each layer names every op.
    let compute = stages[3].clone();
    let layers = span_children(&compute);
    assert_eq!(layers.len(), depth + 1, "depth layers + other");
    let layer_sum: f64 = layers.iter().map(span_duration).sum();
    assert!(
        (layer_sum - span_duration(&compute)).abs() < 1e-9,
        "compute children must partition compute exactly"
    );
    for (i, layer) in layers.iter().take(depth).enumerate() {
        assert_eq!(span_name(layer), format!("layer{i}"));
        let ops = span_children(layer);
        let op_names: Vec<String> = ops.iter().map(span_name).collect();
        assert_eq!(op_names, vitcod_engine::OP_NAMES, "layer{i} ops");
        let op_sum: f64 = ops.iter().map(span_duration).sum();
        assert!((op_sum - span_duration(layer)).abs() < 1e-9);
    }
    assert_eq!(span_name(&layers[depth]), "other");

    // Drain is destructive: the ring is empty now.
    let again = client.get("/v1/traces").unwrap().json().unwrap();
    assert!(again.get("traces").unwrap().as_array().unwrap().is_empty());

    // The per-op histograms parse out of /v1/metrics with bounded
    // cardinality: one series per op name, no per-layer labels.
    let resp = client.get("/v1/metrics").unwrap();
    assert_eq!(resp.status, 200);
    let prom = parse_prom(&resp.body_str());
    for op in vitcod_engine::OP_NAMES {
        let count = prom_histogram(
            &prom,
            "vitcod_engine_op_seconds",
            &[("model", "m"), ("op", op)],
        );
        assert!(count >= 1.0, "op {op} must have observations");
    }
    let op_series = prom.with("vitcod_engine_op_seconds_count", &[("model", "m")]);
    assert_eq!(op_series.len(), vitcod_engine::OP_NAMES.len());
    assert!(prom_one(&prom, "vitcod_engine_achieved_gops", &[("model", "m")]) > 0.0);
    http.shutdown();
}

/// Slow-request forensics without sampling: with a tiny configured
/// threshold every request is "slow", so its span tree is retained in
/// the slowlog ring even though head sampling never selected it.
#[test]
fn slowlog_retains_unsampled_requests_past_threshold() {
    let model = tiny_model(22);
    let mut registry = ModelRegistry::new();
    registry
        .register("m", Engine::builder(model.clone()).build())
        .unwrap();
    let server = Server::start_with_tracing(
        registry,
        BatchConfig::default(),
        TracingConfig {
            sample_rate: 0.0,
            slow_threshold: Some(Duration::from_nanos(1)),
            tail: None,
        },
    );
    let http = HttpServer::bind(
        "127.0.0.1:0",
        server,
        TransportConfig {
            idle_timeout: Duration::from_secs(5),
            ..TransportConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = HttpClient::connect(http.local_addr()).unwrap();
    let resp = client
        .post("/v1/models/m/classify", &classify_body(&model, 40))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());

    // Nothing was head-sampled, so /v1/traces stays empty…
    let traces = client.get("/v1/traces?peek=1").unwrap().json().unwrap();
    assert!(traces.get("traces").unwrap().as_array().unwrap().is_empty());
    // …but the slowlog kept the whole tree. Peek first, then drain.
    let peeked = client.get("/v1/slowlog?peek=1").unwrap().json().unwrap();
    assert_eq!(
        peeked.get("traces").unwrap().as_array().unwrap().len(),
        1,
        "peek must not drain"
    );
    let slow = client.get("/v1/slowlog").unwrap().json().unwrap();
    let entries = slow.get("traces").unwrap().as_array().unwrap().to_vec();
    assert_eq!(entries.len(), 1);
    let e = &entries[0];
    assert_eq!(e.get("sampled").unwrap().as_bool(), Some(false));
    let root = e.get("root").unwrap().clone();
    assert_eq!(span_name(&root), "request");
    // Unsampled → the compute span is an unexploded leaf.
    let stages = span_children(&root);
    assert_eq!(span_name(&stages[3]), "compute");
    assert!(span_children(&stages[3]).is_empty());
    assert!(span_duration(&stages[3]) > 0.0);
    let again = client.get("/v1/slowlog").unwrap().json().unwrap();
    assert!(again.get("traces").unwrap().as_array().unwrap().is_empty());
    http.shutdown();
}

/// `/v1/metrics` scrapes racing a hot model reload: every scrape must
/// be a complete, parseable exposition — never a torn snapshot — while
/// the artifact behind the model id is swapped under load.
#[test]
fn metrics_scrape_races_hot_model_reload() {
    let model = tiny_model(23);
    let dir = {
        let dir = std::env::temp_dir().join(format!(
            "vitcod-observability-reload-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    };
    std::fs::write(
        dir.join("m.vitcod"),
        vitcod_engine::save_compiled_vit(&model, Precision::Fp32),
    )
    .unwrap();
    std::fs::write(
        dir.join("m-int8.vitcod"),
        vitcod_engine::save_compiled_vit(&tiny_model(24), Precision::Int8),
    )
    .unwrap();
    let registry = ModelRegistry::load_dir(&dir).unwrap();
    let server = Server::start_with_tracing(
        registry,
        BatchConfig::default(),
        TracingConfig {
            sample_rate: 1.0,
            slow_threshold: None,
            tail: None,
        },
    );
    let http = HttpServer::bind(
        "127.0.0.1:0",
        server,
        TransportConfig {
            idle_timeout: Duration::from_secs(5),
            artifact_root: Some(dir.clone()),
            ..TransportConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = http.local_addr();

    let reload_dir = dir.clone();
    let reloader = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr).expect("reloader connect");
        for i in 0..10u32 {
            let artifact = if i % 2 == 0 {
                "m-int8.vitcod"
            } else {
                "m.vitcod"
            };
            let body = Json::Object(vec![(
                "path".into(),
                Json::String(reload_dir.join(artifact).display().to_string()),
            )])
            .to_string();
            let resp = client.post("/v1/models/m/reload", &body).expect("reload");
            assert_eq!(resp.status, 200, "{}", resp.body_str());
        }
    });
    let mut client = HttpClient::connect(addr).unwrap();
    for i in 0..20u32 {
        if i % 4 == 0 {
            // Keep compute stats flowing while artifacts swap; both
            // artifacts share the tiny config, so tokens stay valid.
            let resp = client
                .post(
                    "/v1/models/m/classify",
                    &classify_body(&model, 50 + i as u64),
                )
                .unwrap();
            assert_eq!(resp.status, 200, "{}", resp.body_str());
        }
        let resp = client.get("/v1/metrics").unwrap();
        assert_eq!(resp.status, 200);
        let prom = parse_prom(&resp.body_str());
        // The model_info series must always be whole (exactly one per
        // registered id), whichever precision is live at scrape time.
        assert_eq!(prom.with("vitcod_model_info", &[("model", "m")]).len(), 1);
        assert!(prom_one(&prom, "vitcod_uptime_seconds", &[]) > 0.0);
    }
    reloader.join().expect("reloader thread");
    http.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tail-based retention over the wire: with head sampling off and a
/// tiny slow threshold, an ordinary request (no trace header) is kept
/// at completion time — `/v1/traces` carries it labelled
/// `kept: "slow"` with `sampled: false`, and the scrape-only slow
/// counter advances in `/v1/metrics`.
#[test]
fn tail_retention_keeps_slow_requests_over_the_wire() {
    let model = tiny_model(25);
    let mut registry = ModelRegistry::new();
    registry
        .register("m", Engine::builder(model.clone()).build())
        .unwrap();
    let server = Server::start_with_tracing(
        registry,
        BatchConfig::default(),
        TracingConfig {
            sample_rate: 0.0,
            slow_threshold: Some(Duration::from_nanos(1)),
            tail: Some(TailConfig {
                reservoir: 0, // only slow/errored keeps — deterministic
                seed: 7,
                pending_capacity: 64,
            }),
        },
    );
    let http = HttpServer::bind(
        "127.0.0.1:0",
        server,
        TransportConfig {
            idle_timeout: Duration::from_secs(5),
            ..TransportConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = HttpClient::connect(http.local_addr()).unwrap();
    let resp = client
        .post("/v1/models/m/classify", &classify_body(&model, 60))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());

    let drained = client.get("/v1/traces").unwrap().json().unwrap();
    let traces = drained.get("traces").unwrap().as_array().unwrap().to_vec();
    assert_eq!(traces.len(), 1, "tail keep must land in /v1/traces");
    let t = &traces[0];
    assert_eq!(
        t.get("sampled").unwrap().as_bool(),
        Some(false),
        "tail-kept, not head-sampled"
    );
    assert_eq!(t.get("kept").unwrap().as_str(), Some("slow"));
    let root = t.get("root").unwrap().clone();
    assert_eq!(span_name(&root), "request");

    // The slowlog kept it too, and the scrape-only counter advanced.
    let slow = client.get("/v1/slowlog?peek=1").unwrap().json().unwrap();
    assert_eq!(slow.get("traces").unwrap().as_array().unwrap().len(), 1);
    let prom = parse_prom(&client.get("/v1/metrics").unwrap().body_str());
    assert!(
        (prom_one(&prom, "vitcod_slow_requests_total", &[("model", "m")]) - 1.0).abs() < 0.5,
        "slow-rate SLOs must be computable by scrape alone"
    );
    http.shutdown();
}

/// `GET /v1/health?deep=1` runs a one-sample inference probe per
/// registered model through the real queue → batcher → engine path;
/// the shallow form stays cheap and probe-free.
#[test]
fn deep_health_probes_every_model() {
    let model = tiny_model(26);
    let mut registry = ModelRegistry::new();
    registry
        .register("m-a", Engine::builder(model.clone()).build())
        .unwrap();
    registry
        .register(
            "m-b",
            Engine::builder(model.clone())
                .precision(Precision::Int8)
                .build(),
        )
        .unwrap();
    let http = HttpServer::bind(
        "127.0.0.1:0",
        Server::start(registry, BatchConfig::default()),
        TransportConfig {
            idle_timeout: Duration::from_secs(5),
            ..TransportConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = HttpClient::connect(http.local_addr()).unwrap();

    // Shallow: no probes key, no inference served.
    let shallow = client.get("/v1/health").unwrap().json().unwrap();
    assert_eq!(shallow.get("status").unwrap().as_str(), Some("ok"));
    assert!(shallow.get("probes").is_none());

    let resp = client.get("/v1/health?deep=1").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let deep = resp.json().unwrap();
    assert_eq!(deep.get("status").unwrap().as_str(), Some("ok"));
    let probes = deep.get("probes").unwrap().as_array().unwrap().to_vec();
    assert_eq!(probes.len(), 2, "one probe per registered model");
    for p in &probes {
        assert_eq!(p.get("ok").unwrap().as_bool(), Some(true));
        assert!(p.get("latency_s").unwrap().as_f64().unwrap() > 0.0);
        assert!(p.get("model").unwrap().as_str().is_some());
    }

    // The probes went through the real serving path: requests counted.
    let stats = client.get("/v1/stats").unwrap().json().unwrap();
    let models = stats.get("models").unwrap().as_array().unwrap().to_vec();
    for m in &models {
        assert_eq!(
            m.get("requests").unwrap().as_u64(),
            Some(1),
            "each model served exactly its probe"
        );
    }
    http.shutdown();
}
