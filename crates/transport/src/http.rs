//! A hand-rolled HTTP/1.1 message layer: request parsing over a byte
//! buffer, response writing, and (for the bundled client) response
//! parsing.
//!
//! The parser is **incremental and pure**: [`parse_request`] looks at a
//! byte buffer and either returns a complete request plus the number of
//! bytes it consumed, asks for more bytes, or fails — the connection
//! loop owns the socket, timeouts and shutdown flag. Purity is what
//! makes the malformed-input suite a plain unit test.
//!
//! Allocation is bounded by [`Limits`]: header bytes are capped before
//! the terminator search gives up, and a hostile `Content-Length` is
//! rejected from the header alone — the body is never buffered, let
//! alone allocated, past [`Limits::max_body_bytes`].

use std::fmt;
use std::io::{self, Read, Write};

/// Hard caps the parser enforces; see the [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Largest request head (request line + headers + terminator).
    pub max_header_bytes: usize,
    /// Largest accepted `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_header_bytes: 8 * 1024,
            max_body_bytes: 16 * 1024 * 1024,
        }
    }
}

/// Why a request failed to parse. Every variant maps to a clean `400`
/// on the wire ([`HttpParseError::status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpParseError {
    /// The request head exceeded [`Limits::max_header_bytes`] without
    /// terminating.
    HeaderTooLarge,
    /// `Content-Length` exceeded [`Limits::max_body_bytes`].
    BodyTooLarge(u64),
    /// The request line is not `METHOD SP TARGET SP HTTP/1.x`.
    BadRequestLine,
    /// A header line is malformed (or the head is not valid UTF-8).
    BadHeader,
    /// `Content-Length` is present but not a number.
    BadContentLength,
    /// `Transfer-Encoding` bodies are not supported.
    UnsupportedTransferEncoding,
    /// The peer closed the connection mid-request.
    Truncated,
}

impl HttpParseError {
    /// The status code the error reports as. The malformed-input
    /// contract is "clean 400s": every parse failure is a client error,
    /// never a connection-killing panic or a 500.
    pub fn status(&self) -> u16 {
        400
    }
}

impl fmt::Display for HttpParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpParseError::HeaderTooLarge => write!(f, "request header section too large"),
            HttpParseError::BodyTooLarge(n) => {
                write!(f, "declared content-length {n} exceeds the body limit")
            }
            HttpParseError::BadRequestLine => write!(f, "malformed request line"),
            HttpParseError::BadHeader => write!(f, "malformed header"),
            HttpParseError::BadContentLength => write!(f, "content-length is not a number"),
            HttpParseError::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding is not supported; send content-length")
            }
            HttpParseError::Truncated => write!(f, "connection closed mid-request"),
        }
    }
}

impl std::error::Error for HttpParseError {}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target with any query string stripped (`/v1/stats`).
    pub path: String,
    /// The query string, without the leading `?` (empty when absent) —
    /// the ring endpoints read their `peek=1` flag from it.
    pub query: String,
    /// Header name/value pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl HttpRequest {
    /// First header value under `name` (lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Attempts to parse one request from the front of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` when a complete request is
/// buffered, `Ok(None)` when more bytes are needed (and no limit is
/// exceeded yet).
///
/// # Errors
///
/// [`HttpParseError`] on malformed input or exceeded [`Limits`]; an
/// oversized `Content-Length` fails here, from the head alone, before
/// any body byte is buffered.
pub fn parse_request(
    buf: &[u8],
    limits: &Limits,
) -> Result<Option<(HttpRequest, usize)>, HttpParseError> {
    let head_end = match find_terminator(buf, limits.max_header_bytes) {
        Terminator::At(end) => end,
        Terminator::NotYet => return Ok(None),
        Terminator::PastLimit => return Err(HttpParseError::HeaderTooLarge),
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| HttpParseError::BadHeader)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(HttpParseError::BadRequestLine)?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let target = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if method.is_empty()
        || target.is_empty()
        || parts.next().is_some()
        || !(version == "HTTP/1.1" || version == "HTTP/1.0")
        || !method.bytes().all(|b| b.is_ascii_alphabetic())
    {
        return Err(HttpParseError::BadRequestLine);
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(HttpParseError::BadHeader)?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpParseError::BadHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    if find("transfer-encoding").is_some() {
        return Err(HttpParseError::UnsupportedTransferEncoding);
    }
    // Conflicting duplicate Content-Length headers are the classic
    // request-smuggling desync vector (RFC 9112 §6.3): reject them
    // outright rather than silently picking one.
    let mut lengths = headers
        .iter()
        .filter(|(k, _)| k == "content-length")
        .map(|(_, v)| v.as_str());
    let content_length: u64 = match lengths.next() {
        Some(v) => {
            if lengths.any(|other| other != v) {
                return Err(HttpParseError::BadContentLength);
            }
            v.parse().map_err(|_| HttpParseError::BadContentLength)?
        }
        None => 0,
    };
    if content_length > limits.max_body_bytes as u64 {
        return Err(HttpParseError::BodyTooLarge(content_length));
    }
    let content_length = content_length as usize;

    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None);
    }
    let keep_alive = match find("connection").map(str::to_ascii_lowercase) {
        Some(c) if c == "close" => false,
        Some(c) if c == "keep-alive" => true,
        _ => version == "HTTP/1.1",
    };
    let request = HttpRequest {
        method,
        path,
        query,
        headers,
        body: buf[body_start..body_start + content_length].to_vec(),
        keep_alive,
    };
    Ok(Some((request, body_start + content_length)))
}

enum Terminator {
    At(usize),
    NotYet,
    PastLimit,
}

/// Position of `\r\n\r\n` in `buf`, giving up past `limit` bytes.
fn find_terminator(buf: &[u8], limit: usize) -> Terminator {
    let window = &buf[..buf.len().min(limit + 4)];
    match window.windows(4).position(|w| w == b"\r\n\r\n") {
        Some(p) if p <= limit => Terminator::At(p),
        Some(_) => Terminator::PastLimit,
        None if buf.len() > limit => Terminator::PastLimit,
        None => Terminator::NotYet,
    }
}

/// The canonical reason phrase for the status codes this wire uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one `application/json` response to `w`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_response(w: &mut impl Write, status: u16, body: &str, close: bool) -> io::Result<()> {
    write_response_with_type(w, status, "application/json", body, close)
}

/// Writes one response with an explicit `Content-Type` to `w` (the
/// `/v1/metrics` endpoint serves Prometheus text exposition, not JSON).
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_response_with_type(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
    close: bool,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if close { "close" } else { "keep-alive" },
    );
    w.write_all(head.as_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// One parsed response (the bundled client's half of the protocol).
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// The status code.
    pub status: u16,
    /// Header name/value pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The body as UTF-8 (lossy — diagnostics only).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Parses the body as JSON.
    ///
    /// # Errors
    ///
    /// Non-UTF-8 or malformed JSON bodies.
    pub fn json(&self) -> Result<crate::json::Json, crate::json::JsonError> {
        let text = std::str::from_utf8(&self.body).map_err(|_| crate::json::JsonError {
            offset: 0,
            message: "body is not valid UTF-8".into(),
        })?;
        crate::json::parse(text)
    }
}

/// Reads exactly one response off `r` (blocking).
///
/// # Errors
///
/// I/O errors, or `InvalidData` on a malformed response.
pub fn read_response(r: &mut impl Read) -> io::Result<HttpResponse> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break p;
        }
        let n = r.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed before response head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("non-utf8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header"))?;
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = r.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> Limits {
        Limits::default()
    }

    #[test]
    fn parses_a_post_with_body_and_reports_consumed_bytes() {
        let raw = b"POST /v1/models/m/classify?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcdEXTRA";
        let (req, used) = parse_request(raw, &limits()).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/models/m/classify");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
        assert_eq!(&raw[used..], b"EXTRA");
    }

    #[test]
    fn incomplete_requests_ask_for_more_bytes() {
        assert!(parse_request(b"GET /he", &limits()).unwrap().is_none());
        assert!(parse_request(b"GET /healthz HTTP/1.1\r\n", &limits())
            .unwrap()
            .is_none());
        // Complete head, body still in flight.
        assert!(parse_request(
            b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",
            &limits()
        )
        .unwrap()
        .is_none());
    }

    #[test]
    fn oversized_content_length_fails_from_the_head_alone() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n";
        assert!(matches!(
            parse_request(raw, &limits()),
            Err(HttpParseError::BodyTooLarge(99_999_999_999))
        ));
    }

    #[test]
    fn header_section_is_capped() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(vec![b'a'; limits().max_header_bytes + 16]);
        assert!(matches!(
            parse_request(&raw, &limits()),
            Err(HttpParseError::HeaderTooLarge)
        ));
    }

    #[test]
    fn malformed_heads_are_clean_400s() {
        for raw in [
            &b"NONSENSE\r\n\r\n"[..],
            b"GET  HTTP/1.1\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"G3T / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
            b"GET / HTTP/1.1\r\nBad Name: v\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 44\r\n\r\n",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET / HTTP/1.1\r\nX: \xff\xfe\r\n\r\n",
        ] {
            let err = parse_request(raw, &limits()).expect_err("must reject");
            assert_eq!(err.status(), 400, "{err}");
        }
    }

    #[test]
    fn identical_duplicate_content_lengths_collapse() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd";
        let (req, _) = parse_request(raw, &limits()).unwrap().unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        assert!(!parse_request(raw, &limits()).unwrap().unwrap().0.keep_alive);
        let raw = b"GET / HTTP/1.0\r\n\r\n";
        assert!(!parse_request(raw, &limits()).unwrap().unwrap().0.keep_alive);
        let raw = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        assert!(parse_request(raw, &limits()).unwrap().unwrap().0.keep_alive);
    }

    #[test]
    fn response_round_trips_through_reader() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "{\"ok\":true}", false).unwrap();
        let resp = read_response(&mut wire.as_slice()).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.json().unwrap().get("ok").unwrap().as_bool(),
            Some(true)
        );
    }
}
