//! Prometheus text exposition (the `GET /v1/metrics` body), rendered
//! from a [`ServerStats`] snapshot.
//!
//! Everything follows the text format version `0.0.4`: `# HELP` /
//! `# TYPE` preamble per family, label values escaped, histograms as
//! cumulative `_bucket{le="…"}` series closed by `le="+Inf"` plus
//! `_sum` / `_count`. The renderer is pure — it never touches a lock —
//! so the transport takes one stats snapshot and formats it without
//! holding anything up.
//!
//! Exposed families:
//!
//! | family | type | labels |
//! |--------|------|--------|
//! | `vitcod_uptime_seconds` | gauge | — |
//! | `vitcod_queue_depth` | gauge | — |
//! | `vitcod_trace_dropped_total` | counter | — |
//! | `vitcod_traces_dropped_total` | counter | — |
//! | `vitcod_slowlog_dropped_total` | counter | — |
//! | `vitcod_requests_total` | counter | `model` |
//! | `vitcod_timeouts_total` | counter | `model` |
//! | `vitcod_slow_requests_total` | counter | `model` |
//! | `vitcod_batches_total` | counter | `model` |
//! | `vitcod_model_info` | gauge | `model`, `backend`, `precision` |
//! | `vitcod_latency_samples_truncated` | gauge | `model` |
//! | `vitcod_batch_fill` | histogram | `model` |
//! | `vitcod_request_latency_seconds` | histogram | `model` |
//! | `vitcod_stage_latency_seconds` | histogram | `model`, `stage` |
//! | `vitcod_engine_op_seconds` | histogram | `model`, `op` |
//! | `vitcod_engine_achieved_gops` | gauge | `model` |
//!
//! **Cardinality policy**: `vitcod_engine_op_seconds` labels by op name
//! only — per-op seconds are summed over layers before they reach the
//! histogram, so the series count per model is bounded at the engine's
//! seven named ops regardless of model depth. Per-layer detail lives
//! exclusively in sampled span trees (`GET /v1/traces`), never in the
//! exposition.

use std::fmt::Write as _;

use vitcod_serve::{HistogramSnapshot, ServerStats};

/// The `Content-Type` Prometheus scrapers expect.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Escapes a label value (`\`, `"` and newlines, per the text format).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Formats a float the exposition way: integral values without a
/// fraction would also be fine, but a plain shortest round-trip is
/// always valid.
fn num(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".into()
    } else {
        format!("{v}")
    }
}

fn header(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders one histogram family entry (cumulative `_bucket` series plus
/// `_sum`/`_count`) under `name` with `labels` (pre-rendered, no
/// trailing comma; may be empty).
fn histogram(out: &mut String, name: &str, labels: &str, h: &HistogramSnapshot) {
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cum = 0u64;
    for (bound, &count) in HistogramSnapshot::upper_bounds().iter().zip(&h.buckets) {
        cum += count;
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cum}",
            num(*bound)
        );
    }
    // The overflow slot (anything the finite bounds missed) closes the
    // series at +Inf; by construction the cumulative count there equals
    // the observation count.
    let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}", h.count);
    if labels.is_empty() {
        let _ = writeln!(out, "{name}_sum {}", num(h.sum_s));
        let _ = writeln!(out, "{name}_count {}", h.count);
    } else {
        let _ = writeln!(out, "{name}_sum{{{labels}}} {}", num(h.sum_s));
        let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count);
    }
}

/// Renders a batch-fill histogram (integer fill counts, unit-width
/// buckets) as a cumulative series.
fn fill_histogram(out: &mut String, name: &str, labels: &str, fills: &[u64]) {
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cum = 0u64;
    let mut weighted = 0u64;
    for (k, &count) in fills.iter().enumerate() {
        cum += count;
        weighted += (k as u64 + 1) * count;
        let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cum}", k + 1);
    }
    let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cum}");
    let _ = writeln!(out, "{name}_sum{{{labels}}} {weighted}");
    let _ = writeln!(out, "{name}_count{{{labels}}} {cum}");
}

/// The three ring-eviction counters the snapshot does not carry.
#[derive(Debug, Clone, Copy, Default)]
pub struct RingDrops {
    /// Event-trace ring evictions (`/v1/trace`).
    pub trace: u64,
    /// Sampled span-tree ring evictions (`/v1/traces`).
    pub traces: u64,
    /// Slow-request ring evictions (`/v1/slowlog`).
    pub slowlog: u64,
}

/// Renders the full exposition body from a stats snapshot plus the
/// live values the snapshot does not carry (ingress queue depth and
/// the ring eviction counters).
pub fn render(stats: &ServerStats, queued: usize, drops: RingDrops) -> String {
    let mut out = String::with_capacity(4096);

    header(
        &mut out,
        "vitcod_uptime_seconds",
        "gauge",
        "Seconds since the serving process started.",
    );
    let _ = writeln!(out, "vitcod_uptime_seconds {}", num(stats.uptime_s));

    header(
        &mut out,
        "vitcod_queue_depth",
        "gauge",
        "Requests waiting in the bounded ingress queue.",
    );
    let _ = writeln!(out, "vitcod_queue_depth {queued}");

    header(
        &mut out,
        "vitcod_trace_dropped_total",
        "counter",
        "Trace events evicted from the ring before being drained.",
    );
    let _ = writeln!(out, "vitcod_trace_dropped_total {}", drops.trace);

    header(
        &mut out,
        "vitcod_traces_dropped_total",
        "counter",
        "Sampled span trees evicted from the traces ring before being drained.",
    );
    let _ = writeln!(out, "vitcod_traces_dropped_total {}", drops.traces);

    header(
        &mut out,
        "vitcod_slowlog_dropped_total",
        "counter",
        "Slow-request traces evicted from the slowlog ring before being drained.",
    );
    let _ = writeln!(out, "vitcod_slowlog_dropped_total {}", drops.slowlog);

    header(
        &mut out,
        "vitcod_requests_total",
        "counter",
        "Requests served (tickets resolved with a prediction).",
    );
    for m in &stats.models {
        let _ = writeln!(
            out,
            "vitcod_requests_total{{model=\"{}\"}} {}",
            escape_label(&m.model),
            m.requests
        );
    }

    header(
        &mut out,
        "vitcod_timeouts_total",
        "counter",
        "Requests expired past their deadline before reaching a batch slot.",
    );
    for m in &stats.models {
        let _ = writeln!(
            out,
            "vitcod_timeouts_total{{model=\"{}\"}} {}",
            escape_label(&m.model),
            m.timed_out
        );
    }

    header(
        &mut out,
        "vitcod_slow_requests_total",
        "counter",
        "Requests whose end-to-end latency exceeded their slow threshold (slowlog admissions).",
    );
    for m in &stats.models {
        let _ = writeln!(
            out,
            "vitcod_slow_requests_total{{model=\"{}\"}} {}",
            escape_label(&m.model),
            m.slow
        );
    }

    header(
        &mut out,
        "vitcod_batches_total",
        "counter",
        "Batches drained through the engine.",
    );
    for m in &stats.models {
        let _ = writeln!(
            out,
            "vitcod_batches_total{{model=\"{}\"}} {}",
            escape_label(&m.model),
            m.batches
        );
    }

    header(
        &mut out,
        "vitcod_model_info",
        "gauge",
        "Registered backend/precision per model (value is always 1).",
    );
    for m in &stats.models {
        let _ = writeln!(
            out,
            "vitcod_model_info{{model=\"{}\",backend=\"{}\",precision=\"{}\"}} 1",
            escape_label(&m.model),
            escape_label(m.backend.as_deref().unwrap_or("unknown")),
            escape_label(m.precision.as_deref().unwrap_or("unknown")),
        );
    }

    header(
        &mut out,
        "vitcod_latency_samples_truncated",
        "gauge",
        "1 when the exact-percentile sample ring has rolled over for this model.",
    );
    for m in &stats.models {
        let _ = writeln!(
            out,
            "vitcod_latency_samples_truncated{{model=\"{}\"}} {}",
            escape_label(&m.model),
            u8::from(m.latency_samples_truncated)
        );
    }

    header(
        &mut out,
        "vitcod_batch_fill",
        "histogram",
        "Requests per drained batch.",
    );
    for m in &stats.models {
        let labels = format!("model=\"{}\"", escape_label(&m.model));
        fill_histogram(&mut out, "vitcod_batch_fill", &labels, &m.batch_fill);
    }

    header(
        &mut out,
        "vitcod_request_latency_seconds",
        "histogram",
        "End-to-end request latency (enqueue to prediction ready).",
    );
    for m in &stats.models {
        let labels = format!("model=\"{}\"", escape_label(&m.model));
        histogram(
            &mut out,
            "vitcod_request_latency_seconds",
            &labels,
            &m.latency_histogram,
        );
    }

    header(
        &mut out,
        "vitcod_stage_latency_seconds",
        "histogram",
        "Per-stage request latency: queue_wait, batch_assembly, compute, serialize.",
    );
    for m in &stats.models {
        for (stage, h) in m.stages.iter() {
            let labels = format!("model=\"{}\",stage=\"{stage}\"", escape_label(&m.model));
            histogram(&mut out, "vitcod_stage_latency_seconds", &labels, h);
        }
    }

    header(
        &mut out,
        "vitcod_engine_op_seconds",
        "histogram",
        "Per-op engine compute seconds from profiled (head-sampled) forwards, summed over layers.",
    );
    for m in &stats.models {
        for (op, h) in &m.ops {
            let labels = format!("model=\"{}\",op=\"{op}\"", escape_label(&m.model));
            histogram(&mut out, "vitcod_engine_op_seconds", &labels, h);
        }
    }

    header(
        &mut out,
        "vitcod_engine_achieved_gops",
        "gauge",
        "Achieved arithmetic throughput in Gop/s (analytic ops per sample x served samples / engine busy seconds).",
    );
    for m in &stats.models {
        if let Some(gops) = m.achieved_gops {
            let _ = writeln!(
                out,
                "vitcod_engine_achieved_gops{{model=\"{}\"}} {}",
                escape_label(&m.model),
                num(gops)
            );
        }
    }

    out
}

#[cfg(test)]
// Exact float equality below asserts deterministic replay of seeded runs.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use std::time::Duration;
    use vitcod_serve::{RequestTiming, StatsRecorder};

    fn sample_stats() -> ServerStats {
        let r = StatsRecorder::new();
        r.record_batch(
            "deit\"tiny",
            Duration::from_millis(5),
            &[
                RequestTiming {
                    total: Duration::from_millis(10),
                    queue_wait: Duration::from_millis(2),
                    batch_assembly: Duration::from_millis(3),
                    compute: Duration::from_millis(5),
                },
                RequestTiming::from_total(Duration::from_millis(20)),
            ],
        );
        r.record_serialize("deit\"tiny", Duration::from_micros(100));
        r.record_timeout("deit\"tiny");
        r.record_slow_request("deit\"tiny");
        r.record_slow_request("deit\"tiny");
        let mut ops = [0.0f64; vitcod_engine::OP_COUNT];
        for (i, slot) in ops.iter_mut().enumerate() {
            *slot = 1e-4 * (i + 1) as f64;
        }
        r.record_ops("deit\"tiny", &[ops]);
        let mut stats = r.snapshot(12.5);
        for m in &mut stats.models {
            m.achieved_gops = Some(3.25);
        }
        stats
    }

    fn drops() -> RingDrops {
        RingDrops {
            trace: 7,
            traces: 2,
            slowlog: 1,
        }
    }

    #[test]
    fn exposition_carries_every_family() {
        let body = render(&sample_stats(), 3, drops());
        for family in [
            "vitcod_uptime_seconds",
            "vitcod_queue_depth",
            "vitcod_trace_dropped_total",
            "vitcod_traces_dropped_total",
            "vitcod_slowlog_dropped_total",
            "vitcod_requests_total",
            "vitcod_timeouts_total",
            "vitcod_slow_requests_total",
            "vitcod_batches_total",
            "vitcod_model_info",
            "vitcod_latency_samples_truncated",
            "vitcod_batch_fill",
            "vitcod_request_latency_seconds",
            "vitcod_stage_latency_seconds",
            "vitcod_engine_op_seconds",
            "vitcod_engine_achieved_gops",
        ] {
            assert!(
                body.contains(&format!("# TYPE {family}")),
                "missing family {family}"
            );
        }
        assert!(body.contains("vitcod_queue_depth 3"));
        assert!(body.contains("vitcod_slow_requests_total{model=\"deit\\\"tiny\"} 2"));
        assert!(body.contains("vitcod_trace_dropped_total 7"));
        assert!(body.contains("vitcod_traces_dropped_total 2"));
        assert!(body.contains("vitcod_slowlog_dropped_total 1"));
        assert!(body.contains("vitcod_uptime_seconds 12.5"));
    }

    #[test]
    fn op_series_stay_bounded_at_the_named_ops_and_gauge_renders() {
        let body = render(&sample_stats(), 0, RingDrops::default());
        for op in vitcod_engine::OP_NAMES {
            assert!(
                body.contains(&format!("op=\"{op}\"")),
                "missing op series {op}"
            );
        }
        // Cardinality policy: ops are labelled by name only — no
        // per-layer labels ever reach the exposition.
        assert!(!body.contains("layer="));
        let series = body.matches("vitcod_engine_op_seconds_count{").count();
        assert_eq!(series, vitcod_engine::OP_NAMES.len());
        assert!(body.contains("vitcod_engine_achieved_gops{model=\"deit\\\"tiny\"} 3.25"));
    }

    #[test]
    fn label_values_are_escaped() {
        let body = render(&sample_stats(), 0, RingDrops::default());
        assert!(body.contains(r#"model="deit\"tiny""#), "{body}");
        assert!(!body.contains("model=\"deit\"tiny\""));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_close_at_inf() {
        let body = render(&sample_stats(), 0, RingDrops::default());
        // Each histogram's +Inf bucket equals its _count.
        let mut last_counts: Vec<(String, u64)> = Vec::new();
        for line in body.lines() {
            if let Some((name_labels, value)) = line.rsplit_once(' ') {
                if name_labels.contains("le=\"+Inf\"") {
                    let family = name_labels
                        .split("_bucket")
                        .next()
                        .unwrap_or_default()
                        .to_string();
                    let labels = name_labels
                        .split('{')
                        .nth(1)
                        .unwrap_or_default()
                        .replace(",le=\"+Inf\"}", "")
                        .replace("le=\"+Inf\"}", "");
                    last_counts.push((
                        format!("{family}_count{{{labels}}}"),
                        value.parse().expect("count"),
                    ));
                }
            }
        }
        assert!(!last_counts.is_empty());
        for (count_series, inf_count) in last_counts {
            let line = body
                .lines()
                .find(|l| l.starts_with(&count_series))
                .unwrap_or_else(|| panic!("missing {count_series}"));
            let count: u64 = line
                .rsplit_once(' ')
                .and_then(|(_, v)| v.parse().ok())
                .expect("parse");
            assert_eq!(count, inf_count, "{count_series}");
        }
    }

    #[test]
    fn stage_series_cover_all_four_stages() {
        let body = render(&sample_stats(), 0, RingDrops::default());
        for stage in ["queue_wait", "batch_assembly", "compute", "serialize"] {
            assert!(
                body.contains(&format!("stage=\"{stage}\"")),
                "missing stage {stage}"
            );
        }
    }
}
