//! A minimal JSON codec for the wire protocol.
//!
//! The build box is offline, so the transport carries its own codec
//! instead of serde: a recursive-descent parser with a **hard nesting
//! cap** (hostile `[[[[…]]]]` inputs fail cleanly instead of blowing
//! the stack) and a writer that reuses the artifact layer's escaping
//! discipline (every control character escaped, lossless round trip).
//!
//! Numbers are carried as `f64`. That is lossless for the payloads this
//! wire moves: an `f32` token or logit widened to `f64` is exact, its
//! shortest decimal rendering round-trips through `f64` back to the
//! identical `f32` — which is what lets the end-to-end tests demand
//! bit-identical logits through the socket.
//!
//! Allocation is bounded by the input: containers grow element by
//! element (no attacker-declared capacity is ever pre-allocated), and
//! the HTTP layer caps the body size before a byte reaches the parser.

use std::fmt;

/// Deepest container nesting the parser accepts.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; key order is preserved, duplicate keys are kept
    /// (lookups return the first).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// First value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => write_number(*n, out),
            Json::String(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact serialization (`value.to_string()` is the wire encoding).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// JSON has no NaN/Infinity; a non-finite number (which the serving
/// layer never produces) degrades to `null` rather than emitting an
/// unparseable token.
fn write_number(n: f64, out: &mut String) {
    if n.is_finite() {
        // Rust's shortest round-trip rendering: parses back to the
        // identical f64 (and, for values that came from an f32, back to
        // the identical f32).
        out.push_str(&format!("{n}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why parsing failed, with the byte offset it failed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// [`JsonError`] on malformed input or nesting deeper than
/// [`MAX_DEPTH`].
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes (the input is valid UTF-8 —
            // the HTTP layer checked — so copying byte runs is safe).
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The HTTP layer validated the body as UTF-8; lossy
            // conversion is a no-op on the hot path and degrades to
            // replacement chars (not a panic) if that ever regresses.
            out.push_str(&String::from_utf8_lossy(&self.bytes[start..self.pos]));
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require the low half.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        if self.peek() == Some(b'u') {
                            self.pos += 1;
                            let lo = self.hex4()?;
                            if (0xDC00..0xE000).contains(&lo) {
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                return char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"));
                            }
                        }
                    }
                    return Err(self.err("unpaired surrogate escape"));
                }
                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
            }
            _ => return Err(self.err(format!("unknown escape '\\{}'", c as char))),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("number without digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("decimal point without digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("exponent without digits"));
            }
        }
        // Number bytes are ASCII by construction; an empty str here
        // just routes into the unparseable-number error below.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("unparseable number '{text}'")))?;
        Ok(Json::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_containers_strings_and_numbers() {
        let doc = r#"{"a": [1, -2.5, 1e3], "s": "q\"\\\n\u0041\u00e9", "b": true, "n": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(1e3)
        );
        assert_eq!(v.get("s").unwrap().as_str(), Some("q\"\\\nAé"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("n"), Some(&Json::Null));
        // Serialize → reparse is identity.
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn f32_values_round_trip_bit_exactly() {
        for bits in [
            0x3f80_0001u32,
            0xbf7f_ffff,
            0x0000_0001,
            0x7f7f_ffff,
            0x3333_3333,
        ] {
            let x = f32::from_bits(bits);
            let text = Json::Number(x as f64).to_string();
            let back = parse(&text).unwrap().as_f64().unwrap() as f32;
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn hostile_nesting_is_rejected_cleanly() {
        let deep = "[".repeat(MAX_DEPTH + 8) + &"]".repeat(MAX_DEPTH + 8);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // At the cap is still fine.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn malformed_documents_error_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"a\":}",
            "01x",
            "-",
            "1.",
            "1e",
            "nul",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "[1] trailing",
            "NaN",
            "Infinity",
            "{\"a\" 1}",
            "\u{7}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn control_characters_escape_losslessly() {
        let s = Json::String("a\u{1}b\u{1f}\"\\\n".into());
        assert_eq!(parse(&s.to_string()).unwrap(), s);
    }
}
