//! Route table: method + path → endpoint.
//!
//! | method | path                          | endpoint                    |
//! |--------|-------------------------------|-----------------------------|
//! | GET    | `/healthz`                    | liveness + model list       |
//! | GET    | `/v1/health`                  | same; `?deep=1` probes      |
//! | GET    | `/v1/stats`                   | serving statistics snapshot |
//! | GET    | `/v1/metrics`                 | Prometheus text exposition  |
//! | GET    | `/v1/trace`                   | drain the event-trace ring  |
//! | GET    | `/v1/traces`                  | drain sampled span trees    |
//! | GET    | `/v1/slowlog`                 | drain the slow-request log  |
//! | POST   | `/v1/models/{id}/classify`    | classify (single or batch)  |
//! | POST   | `/v1/models/{id}/reload`      | hot-swap the model artifact |
//!
//! The three ring endpoints accept `?peek=1` for a non-destructive
//! read.

/// A resolved endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz` or `GET /v1/health` (the latter accepts
    /// `?deep=1` for a per-model inference readiness probe).
    Health,
    /// `GET /v1/stats`.
    Stats,
    /// `GET /v1/metrics`.
    Metrics,
    /// `GET /v1/trace`.
    Trace,
    /// `GET /v1/traces`.
    Traces,
    /// `GET /v1/slowlog`.
    Slowlog,
    /// `POST /v1/models/{id}/classify`.
    Classify {
        /// The model id from the path.
        model: String,
    },
    /// `POST /v1/models/{id}/reload`.
    Reload {
        /// The model id from the path.
        model: String,
    },
}

/// Why a request did not resolve to an endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// No endpoint lives at this path → `404`.
    NotFound,
    /// The path exists but not under this method → `405`.
    MethodNotAllowed,
}

/// Resolves `method` + `path` (query already stripped) to a [`Route`].
///
/// # Errors
///
/// [`RouteError::NotFound`] / [`RouteError::MethodNotAllowed`].
pub fn route(method: &str, path: &str) -> Result<Route, RouteError> {
    let model_action = |path: &str| -> Option<(String, String)> {
        let rest = path.strip_prefix("/v1/models/")?;
        let (model, action) = rest.split_once('/')?;
        if model.is_empty() || action.is_empty() || action.contains('/') {
            return None;
        }
        Some((model.to_string(), action.to_string()))
    };
    match path {
        "/healthz" | "/v1/health" => {
            if method == "GET" {
                Ok(Route::Health)
            } else {
                Err(RouteError::MethodNotAllowed)
            }
        }
        "/v1/stats" => {
            if method == "GET" {
                Ok(Route::Stats)
            } else {
                Err(RouteError::MethodNotAllowed)
            }
        }
        "/v1/metrics" => {
            if method == "GET" {
                Ok(Route::Metrics)
            } else {
                Err(RouteError::MethodNotAllowed)
            }
        }
        "/v1/trace" => {
            if method == "GET" {
                Ok(Route::Trace)
            } else {
                Err(RouteError::MethodNotAllowed)
            }
        }
        "/v1/traces" => {
            if method == "GET" {
                Ok(Route::Traces)
            } else {
                Err(RouteError::MethodNotAllowed)
            }
        }
        "/v1/slowlog" => {
            if method == "GET" {
                Ok(Route::Slowlog)
            } else {
                Err(RouteError::MethodNotAllowed)
            }
        }
        _ => match model_action(path) {
            Some((model, action)) if action == "classify" || action == "reload" => {
                if method != "POST" {
                    return Err(RouteError::MethodNotAllowed);
                }
                Ok(if action == "classify" {
                    Route::Classify { model }
                } else {
                    Route::Reload { model }
                })
            }
            _ => Err(RouteError::NotFound),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_resolve() {
        assert_eq!(route("GET", "/healthz"), Ok(Route::Health));
        assert_eq!(route("GET", "/v1/health"), Ok(Route::Health));
        assert_eq!(route("GET", "/v1/stats"), Ok(Route::Stats));
        assert_eq!(route("GET", "/v1/metrics"), Ok(Route::Metrics));
        assert_eq!(route("GET", "/v1/trace"), Ok(Route::Trace));
        assert_eq!(route("GET", "/v1/traces"), Ok(Route::Traces));
        assert_eq!(route("GET", "/v1/slowlog"), Ok(Route::Slowlog));
        assert_eq!(
            route("POST", "/v1/models/deit-tiny/classify"),
            Ok(Route::Classify {
                model: "deit-tiny".into()
            })
        );
        assert_eq!(
            route("POST", "/v1/models/m/reload"),
            Ok(Route::Reload { model: "m".into() })
        );
    }

    #[test]
    fn wrong_method_is_405_unknown_path_is_404() {
        assert_eq!(route("POST", "/healthz"), Err(RouteError::MethodNotAllowed));
        assert_eq!(
            route("POST", "/v1/health"),
            Err(RouteError::MethodNotAllowed)
        );
        assert_eq!(
            route("POST", "/v1/metrics"),
            Err(RouteError::MethodNotAllowed)
        );
        assert_eq!(
            route("POST", "/v1/trace"),
            Err(RouteError::MethodNotAllowed)
        );
        assert_eq!(
            route("POST", "/v1/traces"),
            Err(RouteError::MethodNotAllowed)
        );
        assert_eq!(
            route("POST", "/v1/slowlog"),
            Err(RouteError::MethodNotAllowed)
        );
        assert_eq!(
            route("GET", "/v1/models/m/classify"),
            Err(RouteError::MethodNotAllowed)
        );
        assert_eq!(route("GET", "/nope"), Err(RouteError::NotFound));
        assert_eq!(
            route("POST", "/v1/models//classify"),
            Err(RouteError::NotFound)
        );
        assert_eq!(
            route("POST", "/v1/models/m/evict"),
            Err(RouteError::NotFound)
        );
        assert_eq!(
            route("POST", "/v1/models/a/b/classify"),
            Err(RouteError::NotFound)
        );
    }
}
