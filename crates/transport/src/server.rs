//! The network front end: a `TcpListener` accept loop feeding a
//! handler-thread pool, each handler speaking keep-alive HTTP/1.1 over
//! its connection and driving the serving layer through a
//! [`vitcod_serve::Client`].
//!
//! ```text
//!  accept thread ──▶ BoundedQueue<TcpStream> ──▶ handler pool
//!                                                │ parse → route → Client::submit → wait
//!                                                ▼
//!                                        vitcod_serve::Server (queue → batcher → engines)
//! ```
//!
//! **Graceful shutdown** ([`HttpServer::shutdown`]) runs front to back:
//! stop accepting connections, let handlers finish the requests already
//! on the wire, then drain the serving layer itself — an accepted
//! request is never dropped, matching [`vitcod_serve::Server`]'s own
//! contract.

use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vitcod_engine::{load_compiled_vit, Engine};
use vitcod_serve::queue::{BoundedQueue, Pop};
use vitcod_serve::{
    Client, RequestError, RequestOutcome, Server, ServerStats, Span, StageReport, SubmitError,
    Ticket,
};

use crate::api;
use crate::http::{self, Limits};
use crate::json::Json;
use crate::metrics;
use crate::router::{route, Route, RouteError};

/// The default response `Content-Type` (everything except
/// `/v1/metrics`, which serves Prometheus text exposition).
const JSON_TYPE: &str = "application/json";

/// How often blocked socket reads wake up to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// The header a client uses to bring its own trace id. Its presence
/// forces head sampling for that request.
pub const TRACE_ID_HEADER: &str = "x-vitcod-trace-id";

/// An ingress-generated trace id: a per-process random-ish prefix
/// (boot-time nanos) plus a monotonic counter — unique within a process
/// and practically unique across restarts, with no RNG dependency.
fn next_trace_id() -> String {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    static PREFIX: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    let prefix = PREFIX.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed)
    });
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("{prefix:016x}-{n}")
}

/// Transport tuning knobs; see [`HttpServer::bind`].
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Handler threads serving connections (each runs one connection at
    /// a time; accepted connections beyond the pool wait in a bounded
    /// queue).
    pub handler_threads: usize,
    /// HTTP parser caps (header section and `Content-Length`).
    pub limits: Limits,
    /// Deadline applied to classify requests that carry no
    /// `timeout_ms`; `None` waits indefinitely.
    pub default_timeout: Option<Duration>,
    /// Idle keep-alive connections (and stalled mid-request reads) are
    /// closed after this long without a byte.
    pub idle_timeout: Duration,
    /// A request whose first byte has arrived must parse completely
    /// within this budget, however steadily bytes trickle in — the
    /// slow-loris defense (`idle_timeout` alone resets on every byte,
    /// so one header byte per poll interval would pin a handler
    /// forever). Idle time *between* keep-alive requests is governed
    /// by [`TransportConfig::idle_timeout`] instead.
    pub request_deadline: Duration,
    /// Directory `POST …/reload` may load `*.vitcod` artifacts from.
    /// `None` (the default) disables wire-triggered reloads entirely:
    /// an unauthenticated endpoint that reads operator-chosen paths
    /// must be opted into, and even then stays confined to this root.
    /// In-process [`Server::reload`] is unaffected.
    pub artifact_root: Option<std::path::PathBuf>,
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self {
            handler_threads: 4,
            limits: Limits::default(),
            default_timeout: None,
            idle_timeout: Duration::from_secs(30),
            request_deadline: Duration::from_secs(10),
            artifact_root: None,
        }
    }
}

struct TransportShared {
    client: Client,
    config: TransportConfig,
    shutting_down: AtomicBool,
    conns: BoundedQueue<TcpStream>,
}

/// The HTTP front end over a [`vitcod_serve::Server`]; see the
/// [module docs](self).
pub struct HttpServer {
    shared: Arc<TransportShared>,
    server: Option<Server>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (use port `0` for an ephemeral port) and starts
    /// serving `server` over it, taking ownership: the transport is now
    /// the process's front door, and [`HttpServer::shutdown`] drains
    /// both layers in order.
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    ///
    /// # Panics
    ///
    /// Panics if `config.handler_threads` is zero.
    pub fn bind(
        addr: impl ToSocketAddrs,
        server: Server,
        config: TransportConfig,
    ) -> std::io::Result<HttpServer> {
        assert!(config.handler_threads >= 1, "handler_threads must be >= 1");
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(TransportShared {
            client: server.client(),
            conns: BoundedQueue::new(config.handler_threads * 2),
            config,
            shutting_down: AtomicBool::new(false),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("vitcod-transport-accept".into())
                .spawn(move || run_acceptor(&shared, &listener))
                // vitcod-lint: allow(V001, spawn fails only on OS thread exhaustion at startup; bind() is the setup path)
                .expect("spawn acceptor")
        };
        let handlers = (0..shared.config.handler_threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vitcod-transport-handler-{i}"))
                    .spawn(move || run_handler(&shared))
                    // vitcod-lint: allow(V001, spawn fails only on OS thread exhaustion at startup; bind() is the setup path)
                    .expect("spawn handler")
            })
            .collect();
        Ok(HttpServer {
            shared,
            server: Some(server),
            addr,
            acceptor: Some(acceptor),
            handlers,
        })
    }

    /// The bound address (the ephemeral port when bound to port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A consistent snapshot of the serving statistics.
    pub fn stats(&self) -> ServerStats {
        self.shared.client.stats()
    }

    /// Graceful shutdown: stops accepting connections, lets handlers
    /// finish the requests already on the wire, then drains the serving
    /// layer and returns its final statistics.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop_transport();
        match self.server.take() {
            // `server` is only taken here, and `shutdown(self)` consumes
            // the transport, so this is always the populated arm.
            Some(server) => server.shutdown(),
            None => self.shared.client.stats(),
        }
    }

    fn stop_transport(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a wake-up connection; it re-checks
        // the flag before handing anything to the pool.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            if h.join().is_err() {
                eprintln!("vitcod-transport: acceptor thread panicked");
            }
        }
        self.shared.conns.close();
        for h in self.handlers.drain(..) {
            if h.join().is_err() {
                eprintln!("vitcod-transport: handler thread panicked");
            }
        }
        // Connections still queued were never read from; dropping them
        // resets the socket, which is the correct refusal signal.
        drop(self.shared.conns.drain_now());
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.handlers.is_empty() {
            self.stop_transport();
        }
        // Dropping the inner `Server` (if shutdown() did not take it)
        // drains the serving layer via its own Drop.
    }
}

fn run_acceptor(shared: &TransportShared, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                if shared.conns.push(stream).is_err() {
                    return;
                }
            }
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept errors (EMFILE, aborted handshakes)
                // must not kill the front door.
                std::thread::sleep(POLL_INTERVAL);
            }
        }
    }
}

fn run_handler(shared: &TransportShared) {
    loop {
        match shared.conns.pop_until(None) {
            Pop::Item(stream) => handle_connection(shared, stream),
            Pop::Closed => return,
            // `pop_until(None)` never times out; tolerate it anyway
            // rather than giving the pool a panic path.
            Pop::TimedOut => continue,
        }
    }
}

/// Serves one keep-alive connection until it closes, errors, idles out,
/// or the transport shuts down.
fn handle_connection(shared: &TransportShared, mut stream: TcpStream) {
    // Short read timeouts let the loop poll the shutdown flag; the
    // idle budget is enforced separately.
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut last_byte = Instant::now();
    let mut chunk = [0u8; 16 * 1024];
    // Stamped when the first byte of a request lands in the buffer — the
    // span tree's `request` root starts here, so queueing inside the
    // kernel's socket buffer is the only wait a trace cannot see.
    let mut request_started: Option<Instant> = None;
    loop {
        match http::parse_request(&buf, &shared.config.limits) {
            Ok(Some((request, consumed))) => {
                buf.drain(..consumed);
                let ingress = request_started.take().unwrap_or_else(Instant::now);
                if !buf.is_empty() {
                    // Pipelined: the next request's first bytes are
                    // already buffered.
                    request_started = Some(Instant::now());
                }
                let shutting_down = shared.shutting_down.load(Ordering::SeqCst);
                let close = !request.keep_alive || shutting_down;
                let (status, content_type, body) = dispatch(shared, &request, ingress);
                if http::write_response_with_type(&mut stream, status, content_type, &body, close)
                    .is_err()
                    || close
                {
                    return;
                }
                last_byte = Instant::now();
            }
            Ok(None) => {
                let shutting_down = shared.shutting_down.load(Ordering::SeqCst);
                if shutting_down && buf.is_empty() {
                    // Idle between requests at shutdown: nothing on the
                    // wire is abandoned by closing now.
                    return;
                }
                // A half-received request gets a short grace at
                // shutdown instead of the full idle budget.
                let idle_budget = if shutting_down {
                    shared.config.idle_timeout.min(Duration::from_millis(500))
                } else {
                    shared.config.idle_timeout
                };
                if last_byte.elapsed() >= idle_budget {
                    if !buf.is_empty() {
                        let _ = http::write_response(
                            &mut stream,
                            408,
                            &api::error_json("timed out waiting for the rest of the request"),
                            true,
                        );
                    }
                    return;
                }
                // Slow-loris shedding: a trickle of header bytes keeps
                // `last_byte` fresh forever, so partial requests also
                // burn a total per-request budget.
                if request_started.is_some_and(|s| s.elapsed() >= shared.config.request_deadline) {
                    let _ = http::write_response(
                        &mut stream,
                        408,
                        &api::error_json("request did not complete within the request deadline"),
                        true,
                    );
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
                match stream.read(&mut chunk) {
                    Ok(0) => {
                        if !buf.is_empty() {
                            let _ = http::write_response(
                                &mut stream,
                                400,
                                &api::error_json("connection closed mid-request"),
                                true,
                            );
                        }
                        return;
                    }
                    Ok(n) => {
                        if buf.is_empty() && n > 0 {
                            request_started = Some(Instant::now());
                        }
                        buf.extend_from_slice(&chunk[..n]);
                        last_byte = Instant::now();
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => return,
                }
            }
            Err(e) => {
                let _ = http::write_response(
                    &mut stream,
                    e.status(),
                    &api::error_json(&e.to_string()),
                    true,
                );
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        }
    }
}

/// Routes and executes one request; infallible by construction (every
/// failure becomes a status + JSON error body). Returns status,
/// `Content-Type` and body. `ingress` is when the request's first byte
/// arrived — the root of its span tree.
fn dispatch(
    shared: &TransportShared,
    request: &http::HttpRequest,
    ingress: Instant,
) -> (u16, &'static str, String) {
    let json = |(status, body): (u16, String)| (status, JSON_TYPE, body);
    // `?peek=1` on the ring endpoints: non-destructive read.
    let peek = request.query.split('&').any(|kv| kv == "peek=1");
    match route(&request.method, &request.path) {
        Err(RouteError::NotFound) => json((404, api::error_json("no such endpoint"))),
        Err(RouteError::MethodNotAllowed) => {
            json((405, api::error_json("method not allowed on this endpoint")))
        }
        Ok(Route::Health) => {
            // `?deep=1`: readiness, not just liveness — run one real
            // inference per registered model through the full queue →
            // batcher → engine path.
            if request.query.split('&').any(|kv| kv == "deep=1") {
                json(deep_health(shared))
            } else {
                let body = api::health_json(
                    &shared.client.model_ids(),
                    shared.client.queued_requests(),
                    shared.client.uptime_s(),
                );
                json((200, body.to_string()))
            }
        }
        Ok(Route::Stats) => json((200, api::stats_json(&shared.client.stats()).to_string())),
        Ok(Route::Metrics) => {
            let stats = shared.client.stats();
            let body = metrics::render(
                &stats,
                shared.client.queued_requests(),
                metrics::RingDrops {
                    trace: shared.client.trace_dropped(),
                    traces: shared.client.traces_dropped(),
                    slowlog: shared.client.slowlog_dropped(),
                },
            );
            (200, metrics::CONTENT_TYPE, body)
        }
        Ok(Route::Trace) => {
            let events = if peek {
                shared.client.peek_trace()
            } else {
                shared.client.take_trace()
            };
            let body = api::trace_json(&events, shared.client.trace_dropped());
            json((200, body.to_string()))
        }
        Ok(Route::Traces) => {
            let traces = if peek {
                shared.client.peek_traces()
            } else {
                shared.client.take_traces()
            };
            let body = api::traces_json(&traces, shared.client.traces_dropped());
            json((200, body.to_string()))
        }
        Ok(Route::Slowlog) => {
            let traces = if peek {
                shared.client.peek_slowlog()
            } else {
                shared.client.take_slowlog()
            };
            let body = api::traces_json(&traces, shared.client.slowlog_dropped());
            json((200, body.to_string()))
        }
        Ok(Route::Classify { model }) => json(match parse_body(request) {
            Ok(body) => classify(shared, &model, &body, request, ingress),
            Err(resp) => resp,
        }),
        Ok(Route::Reload { model }) => json(match parse_body(request) {
            Ok(body) => reload(shared, &model, &body),
            Err(resp) => resp,
        }),
    }
}

/// Decodes the request body as a JSON document (UTF-8 checked first).
fn parse_body(request: &http::HttpRequest) -> Result<Json, (u16, String)> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| (400, api::error_json("body is not valid UTF-8")))?;
    if text.trim().is_empty() {
        return Err((400, api::error_json("empty body; expected a JSON object")));
    }
    crate::json::parse(text).map_err(|e| (400, api::error_json(&e.to_string())))
}

fn submit_status(err: &SubmitError) -> u16 {
    match err {
        SubmitError::UnknownModel(_) => 404,
        SubmitError::ShapeMismatch { .. } => 400,
        SubmitError::QueueFull => 503,
        SubmitError::Closed => 503,
    }
}

fn classify(
    shared: &TransportShared,
    model: &str,
    body: &Json,
    request: &http::HttpRequest,
    ingress: Instant,
) -> (u16, String) {
    let payload = match api::parse_classify(body) {
        Ok(p) => p,
        Err(e) => return (400, api::error_json(&e.to_string())),
    };
    // Trace identity and the head-sampling decision, at ingress: an
    // explicit `x-vitcod-trace-id` header forces sampling; otherwise
    // the server's deterministic sampler decides.
    let header_id = request.header(TRACE_ID_HEADER).map(str::to_string);
    let sampled = header_id.is_some() || shared.client.sample_trace();
    let trace_id = header_id.unwrap_or_else(next_trace_id);
    // Tail mode: every in-flight request registers in the bounded
    // pending buffer; the keep decision happens in `finish_trace`, at
    // completion. A no-op (`None`) with the tail off or the buffer full.
    let tail_key = shared.client.tail_register(&trace_id, model);
    // The parse span: first byte on the wire to a validated payload.
    let parse_s = ingress.elapsed().as_secs_f64();
    let timeout = payload
        .timeout_ms
        .map(Duration::from_millis)
        .or(shared.config.default_timeout);
    // Submit every sample before waiting on any: the serving layer sees
    // the whole burst at once, so the dynamic batcher can co-batch it.
    let mut tickets: Vec<Ticket> = Vec::with_capacity(payload.items.len());
    for tokens in payload.items {
        match shared.client.submit_traced(model, tokens, timeout, sampled) {
            Ok(ticket) => tickets.push(ticket),
            // Already-submitted samples of a failed batch are still
            // served (their tickets resolve unobserved); the request as
            // a whole reports the error.
            Err(e) => {
                finish_trace(
                    shared,
                    model,
                    timeout,
                    None,
                    TraceFinish {
                        trace_id: trace_id.clone(),
                        sampled,
                        tail_key,
                        outcome: RequestOutcome::Failed,
                        ingress,
                        parse_s,
                        serialize_s: 0.0,
                    },
                );
                return (submit_status(&e), api::error_json(&e.to_string()));
            }
        }
    }
    let mut results = Vec::with_capacity(tickets.len());
    let mut timed_out = 0usize;
    for ticket in &tickets {
        match wait_for(shared, ticket, timeout) {
            Ok(p) => results.push(api::prediction_json(&p)),
            Err(RequestError::TimedOut) => {
                timed_out += 1;
                results.push(Json::Object(vec![(
                    "error".into(),
                    Json::String("timed out".into()),
                )]));
            }
            Err(RequestError::Cancelled) => {
                finish_trace(
                    shared,
                    model,
                    timeout,
                    None,
                    TraceFinish {
                        trace_id: trace_id.clone(),
                        sampled,
                        tail_key,
                        outcome: RequestOutcome::Failed,
                        ingress,
                        parse_s,
                        serialize_s: 0.0,
                    },
                );
                return (503, api::error_json("server shut down before serving"));
            }
        }
    }
    // The span tree reports the first sample's stage timings: a batch
    // body is one wire request, its samples co-batch, and their stage
    // stamps are near-identical — one tree per trace id keeps the rings
    // and their JSON bounded.
    let report = tickets.first().and_then(Ticket::take_stage_report);
    let outcome = if timed_out > 0 {
        RequestOutcome::Expired
    } else {
        RequestOutcome::Ok
    };
    let finish = |serialize_s: f64| TraceFinish {
        trace_id: trace_id.clone(),
        sampled,
        tail_key,
        outcome,
        ingress,
        parse_s,
        serialize_s,
    };
    // Serialize stage: time the JSON encode of the response body and
    // record it once per sample actually served (every sample in the
    // response observed the same encode latency).
    let served = tickets.len().saturating_sub(timed_out);
    if !payload.batch {
        if timed_out > 0 {
            finish_trace(shared, model, timeout, report, finish(0.0));
            return (504, api::error_json("timed out"));
        }
        let encode_start = Instant::now();
        let body = results.remove(0).to_string();
        let encode = encode_start.elapsed();
        record_serialize(shared, model, encode, served);
        finish_trace(shared, model, timeout, report, finish(encode.as_secs_f64()));
        return (200, body);
    }
    let encode_start = Instant::now();
    let body = Json::Object(vec![("results".into(), Json::Array(results))]).to_string();
    let encode = encode_start.elapsed();
    record_serialize(shared, model, encode, served);
    finish_trace(shared, model, timeout, report, finish(encode.as_secs_f64()));
    (200, body)
}

/// The transport-side half of one finished request's span tree; the
/// serve-side half arrives as the ticket's [`StageReport`].
struct TraceFinish {
    trace_id: String,
    sampled: bool,
    /// The request's tail pending-buffer key, when tail mode registered
    /// it at ingress.
    tail_key: Option<u64>,
    /// How the request ended, for the tail sampler's errored/expired
    /// keep rule.
    outcome: RequestOutcome,
    ingress: Instant,
    parse_s: f64,
    serialize_s: f64,
}

/// Assembles the `request` span tree and retains it: in the traces ring
/// when the request was head-sampled, in the slowlog ring when its
/// end-to-end latency exceeded the slow threshold (deadline × 0.5, or
/// the configured fallback). With tail mode on
/// ([`vitcod_serve::TracingConfig::tail`]) the traces ring additionally
/// keeps slow, errored/expired and reservoir-selected requests, decided
/// here — at completion, when the end-to-end total is known. Ordinary
/// fast-path requests return without touching any ring.
fn finish_trace(
    shared: &TransportShared,
    model: &str,
    timeout: Option<Duration>,
    report: Option<StageReport>,
    f: TraceFinish,
) {
    let total_s = f.ingress.elapsed().as_secs_f64();
    let slow = shared
        .client
        .tracing()
        .slow_threshold_for(timeout)
        .is_some_and(|t| total_s > t.as_secs_f64());
    // Completion-time keep decision; also unregisters the pending
    // entry. `None` whenever the tail is off, so the default path is
    // exactly the head-sampling semantics.
    let tail_keep = shared
        .client
        .tail_complete(f.tail_key, f.sampled, slow, f.outcome);
    if !f.sampled && !slow && tail_keep.is_none() {
        return;
    }
    // A request that expired before serving has no report; its stage
    // leaves read zero and the gap under `request` is the wait.
    let report = report.unwrap_or_default();
    let compute = report
        .compute
        .unwrap_or_else(|| Span::leaf("compute", report.compute_s));
    let root = Span::with_children(
        "request",
        total_s,
        vec![
            Span::leaf("parse", f.parse_s),
            Span::leaf("queue", report.queue_wait_s),
            Span::leaf("batch_assembly", report.batch_assembly_s),
            compute,
            Span::leaf("serialize", f.serialize_s),
        ],
    );
    if f.sampled {
        shared
            .client
            .record_trace(f.trace_id.clone(), model.to_string(), total_s, root.clone());
    }
    if slow {
        shared.client.record_slow(
            f.trace_id.clone(),
            model.to_string(),
            f.sampled,
            total_s,
            root.clone(),
        );
    }
    if let Some(reason) = tail_keep {
        shared
            .client
            .record_tail(f.trace_id, model.to_string(), total_s, root, reason);
    }
}

/// Per-model budget of the deep health probe: generous against batching
/// waits (`max_wait` flushes) but bounded, so a wedged model degrades
/// the probe instead of hanging it.
const PROBE_TIMEOUT: Duration = Duration::from_secs(5);

/// `GET /v1/health?deep=1`: runs a one-sample inference per registered
/// model through the normal serving path and reports per-model
/// readiness. Any failed probe turns the status to `degraded` and the
/// response to 503 — the shape a load balancer's readiness check wants.
/// Probe requests are real requests: they count in the model's stats
/// (and are never head-sampled or tail-registered, so they cannot crowd
/// the trace rings).
fn deep_health(shared: &TransportShared) -> (u16, String) {
    let models = shared.client.model_ids();
    let probes: Vec<api::ModelProbe> = models
        .iter()
        .map(|model| {
            let started = Instant::now();
            let ok = probe_model(shared, model);
            api::ModelProbe {
                model: model.clone(),
                ok,
                latency_s: started.elapsed().as_secs_f64(),
            }
        })
        .collect();
    let healthy = probes.iter().all(|p| p.ok);
    let body = api::deep_health_json(
        &models,
        shared.client.queued_requests(),
        shared.client.uptime_s(),
        healthy,
        &probes,
    );
    (if healthy { 200 } else { 503 }, body.to_string())
}

/// One probe: a zero token matrix of the model's compiled shape,
/// submitted with a deadline and waited to a prediction.
fn probe_model(shared: &TransportShared, model: &str) -> bool {
    let Some((tokens, in_dim)) = shared.client.model_shape(model) else {
        // Racing an unregister; a model that is gone cannot be ready.
        return false;
    };
    let sample = vitcod_tensor::Matrix::zeros(tokens, in_dim);
    match shared
        .client
        .submit_traced(model, sample, Some(PROBE_TIMEOUT), false)
    {
        Ok(ticket) => wait_for(shared, &ticket, Some(PROBE_TIMEOUT)).is_ok(),
        Err(_) => false,
    }
}

/// Feeds the serialize-stage histogram: one observation per served
/// sample in the response.
fn record_serialize(shared: &TransportShared, model: &str, took: Duration, served: usize) {
    for _ in 0..served {
        shared.client.observe_serialize(model, took);
    }
}

/// Waits for one ticket, honouring the deadline when there is one.
fn wait_for(
    shared: &TransportShared,
    ticket: &Ticket,
    timeout: Option<Duration>,
) -> Result<vitcod_engine::Prediction, RequestError> {
    match timeout {
        Some(t) => {
            // Slack over the submit-time deadline: a request batched
            // just before its deadline is served to completion rather
            // than abandoned mid-inference, so give the engine a beat
            // to deliver before reporting the timeout.
            let wait = t + Duration::from_millis(50);
            shared.client.wait_timeout(ticket, wait)
        }
        None => loop {
            // Genuinely indefinite, in slices. The request was
            // submitted without a deadline, so the batcher can never
            // expire it server-side: a `TimedOut` here can only mean
            // this local slice elapsed, and looping is safe.
            match shared.client.wait_timeout(ticket, Duration::from_secs(60)) {
                Err(RequestError::TimedOut) => continue,
                resolved => return resolved,
            }
        },
    }
}

fn reload(shared: &TransportShared, model: &str, body: &Json) -> (u16, String) {
    // The wire may only swap models that already exist (no remote
    // registry growth) …
    if !shared.client.model_ids().iter().any(|id| id == model) {
        return (404, api::error_json(&format!("unknown model id '{model}'")));
    }
    // … and only from artifacts inside the configured root: an
    // unauthenticated endpoint must not read operator-arbitrary paths.
    let root = match &shared.config.artifact_root {
        Some(root) => root,
        None => {
            return (
                403,
                api::error_json("reload over the wire is disabled: no artifact_root configured"),
            )
        }
    };
    let path = match body.get("path").and_then(Json::as_str) {
        Some(p) => p,
        None => return (400, api::error_json("body must carry 'path'")),
    };
    // Canonicalize both sides (resolving symlinks and `..`) before the
    // containment check.
    let confined = std::fs::canonicalize(root).ok().and_then(|root| {
        let resolved = std::fs::canonicalize(path).ok()?;
        resolved.starts_with(&root).then_some(resolved)
    });
    let resolved = match confined {
        Some(p) => p,
        None => {
            return (
                403,
                api::error_json(&format!(
                    "'{path}' is not an existing artifact inside the configured artifact root"
                )),
            )
        }
    };
    let text = match std::fs::read_to_string(&resolved) {
        Ok(t) => t,
        Err(e) => return (400, api::error_json(&format!("cannot read '{path}': {e}"))),
    };
    let (compiled, precision) = match load_compiled_vit(&text) {
        Ok(x) => x,
        Err(e) => {
            return (
                400,
                api::error_json(&format!("artifact '{path}' invalid: {e}")),
            )
        }
    };
    let engine = Engine::builder(compiled).precision(precision).build();
    let replaced = shared.client.reload(model, engine);
    let body = Json::Object(vec![
        ("model".into(), Json::String(model.into())),
        ("replaced".into(), Json::Bool(replaced)),
        ("precision".into(), Json::String(precision.to_string())),
    ]);
    (200, body.to_string())
}
