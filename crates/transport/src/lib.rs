//! The network front end of the ViTCoD serving stack: a
//! dependency-free HTTP/1.1 server that turns [`vitcod_serve`] from a
//! library into a process you can curl.
//!
//! The build environment is offline, so everything is hand-rolled on
//! `std::net`: an incremental [`http`] parser with hard header/body
//! caps, a [`json`] codec with a nesting limit and lossless `f32`
//! number round-trips, a [`router`], and a connection-handler pool
//! ([`HttpServer`]) sitting directly on [`vitcod_serve::Client`].
//!
//! # Endpoints
//!
//! | method | path                       | body                               |
//! |--------|----------------------------|------------------------------------|
//! | POST   | `/v1/models/{id}/classify` | `{"tokens": [[…]], "timeout_ms"?}` or `{"batch": [{"tokens": …}, …]}` |
//! | GET    | `/v1/stats`                | —                                  |
//! | GET    | `/v1/metrics`              | — (Prometheus text exposition)     |
//! | GET    | `/v1/trace`                | — (drains the event-trace ring)    |
//! | GET    | `/v1/traces`               | — (drains sampled span trees)      |
//! | GET    | `/v1/slowlog`              | — (drains the slow-request log)    |
//! | GET    | `/healthz`                 | —                                  |
//! | GET    | `/v1/health`               | — (`?deep=1` runs a one-sample inference probe per model) |
//! | POST   | `/v1/models/{id}/reload`   | `{"path": "models/m.vitcod"}`      |
//!
//! The three ring endpoints (`/v1/trace`, `/v1/traces`, `/v1/slowlog`)
//! accept `?peek=1` to read without draining. A classify request may
//! carry an `x-vitcod-trace-id` header; that id is used verbatim and
//! forces the request through the span sampler, so its full span tree
//! (per-layer compute ops included) lands in `/v1/traces`.
//!
//! Wire-level `timeout_ms` becomes a real per-request deadline: the
//! serving layer's batch assembler expires requests past it (they
//! resolve `504` instead of occupying batch slots), and the batcher
//! drains models round-robin so one hot model cannot starve the rest.
//! `reload` hot-swaps a `*.vitcod` artifact behind the registry without
//! dropping in-flight requests — they finish on the weights they were
//! submitted against. Wire reloads are an opt-in: they require
//! [`TransportConfig::artifact_root`] and stay confined to it (only
//! already-registered model ids can be swapped).
//!
//! Serving through the socket never perturbs a prediction: logits ride
//! as shortest-round-trip decimals, so a classify response is
//! bit-identical to [`vitcod_engine::Engine::infer_batch`] on the same
//! tokens (enforced end to end by `crates/transport/tests`).
//!
//! # Example
//!
//! ```no_run
//! use vitcod_serve::{BatchConfig, ModelRegistry, Server};
//! use vitcod_transport::{HttpClient, HttpServer, TransportConfig};
//!
//! let registry = ModelRegistry::load_dir("artifacts/").unwrap();
//! let server = Server::start(registry, BatchConfig::default());
//! let http = HttpServer::bind("127.0.0.1:0", server, TransportConfig::default()).unwrap();
//!
//! let mut client = HttpClient::connect(http.local_addr()).unwrap();
//! let resp = client
//!     .post(
//!         "/v1/models/deit-tiny/classify",
//!         r#"{"tokens": [[0.0, 0.1], [0.2, 0.3]], "timeout_ms": 250}"#,
//!     )
//!     .unwrap();
//! println!("{}", resp.body_str());
//! let stats = http.shutdown();
//! println!("served {} requests", stats.total_requests());
//! ```

#![forbid(unsafe_code)]
// The serving path must not panic (vitcod-lint V001); clippy enforces
// the unwrap half at compile time. Tests may unwrap freely.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod api;
pub mod http;
pub mod json;
pub mod metrics;
pub mod router;

mod client;
mod server;

pub use client::HttpClient;
pub use http::{HttpParseError, HttpRequest, HttpResponse, Limits};
pub use json::{Json, JsonError};
pub use router::{Route, RouteError};
pub use server::{HttpServer, TransportConfig, TRACE_ID_HEADER};
