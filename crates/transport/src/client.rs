//! A minimal blocking HTTP/1.1 client over one keep-alive connection.
//!
//! This is the counterpart the repo's own tests, benches and examples
//! drive the transport with (the offline box has no curl either). It
//! speaks exactly the subset the server does: one request at a time,
//! `Content-Length` bodies, keep-alive by default.

use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::http::{read_response, HttpResponse};

/// A blocking HTTP client over one keep-alive connection.
pub struct HttpClient {
    stream: TcpStream,
}

impl HttpClient {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(HttpClient { stream })
    }

    /// Sends a `GET` and reads the response.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on a malformed response.
    pub fn get(&mut self, path: &str) -> io::Result<HttpResponse> {
        self.request("GET", path, None, None)
    }

    /// Sends a `POST` with a JSON body and reads the response.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on a malformed response.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<HttpResponse> {
        self.request("POST", path, Some(body), None)
    }

    /// Sends a `POST` carrying one extra header (e.g.
    /// `x-vitcod-trace-id` to force a request into the span sampler).
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on a malformed response.
    pub fn post_with_header(
        &mut self,
        path: &str,
        body: &str,
        header: (&str, &str),
    ) -> io::Result<HttpResponse> {
        self.request("POST", path, Some(body), Some(header))
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra: Option<(&str, &str)>,
    ) -> io::Result<HttpResponse> {
        let body = body.unwrap_or("");
        let extra = extra
            .map(|(k, v)| format!("{k}: {v}\r\n"))
            .unwrap_or_default();
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: vitcod\r\nContent-Type: application/json\r\n{extra}Content-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        read_response(&mut self.stream)
    }
}
