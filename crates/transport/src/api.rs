//! The wire schema: JSON shapes for classify/stats/health/reload.
//!
//! A classify body is either a single request
//!
//! ```json
//! {"tokens": [[0.1, -0.2, …], …], "timeout_ms": 250}
//! ```
//!
//! or a batch (one HTTP round trip, one serving-layer ticket per item,
//! so the dynamic batcher still sees every sample individually):
//!
//! ```json
//! {"batch": [{"tokens": [[…], …]}, …], "timeout_ms": 250}
//! ```
//!
//! Numbers ride as `f64` (see [`crate::json`]), which round-trips every
//! `f32` token and logit bit-exactly — the transport never perturbs a
//! prediction.

use std::fmt;

use vitcod_engine::Prediction;
use vitcod_serve::{FinishedTrace, HistogramSnapshot, ModelStats, ServerStats, Span, TraceEvent};
use vitcod_tensor::Matrix;

use crate::json::Json;

/// A parsed classify body.
#[derive(Debug)]
pub struct ClassifyPayload {
    /// One token matrix per requested sample.
    pub items: Vec<Matrix>,
    /// Whether the body used the batch shape (controls the response
    /// shape: `{"results": […]}` vs a bare prediction object).
    pub batch: bool,
    /// Wire-level deadline for every sample in the request.
    pub timeout_ms: Option<u64>,
}

/// Why a structurally valid JSON body is not a valid API request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError(pub String);

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ApiError {}

fn bad(msg: impl Into<String>) -> ApiError {
    ApiError(msg.into())
}

/// Decodes a classify body; see the [module docs](self) for the shape.
///
/// # Errors
///
/// [`ApiError`] naming the offending field on any shape violation —
/// missing `tokens`, ragged rows, non-numeric entries, empty batches.
pub fn parse_classify(body: &Json) -> Result<ClassifyPayload, ApiError> {
    let timeout_ms = match body.get("timeout_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| bad("'timeout_ms' must be a non-negative integer"))?,
        ),
    };
    if let Some(batch) = body.get("batch") {
        let entries = batch
            .as_array()
            .ok_or_else(|| bad("'batch' must be an array"))?;
        if entries.is_empty() {
            return Err(bad("'batch' must not be empty"));
        }
        let items = entries
            .iter()
            .enumerate()
            .map(|(i, entry)| {
                let tokens = entry
                    .get("tokens")
                    .ok_or_else(|| bad(format!("batch[{i}] is missing 'tokens'")))?;
                parse_tokens(tokens).map_err(|e| bad(format!("batch[{i}]: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(ClassifyPayload {
            items,
            batch: true,
            timeout_ms,
        });
    }
    let tokens = body
        .get("tokens")
        .ok_or_else(|| bad("body must carry 'tokens' or 'batch'"))?;
    Ok(ClassifyPayload {
        items: vec![parse_tokens(tokens)?],
        batch: false,
        timeout_ms,
    })
}

/// Decodes a `[[f32; cols]; rows]` token matrix.
fn parse_tokens(tokens: &Json) -> Result<Matrix, ApiError> {
    let rows = tokens
        .as_array()
        .ok_or_else(|| bad("'tokens' must be an array of rows"))?;
    if rows.is_empty() {
        return Err(bad("'tokens' must not be empty"));
    }
    let cols = rows
        .first()
        .and_then(Json::as_array)
        .ok_or_else(|| bad("'tokens' rows must be arrays of numbers"))?
        .len();
    if cols == 0 {
        return Err(bad("'tokens' rows must not be empty"));
    }
    let mut m = Matrix::zeros(rows.len(), cols);
    for (r, row) in rows.iter().enumerate() {
        let row = row
            .as_array()
            .ok_or_else(|| bad("'tokens' rows must be arrays of numbers"))?;
        if row.len() != cols {
            return Err(bad(format!(
                "'tokens' is ragged: row {r} has {} entries, row 0 has {cols}",
                row.len()
            )));
        }
        for (c, v) in row.iter().enumerate() {
            let x = v
                .as_f64()
                .ok_or_else(|| bad(format!("'tokens'[{r}][{c}] is not a number")))?;
            m.set(r, c, x as f32);
        }
    }
    Ok(m)
}

/// Encodes a token matrix as the wire's `[[f32; cols]; rows]` shape —
/// the inverse of the decoder behind [`parse_classify`], used by the
/// bundled client side (tests, benches, examples).
pub fn tokens_json(m: &Matrix) -> Json {
    Json::Array(
        (0..m.rows())
            .map(|r| Json::Array(m.row(r).iter().map(|&v| Json::Number(v as f64)).collect()))
            .collect(),
    )
}

/// Encodes one prediction.
pub fn prediction_json(p: &Prediction) -> Json {
    Json::Object(vec![
        ("class".into(), Json::Number(p.class as f64)),
        (
            "logits".into(),
            Json::Array(p.logits.iter().map(|&l| Json::Number(l as f64)).collect()),
        ),
    ])
}

/// Summarizes one stage histogram: observation count, mean and
/// interpolated p50/p99 (the full bucket series lives on
/// `/v1/metrics`).
fn stage_json(h: &HistogramSnapshot) -> Json {
    Json::Object(vec![
        ("count".into(), Json::Number(h.count as f64)),
        ("mean_s".into(), Json::Number(h.mean_s())),
        ("p50_s".into(), Json::Number(h.quantile(0.50))),
        ("p99_s".into(), Json::Number(h.quantile(0.99))),
    ])
}

fn model_stats_json(m: &ModelStats) -> Json {
    let opt_str = |v: &Option<String>| match v {
        Some(s) => Json::String(s.clone()),
        None => Json::Null,
    };
    Json::Object(vec![
        ("model".into(), Json::String(m.model.clone())),
        ("backend".into(), opt_str(&m.backend)),
        ("precision".into(), opt_str(&m.precision)),
        ("requests".into(), Json::Number(m.requests as f64)),
        ("batches".into(), Json::Number(m.batches as f64)),
        ("timed_out".into(), Json::Number(m.timed_out as f64)),
        ("slow".into(), Json::Number(m.slow as f64)),
        ("p50_latency_s".into(), Json::Number(m.p50_latency_s)),
        ("p99_latency_s".into(), Json::Number(m.p99_latency_s)),
        ("p999_latency_s".into(), Json::Number(m.p999_latency_s)),
        (
            "latency_samples_truncated".into(),
            Json::Bool(m.latency_samples_truncated),
        ),
        (
            "stages".into(),
            Json::Object(
                m.stages
                    .iter()
                    .map(|(name, h)| (name.to_string(), stage_json(h)))
                    .collect(),
            ),
        ),
        ("mean_batch_fill".into(), Json::Number(m.mean_batch_fill)),
        (
            "batch_fill".into(),
            Json::Array(
                m.batch_fill
                    .iter()
                    .map(|&c| Json::Number(c as f64))
                    .collect(),
            ),
        ),
        ("requests_per_s".into(), Json::Number(m.requests_per_s)),
        ("compute_batch_s".into(), Json::Number(m.compute_batch_s)),
        (
            "ops".into(),
            Json::Object(
                m.ops
                    .iter()
                    .map(|(name, h)| (name.to_string(), stage_json(h)))
                    .collect(),
            ),
        ),
        (
            "achieved_gops".into(),
            match m.achieved_gops {
                Some(g) => Json::Number(g),
                None => Json::Null,
            },
        ),
    ])
}

/// Encodes a statistics snapshot (the `GET /v1/stats` body).
pub fn stats_json(s: &ServerStats) -> Json {
    Json::Object(vec![
        ("uptime_s".into(), Json::Number(s.uptime_s)),
        (
            "models".into(),
            Json::Array(s.models.iter().map(model_stats_json).collect()),
        ),
    ])
}

/// Encodes the `GET /healthz` body.
pub fn health_json(models: &[String], queued: usize, uptime_s: f64) -> Json {
    Json::Object(vec![
        ("status".into(), Json::String("ok".into())),
        ("uptime_s".into(), Json::Number(uptime_s)),
        (
            "models".into(),
            Json::Array(models.iter().map(|m| Json::String(m.clone())).collect()),
        ),
        ("queued".into(), Json::Number(queued as f64)),
    ])
}

/// One model's deep-health probe result: did a one-sample inference
/// through the full serving path come back, and how long it took.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProbe {
    /// Model id probed.
    pub model: String,
    /// Whether the probe came back with a prediction in budget.
    pub ok: bool,
    /// Probe round trip in seconds (submit → prediction or give-up).
    pub latency_s: f64,
}

/// Encodes the `GET /v1/health?deep=1` body: the shallow health fields
/// plus per-model probe results, `status` flipping to `degraded` when
/// any probe failed.
pub fn deep_health_json(
    models: &[String],
    queued: usize,
    uptime_s: f64,
    healthy: bool,
    probes: &[ModelProbe],
) -> Json {
    let status = if healthy { "ok" } else { "degraded" };
    Json::Object(vec![
        ("status".into(), Json::String(status.into())),
        ("uptime_s".into(), Json::Number(uptime_s)),
        (
            "models".into(),
            Json::Array(models.iter().map(|m| Json::String(m.clone())).collect()),
        ),
        ("queued".into(), Json::Number(queued as f64)),
        (
            "probes".into(),
            Json::Array(
                probes
                    .iter()
                    .map(|p| {
                        Json::Object(vec![
                            ("model".into(), Json::String(p.model.clone())),
                            ("ok".into(), Json::Bool(p.ok)),
                            ("latency_s".into(), Json::Number(p.latency_s)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Encodes the `GET /v1/trace` body: the drained event ring plus the
/// ring's lifetime eviction counter.
pub fn trace_json(events: &[TraceEvent], dropped: u64) -> Json {
    Json::Object(vec![
        (
            "events".into(),
            Json::Array(
                events
                    .iter()
                    .map(|e| {
                        Json::Object(vec![
                            ("seq".into(), Json::Number(e.seq as f64)),
                            ("at_s".into(), Json::Number(e.at_s)),
                            ("kind".into(), Json::String(e.kind.as_str().into())),
                            ("model".into(), Json::String(e.model.clone())),
                            ("n".into(), Json::Number(e.n as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("dropped".into(), Json::Number(dropped as f64)),
    ])
}

/// Encodes one span-tree node recursively: name, duration, children.
pub fn span_json(span: &Span) -> Json {
    Json::Object(vec![
        ("name".into(), Json::String(span.name.clone())),
        ("duration_s".into(), Json::Number(span.duration_s)),
        (
            "children".into(),
            Json::Array(span.children.iter().map(span_json).collect()),
        ),
    ])
}

/// Encodes a drained (or peeked) span-tree ring — the shared body shape
/// of `GET /v1/traces` and `GET /v1/slowlog`: the retained trees in
/// record order plus the ring's lifetime eviction counter.
pub fn traces_json(traces: &[FinishedTrace], dropped: u64) -> Json {
    Json::Object(vec![
        (
            "traces".into(),
            Json::Array(
                traces
                    .iter()
                    .map(|t| {
                        Json::Object(vec![
                            ("seq".into(), Json::Number(t.seq as f64)),
                            ("at_s".into(), Json::Number(t.at_s)),
                            ("trace_id".into(), Json::String(t.trace_id.clone())),
                            ("model".into(), Json::String(t.model.clone())),
                            ("sampled".into(), Json::Bool(t.sampled)),
                            ("kept".into(), Json::String(t.kept.into())),
                            ("total_s".into(), Json::Number(t.total_s)),
                            ("root".into(), span_json(&t.root)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("dropped".into(), Json::Number(dropped as f64)),
    ])
}

/// Encodes an error body: `{"error": "…"}`.
pub fn error_json(message: &str) -> String {
    Json::Object(vec![("error".into(), Json::String(message.into()))]).to_string()
}

#[cfg(test)]
// Exact float equality below asserts deterministic replay of seeded runs.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn single_and_batch_bodies_parse() {
        let single = parse(r#"{"tokens": [[1, 2], [3, 4]], "timeout_ms": 50}"#).unwrap();
        let p = parse_classify(&single).unwrap();
        assert!(!p.batch);
        assert_eq!(p.timeout_ms, Some(50));
        assert_eq!(p.items[0].shape(), (2, 2));
        assert_eq!(p.items[0].get(1, 0), 3.0);

        let batch = parse(r#"{"batch": [{"tokens": [[1]]}, {"tokens": [[2]]}]}"#).unwrap();
        let p = parse_classify(&batch).unwrap();
        assert!(p.batch);
        assert_eq!(p.items.len(), 2);
        assert_eq!(p.timeout_ms, None);
    }

    #[test]
    fn shape_violations_name_the_field() {
        for (body, needle) in [
            (r#"{}"#, "tokens"),
            (r#"{"tokens": []}"#, "empty"),
            (r#"{"tokens": [[]]}"#, "empty"),
            (r#"{"tokens": [[1], [1, 2]]}"#, "ragged"),
            (r#"{"tokens": [[true]]}"#, "not a number"),
            (r#"{"tokens": 3}"#, "array of rows"),
            (r#"{"batch": []}"#, "empty"),
            (r#"{"batch": [{}]}"#, "tokens"),
            (r#"{"tokens": [[1]], "timeout_ms": -4}"#, "timeout_ms"),
            (r#"{"tokens": [[1]], "timeout_ms": 1.5}"#, "timeout_ms"),
        ] {
            let err = parse_classify(&parse(body).unwrap()).expect_err(body);
            assert!(err.0.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn tokens_json_is_the_inverse_of_parse_tokens() {
        let m = Matrix::from_rows(&[&[0.5f32, -1.25], &[f32::from_bits(0x3f80_0001), 0.0]]);
        let body = Json::Object(vec![("tokens".into(), tokens_json(&m))]).to_string();
        let back = parse_classify(&parse(&body).unwrap()).unwrap();
        assert_eq!(back.items[0].as_slice(), m.as_slice());
    }

    #[test]
    fn prediction_logits_round_trip_bit_exactly() {
        let p = Prediction {
            class: 3,
            logits: vec![0.1f32, -2.5e-8, f32::from_bits(0x3f80_0001)],
        };
        let encoded = prediction_json(&p).to_string();
        let back = parse(&encoded).unwrap();
        let logits: Vec<f32> = back
            .get("logits")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap() as f32)
            .collect();
        for (a, b) in logits.iter().zip(&p.logits) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.get("class").unwrap().as_u64(), Some(3));
    }
}
