//! The monitoring side of the ViTCoD serving stack: everything that
//! *watches* a running `vitcod-transport` replica from outside the
//! process boundary.
//!
//! The serving crates export; this crate consumes. Four pieces:
//!
//! - [`promtext`] — a strict parser for the Prometheus text exposition
//!   format `0.0.4` the transport renders at `GET /v1/metrics`. This is
//!   the shared source of truth for both the monitor binary and the
//!   transport's own e2e tests (which cross-check the exposition
//!   against `/v1/stats` through this parser).
//! - [`scrape`] — a polling scraper over the transport's blocking
//!   [`vitcod_transport::HttpClient`]: connect, `GET /v1/metrics`,
//!   parse, repeat, across one or more endpoints.
//! - [`series`] — fixed-capacity time-series rings with counter-reset
//!   tolerant `delta`/`rate` derivation, the storage behind the SLO
//!   windows.
//! - [`slo`] — a multi-window burn-rate alert engine: availability and
//!   latency objectives evaluated over a fast and a slow window, with a
//!   `pending → firing → resolved` state machine and a transition log
//!   suitable for `alerts.json`.
//!
//! The `vitcod-obs` binary ties them together: poll endpoints on an
//! interval, feed the trackers, and write the alert transitions out as
//! JSON. The load harness (`crates/bench`) drives the same library
//! in-process for its degradation scenario, so the alert math that
//! gates CI is the alert math the monitor ships.

#![forbid(unsafe_code)]
// The monitor must not panic on malformed remote data (a scrape target
// is untrusted input); clippy enforces the unwrap half at compile time.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod promtext;
pub mod scrape;
pub mod series;
pub mod slo;

pub use promtext::{check_histogram, good_under, good_under_all, Exposition, PromError, Sample};
pub use scrape::{fetch_metrics, Scrape, ScrapeError, Scraper};
pub use series::{CounterSeries, GaugeSeries};
pub use slo::{AlertState, Objective, SloConfig, SloTracker, Transition};
