//! Fixed-capacity time-series rings — the storage behind the SLO
//! windows.
//!
//! Two flavours: [`GaugeSeries`] keeps raw `(t, value)` points;
//! [`CounterSeries`] additionally corrects for counter resets (a
//! restarted replica re-exports from zero) so `delta`/`rate` stay
//! monotone across restarts. Both are bounded: pushing past capacity
//! evicts the oldest point, so a long-running monitor's memory is flat
//! no matter how long it polls.

use std::collections::VecDeque;

/// A bounded ring of `(t_s, value)` gauge observations.
#[derive(Debug, Clone)]
pub struct GaugeSeries {
    cap: usize,
    points: VecDeque<(f64, f64)>,
}

impl GaugeSeries {
    /// An empty ring holding at most `cap` points (`cap` ≥ 1 enforced).
    #[must_use]
    pub fn new(cap: usize) -> GaugeSeries {
        GaugeSeries {
            cap: cap.max(1),
            points: VecDeque::new(),
        }
    }

    /// Appends an observation, evicting the oldest at capacity.
    /// Out-of-order timestamps (clock skew between scrapes) are
    /// dropped rather than corrupting window math.
    pub fn push(&mut self, t_s: f64, value: f64) {
        if self.points.back().is_some_and(|&(last, _)| t_s < last) {
            return;
        }
        if self.points.len() == self.cap {
            self.points.pop_front();
        }
        self.points.push_back((t_s, value));
    }

    /// The most recent observation.
    #[must_use]
    pub fn latest(&self) -> Option<(f64, f64)> {
        self.points.back().copied()
    }

    /// Number of retained points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Maximum value among points with `t_s >= latest_t - window_s`.
    #[must_use]
    pub fn max_over(&self, window_s: f64) -> Option<f64> {
        let (latest_t, _) = self.latest()?;
        self.points
            .iter()
            .filter(|&&(t, _)| t >= latest_t - window_s)
            .map(|&(_, v)| v)
            .max_by(f64::total_cmp)
    }
}

/// A bounded ring of cumulative-counter observations with reset
/// correction: each pushed raw total is turned into a corrected
/// monotone total by carrying an offset across resets.
#[derive(Debug, Clone)]
pub struct CounterSeries {
    ring: GaugeSeries,
    last_raw: f64,
    offset: f64,
}

impl CounterSeries {
    /// An empty ring holding at most `cap` points.
    #[must_use]
    pub fn new(cap: usize) -> CounterSeries {
        CounterSeries {
            ring: GaugeSeries::new(cap),
            last_raw: 0.0,
            offset: 0.0,
        }
    }

    /// Appends a raw cumulative total. A raw value below the previous
    /// one means the target restarted: the previous total folds into
    /// the offset, so the corrected series never decreases.
    pub fn push(&mut self, t_s: f64, raw: f64) {
        if raw < self.last_raw {
            self.offset += self.last_raw;
        }
        self.last_raw = raw;
        self.ring.push(t_s, raw + self.offset);
    }

    /// The corrected (monotone) latest total.
    #[must_use]
    pub fn latest(&self) -> Option<(f64, f64)> {
        self.ring.latest()
    }

    /// Increase over the trailing `window_s`: latest corrected total
    /// minus the total at the window start (the newest point at or
    /// before `latest_t - window_s`, falling back to the oldest
    /// retained point when the ring does not yet span the window).
    /// `None` until two points exist.
    #[must_use]
    pub fn delta(&self, window_s: f64) -> Option<f64> {
        self.baseline(window_s).map(|(b, l)| l.1 - b.1)
    }

    /// [`CounterSeries::delta`] divided by the actual elapsed seconds
    /// between the two points used (not the nominal window, so a short
    /// history does not understate the rate).
    #[must_use]
    pub fn rate(&self, window_s: f64) -> Option<f64> {
        let (b, l) = self.baseline(window_s)?;
        let dt = l.0 - b.0;
        (dt > 0.0).then(|| (l.1 - b.1) / dt)
    }

    fn baseline(&self, window_s: f64) -> Option<((f64, f64), (f64, f64))> {
        let latest = self.ring.latest()?;
        if self.ring.points.len() < 2 {
            return None;
        }
        let start = latest.0 - window_s;
        let baseline = self
            .ring
            .points
            .iter()
            .rev()
            .skip(1) // never difference the latest point against itself
            .find(|&&(t, _)| t <= start)
            .or_else(|| self.ring.points.front())
            .copied()?;
        Some((baseline, latest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_ring_is_bounded_and_drops_out_of_order() {
        let mut g = GaugeSeries::new(3);
        for i in 0..10 {
            g.push(i as f64, i as f64 * 2.0);
        }
        assert_eq!(g.len(), 3);
        assert_eq!(g.latest(), Some((9.0, 18.0)));
        g.push(5.0, 100.0); // stale timestamp: ignored
        assert_eq!(g.latest(), Some((9.0, 18.0)));
        assert_eq!(g.max_over(2.0), Some(18.0));
        assert_eq!(g.max_over(100.0), Some(18.0));
    }

    #[test]
    fn counter_delta_and_rate_use_window_baseline() {
        let mut c = CounterSeries::new(64);
        for i in 0..=10 {
            c.push(i as f64, (i * 10) as f64); // +10 per second
        }
        assert_eq!(c.delta(4.0), Some(40.0));
        assert_eq!(c.rate(4.0), Some(10.0));
        // Window longer than history: falls back to the oldest point.
        assert_eq!(c.delta(100.0), Some(100.0));
        assert_eq!(c.rate(100.0), Some(10.0));
        // One point only: no delta.
        let mut one = CounterSeries::new(8);
        one.push(0.0, 5.0);
        assert_eq!(one.delta(10.0), None);
    }

    #[test]
    fn counter_reset_folds_into_offset() {
        let mut c = CounterSeries::new(64);
        c.push(0.0, 100.0);
        c.push(1.0, 150.0);
        c.push(2.0, 20.0); // restart: raw fell below previous
        c.push(3.0, 40.0);
        // Corrected totals: 100, 150, 170, 190 → monotone.
        assert_eq!(c.latest(), Some((3.0, 190.0)));
        assert_eq!(c.delta(10.0), Some(90.0));
    }
}
