//! Multi-window burn-rate SLO alerting.
//!
//! An SLO is "at most `error_budget` of requests may be bad". The
//! *burn rate* over a window is the observed bad fraction divided by
//! the budget: burn 1.0 consumes the budget exactly on schedule,
//! burn 10 consumes it ten times too fast. Following the classic
//! multi-window recipe, an alert arms on the **fast** window (quick to
//! react) and fires only when the **slow** window agrees (immune to
//! blips), then resolves when the fast window clears:
//!
//! ```text
//! Inactive ──fast ≥ thr──▶ Pending ──fast ∧ slow ≥ thr──▶ Firing
//!     ▲                       │fast < thr                   │fast < thr
//!     │                       ▼                             ▼
//!     └────slow < thr──── Resolved ◀──────────────────── (from Firing)
//!                             │fast ≥ thr (re-breach)
//!                             └──────────▶ Pending
//! ```
//!
//! `Resolved` is a real state, not a terminal event: the alert lingers
//! there while the slow window still carries the incident's bad
//! events, so a re-breach re-arms instantly instead of looking like a
//! fresh incident.
//!
//! [`SloTracker`] is deliberately clock-free: callers feed explicit
//! `(t_s, good_total, bad_total)` cumulative observations and call
//! [`SloTracker::eval`] with the same timestamps, so the exact alert
//! sequence for a synthetic series is unit-testable.

use std::fmt;

use crate::series::CounterSeries;

/// How many counter points each window ring retains. At the monitor's
/// default 500 ms poll interval this spans over eight minutes — far
/// past any sane slow window for a load-test-scale SLO.
const SERIES_CAPACITY: usize = 1024;

/// What counts as a bad event for an objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Bad = requests that never produced a prediction (timeouts).
    Availability,
    /// Bad = requests slower than this many seconds end to end.
    Latency {
        /// The latency threshold in seconds.
        threshold_s: f64,
    },
}

impl Objective {
    /// Short wire name for reports (`"availability"` / `"latency"`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Objective::Availability => "availability",
            Objective::Latency { .. } => "latency",
        }
    }
}

/// One SLO: an objective, a budget, and the two burn windows.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Alert name carried into the transition log.
    pub name: String,
    /// What counts as bad.
    pub objective: Objective,
    /// Allowed bad fraction (0 < budget < 1), e.g. `0.01` for 99%.
    pub error_budget: f64,
    /// The fast (arming/resolving) window, seconds.
    pub fast_window_s: f64,
    /// The slow (confirming) window, seconds.
    pub slow_window_s: f64,
    /// Burn threshold the fast window must reach.
    pub fast_burn: f64,
    /// Burn threshold the slow window must reach to fire.
    pub slow_burn: f64,
}

impl SloConfig {
    /// A load-test-scale availability SLO: 99% of requests complete,
    /// fast window 5 s at burn 10, slow window 30 s at burn 2.
    #[must_use]
    pub fn availability(name: &str) -> SloConfig {
        SloConfig {
            name: name.to_string(),
            objective: Objective::Availability,
            error_budget: 0.01,
            fast_window_s: 5.0,
            slow_window_s: 30.0,
            fast_burn: 10.0,
            slow_burn: 2.0,
        }
    }

    /// A load-test-scale latency SLO: 95% of requests under
    /// `threshold_s`, same windows as [`SloConfig::availability`].
    #[must_use]
    pub fn latency(name: &str, threshold_s: f64) -> SloConfig {
        SloConfig {
            name: name.to_string(),
            objective: Objective::Latency { threshold_s },
            error_budget: 0.05,
            fast_window_s: 5.0,
            slow_window_s: 30.0,
            fast_burn: 10.0,
            slow_burn: 2.0,
        }
    }
}

/// The alert state machine's states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// No breach anywhere.
    Inactive,
    /// Fast window breached; waiting for the slow window to confirm.
    Pending,
    /// Both windows breached: the alert is live.
    Firing,
    /// Fast window cleared after firing; slow window still carries the
    /// incident.
    Resolved,
}

impl AlertState {
    /// Lower-case wire name (`"inactive"`, `"pending"`, …).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

impl fmt::Display for AlertState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded state change.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Alert name (from [`SloConfig::name`]).
    pub alert: String,
    /// Evaluation timestamp.
    pub at_s: f64,
    /// State before.
    pub from: AlertState,
    /// State after.
    pub to: AlertState,
    /// Fast-window burn at the transition.
    pub fast_burn: f64,
    /// Slow-window burn at the transition.
    pub slow_burn: f64,
}

/// Tracks one SLO: feed cumulative good/bad totals, evaluate, and the
/// state machine walks `pending → firing → resolved`.
#[derive(Debug, Clone)]
pub struct SloTracker {
    cfg: SloConfig,
    good: CounterSeries,
    bad: CounterSeries,
    state: AlertState,
    transitions: Vec<Transition>,
}

impl SloTracker {
    /// A fresh tracker in [`AlertState::Inactive`].
    #[must_use]
    pub fn new(cfg: SloConfig) -> SloTracker {
        SloTracker {
            cfg,
            good: CounterSeries::new(SERIES_CAPACITY),
            bad: CounterSeries::new(SERIES_CAPACITY),
            state: AlertState::Inactive,
            transitions: Vec::new(),
        }
    }

    /// The configuration this tracker was built with.
    #[must_use]
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Records one scrape: cumulative good and bad event totals at
    /// `t_s`. Totals may reset (replica restart); the series correct
    /// for that.
    pub fn observe(&mut self, t_s: f64, good_total: f64, bad_total: f64) {
        self.good.push(t_s, good_total);
        self.bad.push(t_s, bad_total);
    }

    /// Burn rate over the trailing `window_s`: bad fraction of the
    /// window's events divided by the budget. Zero while fewer than
    /// two observations (or zero events) span the window.
    #[must_use]
    pub fn burn(&self, window_s: f64) -> f64 {
        let bad = self.bad.delta(window_s).unwrap_or(0.0);
        let good = self.good.delta(window_s).unwrap_or(0.0);
        let total = good + bad;
        if total <= 0.0 {
            return 0.0;
        }
        (bad / total) / self.cfg.error_budget
    }

    /// Current alert state.
    #[must_use]
    pub fn state(&self) -> AlertState {
        self.state
    }

    /// Every transition recorded so far, oldest first.
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Evaluates the state machine at `t_s` against the latest
    /// observations; returns the transition if the state changed.
    pub fn eval(&mut self, t_s: f64) -> Option<Transition> {
        let fast = self.burn(self.cfg.fast_window_s);
        let slow = self.burn(self.cfg.slow_window_s);
        let fast_hot = fast >= self.cfg.fast_burn;
        let slow_hot = slow >= self.cfg.slow_burn;
        let next = match self.state {
            AlertState::Inactive if fast_hot => AlertState::Pending,
            AlertState::Pending if fast_hot && slow_hot => AlertState::Firing,
            AlertState::Pending if !fast_hot => AlertState::Inactive,
            AlertState::Firing if !fast_hot => AlertState::Resolved,
            AlertState::Resolved if fast_hot => AlertState::Pending,
            AlertState::Resolved if !slow_hot => AlertState::Inactive,
            same => same,
        };
        if next == self.state {
            return None;
        }
        let t = Transition {
            alert: self.cfg.name.clone(),
            at_s: t_s,
            from: self.state,
            to: next,
            fast_burn: fast,
            slow_burn: slow,
        };
        self.state = next;
        self.transitions.push(t.clone());
        Some(t)
    }
}

#[cfg(test)]
// Exact float equality below checks hand-computed burn rates.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn cfg() -> SloConfig {
        SloConfig {
            name: "avail".to_string(),
            objective: Objective::Availability,
            error_budget: 0.01,
            fast_window_s: 4.0,
            slow_window_s: 12.0,
            fast_burn: 10.0,
            // With a 3:1 window ratio the slow threshold must sit high
            // enough that a single-scrape blip cannot confirm: a blip
            // hot enough to arm (≥ 10% of a 4 s window) is at most ~4%
            // of the 12 s window, safely under 6% (burn 6).
            slow_burn: 6.0,
        }
    }

    /// Walks a tracker through `(t, good, bad)` points, collecting the
    /// `(t, from, to)` of every transition.
    fn walk(points: &[(f64, f64, f64)]) -> (SloTracker, Vec<(f64, AlertState, AlertState)>) {
        let mut tr = SloTracker::new(cfg());
        let mut out = Vec::new();
        for &(t, g, b) in points {
            tr.observe(t, g, b);
            if let Some(x) = tr.eval(t) {
                out.push((x.at_s, x.from, x.to));
            }
        }
        (tr, out)
    }

    #[test]
    fn burn_math_matches_hand_computation() {
        let mut tr = SloTracker::new(cfg());
        // 100 req/s, 20% bad from t=4 on.
        for t in 0..=4 {
            tr.observe(t as f64, (t * 100) as f64, 0.0);
        }
        for t in 5..=8 {
            tr.observe(t as f64, (400 + (t - 4) * 80) as f64, ((t - 4) * 20) as f64);
        }
        // Fast window (4 s): 320 good + 80 bad → bad fraction 0.2,
        // burn = 0.2 / 0.01 = 20.
        assert_eq!(tr.burn(4.0), 20.0);
        // Slow window (12 s, clipped to history): 720 good + 80 bad.
        assert_eq!(tr.burn(12.0), (80.0 / 800.0) / 0.01);
    }

    #[test]
    fn full_incident_walks_pending_firing_resolved_inactive() {
        let mut pts = Vec::new();
        // Healthy for 8 s.
        for t in 0..=8 {
            pts.push((t as f64, (t * 100) as f64, 0.0));
        }
        // Incident: 30% of requests bad for 8 s (burn 30 on both
        // windows once they fill).
        let (mut g, mut b) = (800.0, 0.0);
        for t in 9..=16 {
            g += 70.0;
            b += 30.0;
            pts.push((t as f64, g, b));
        }
        // Recovery: clean traffic again.
        for t in 17..=40 {
            g += 100.0;
            pts.push((t as f64, g, b));
        }
        let (tr, trans) = walk(&pts);
        let seq: Vec<(AlertState, AlertState)> = trans.iter().map(|&(_, f, t)| (f, t)).collect();
        assert_eq!(
            seq,
            vec![
                (AlertState::Inactive, AlertState::Pending),
                (AlertState::Pending, AlertState::Firing),
                (AlertState::Firing, AlertState::Resolved),
                (AlertState::Resolved, AlertState::Inactive),
            ],
            "{trans:?}"
        );
        // Arming takes two bad-heavy scrapes: at 30% bad, one second
        // of incident is 7.5% of the 4 s window (burn 7.5 < 10), two
        // seconds are 15%.
        assert_eq!(trans[0].0, 10.0);
        // Firing waits a further scrape for the slow window to cross
        // its threshold against the clean traffic it still holds.
        assert!(trans[1].0 > trans[0].0);
        assert!(trans[2].0 > 16.0, "resolve only after the incident ends");
        assert!(trans[3].0 > trans[2].0);
        assert_eq!(tr.state(), AlertState::Inactive);
    }

    #[test]
    fn blip_arms_then_disarms_without_firing() {
        let mut pts = Vec::new();
        for t in 0..=8 {
            pts.push((t as f64, (t * 100) as f64, 0.0));
        }
        // One scrape with 50% bad (enough to arm the fast window),
        // then clean again.
        pts.push((9.0, 850.0, 50.0));
        let (mut g, b) = (850.0, 50.0);
        for t in 10..=20 {
            g += 100.0;
            pts.push((t as f64, g, b));
        }
        let (tr, trans) = walk(&pts);
        let seq: Vec<(AlertState, AlertState)> = trans.iter().map(|&(_, f, t)| (f, t)).collect();
        assert_eq!(
            seq,
            vec![
                (AlertState::Inactive, AlertState::Pending),
                (AlertState::Pending, AlertState::Inactive),
            ],
            "{trans:?}"
        );
        assert_eq!(tr.state(), AlertState::Inactive);
        assert!(
            !trans.iter().any(|&(_, _, to)| to == AlertState::Firing),
            "a one-scrape blip must never fire"
        );
    }

    #[test]
    fn rebreach_from_resolved_rearms_to_pending() {
        let mut pts = Vec::new();
        for t in 0..=4 {
            pts.push((t as f64, (t * 100) as f64, 0.0));
        }
        // Incident long enough to fire.
        let (mut g, mut b) = (400.0, 0.0);
        for t in 5..=12 {
            g += 70.0;
            b += 30.0;
            pts.push((t as f64, g, b));
        }
        // Brief recovery (fast window clears → Resolved)…
        for t in 13..=17 {
            g += 100.0;
            pts.push((t as f64, g, b));
        }
        let (mut tr, trans) = walk(&pts);
        assert_eq!(tr.state(), AlertState::Resolved, "{trans:?}");
        // …then the incident returns, worse (70% bad — enough to heat
        // the fast window in one scrape), while slow is still hot.
        g += 30.0;
        b += 70.0;
        tr.observe(18.0, g, b);
        let x = tr.eval(18.0).expect("re-breach transitions");
        assert_eq!((x.from, x.to), (AlertState::Resolved, AlertState::Pending));
    }

    #[test]
    fn counter_reset_does_not_fake_an_incident() {
        let mut tr = SloTracker::new(cfg());
        for t in 0..=5 {
            tr.observe(t as f64, (t * 100) as f64, 2.0);
            assert!(tr.eval(t as f64).is_none());
        }
        // Replica restart: totals fall to near zero. Without reset
        // correction the bad delta would go negative / the good delta
        // negative, producing nonsense burns.
        tr.observe(6.0, 50.0, 0.0);
        assert!(tr.eval(6.0).is_none());
        tr.observe(7.0, 150.0, 0.0);
        assert!(tr.eval(7.0).is_none());
        assert_eq!(tr.state(), AlertState::Inactive);
        assert!(tr.burn(4.0) < 10.0);
    }
}
