//! A polling scraper over the transport's blocking HTTP client.
//!
//! One scrape = connect, `GET /v1/metrics`, parse the exposition,
//! disconnect. Connections are per-poll rather than kept alive: a
//! monitor outlives replica restarts, and a fresh connect per tick
//! means a bounced replica is rediscovered with no reconnect logic.
//! [`Scraper`] fans one poll across every configured endpoint and
//! never fails as a whole — each endpoint reports its own
//! `Result`, so one dead replica cannot blind the monitor to the rest.

use std::fmt;
use std::io;

use vitcod_transport::HttpClient;

use crate::promtext::{Exposition, PromError};

/// Why one endpoint's scrape failed.
#[derive(Debug)]
pub enum ScrapeError {
    /// Connect / request I/O failure.
    Io(io::Error),
    /// The endpoint answered with a non-200 status.
    Status(u16),
    /// The body was not valid text exposition.
    Parse(PromError),
}

impl fmt::Display for ScrapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScrapeError::Io(e) => write!(f, "scrape i/o: {e}"),
            ScrapeError::Status(s) => write!(f, "scrape got HTTP {s}"),
            ScrapeError::Parse(e) => write!(f, "scrape body: {e}"),
        }
    }
}

impl std::error::Error for ScrapeError {}

/// One successful scrape of one endpoint.
#[derive(Debug)]
pub struct Scrape {
    /// The endpoint polled (`host:port`).
    pub endpoint: String,
    /// Caller-supplied observation timestamp (seconds on the caller's
    /// clock — the scraper itself is clock-free).
    pub t_s: f64,
    /// The parsed exposition.
    pub exposition: Exposition,
}

/// Fetches and parses `GET /v1/metrics` from one endpoint over a fresh
/// connection.
///
/// # Errors
///
/// [`ScrapeError`] on connect/request failure, non-200 status, or a
/// body that fails exposition parsing.
pub fn fetch_metrics(endpoint: &str) -> Result<Exposition, ScrapeError> {
    let mut client = HttpClient::connect(endpoint).map_err(ScrapeError::Io)?;
    let resp = client.get("/v1/metrics").map_err(ScrapeError::Io)?;
    if resp.status != 200 {
        return Err(ScrapeError::Status(resp.status));
    }
    Exposition::parse(&resp.body_str()).map_err(ScrapeError::Parse)
}

/// A multi-endpoint poller.
#[derive(Debug, Clone)]
pub struct Scraper {
    endpoints: Vec<String>,
}

impl Scraper {
    /// A scraper over `endpoints` (`host:port` strings).
    #[must_use]
    pub fn new(endpoints: Vec<String>) -> Scraper {
        Scraper { endpoints }
    }

    /// The configured endpoints.
    #[must_use]
    pub fn endpoints(&self) -> &[String] {
        &self.endpoints
    }

    /// Polls every endpoint once, stamping successes with `t_s`.
    /// Always returns one entry per endpoint, in configuration order.
    pub fn poll(&self, t_s: f64) -> Vec<Result<Scrape, (String, ScrapeError)>> {
        self.endpoints
            .iter()
            .map(|ep| match fetch_metrics(ep) {
                Ok(exposition) => Ok(Scrape {
                    endpoint: ep.clone(),
                    t_s,
                    exposition,
                }),
                Err(e) => Err((ep.clone(), e)),
            })
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-value assertions on parsed integer-valued counters
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    /// Serves `body` as one canned HTTP response, then exits.
    fn canned_endpoint(status: u16, body: &str) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let body = body.to_string();
        std::thread::spawn(move || {
            if let Ok((mut stream, _)) = listener.accept() {
                let mut buf = [0u8; 4096];
                let _ = stream.read(&mut buf); // drain the request head
                let reason = if status == 200 { "OK" } else { "Err" };
                let resp = format!(
                    "HTTP/1.1 {status} {reason}\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                );
                let _ = stream.write_all(resp.as_bytes());
            }
        });
        addr
    }

    #[test]
    fn fetch_parses_a_canned_exposition() {
        let addr = canned_endpoint(
            200,
            "# TYPE vitcod_uptime_seconds gauge\nvitcod_uptime_seconds 3\n",
        );
        let exp = fetch_metrics(&addr).unwrap();
        assert_eq!(exp.one("vitcod_uptime_seconds", &[]).unwrap(), 3.0);
    }

    #[test]
    fn non_200_and_dead_endpoints_surface_as_errors() {
        let addr = canned_endpoint(503, "down");
        assert!(matches!(
            fetch_metrics(&addr),
            Err(ScrapeError::Status(503))
        ));
        // A port nothing listens on: connect fails, poll still returns
        // one entry per endpoint.
        let dead = canned_endpoint(200, "# TYPE x gauge\nx 1\n");
        let scraper = Scraper::new(vec![dead, "127.0.0.1:1".to_string()]);
        let polled = scraper.poll(0.5);
        assert_eq!(polled.len(), 2);
        assert!(polled[0].is_ok());
        assert!(matches!(&polled[1], Err((_, ScrapeError::Io(_)))));
    }
}
