//! Parser for the Prometheus text exposition format `0.0.4` — the body
//! of the transport's `GET /v1/metrics`.
//!
//! Strict-enough for a monitor that trusts nothing: every non-comment
//! line must be `name{labels} value` or `name value`, every sample's
//! family must be preceded by a `# TYPE` line, and label values must
//! unescape cleanly (`\\`, `\"`, `\n`). Malformed input is an error,
//! never a panic — a scrape target is remote data.

use std::collections::BTreeMap;
use std::fmt;

/// One parsed sample: metric name, sorted label set, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The full series name (`vitcod_request_latency_seconds_bucket`).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: BTreeMap<String, String>,
    /// The sample value (`+Inf` parses to [`f64::INFINITY`]).
    pub value: f64,
}

/// Why a body failed to parse or a lookup failed.
#[derive(Debug, Clone, PartialEq)]
pub enum PromError {
    /// A line that is neither comment nor `name[{labels}] value`.
    Syntax {
        /// The offending line, verbatim.
        line: String,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// A sample appeared before any `# TYPE` line for its family.
    MissingType {
        /// The family name the sample belongs to.
        family: String,
    },
    /// A lookup matched no sample.
    MissingSample {
        /// The series + label filter that matched nothing.
        series: String,
    },
    /// A lookup expected one sample but matched several.
    AmbiguousSample {
        /// The series + label filter that matched more than one.
        series: String,
    },
    /// A histogram family violated an invariant (non-cumulative
    /// buckets, missing `+Inf`, `+Inf` != `_count`, …).
    Histogram {
        /// The histogram family name.
        family: String,
        /// Which invariant broke.
        reason: String,
    },
}

impl fmt::Display for PromError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PromError::Syntax { line, reason } => {
                write!(f, "bad exposition line {line:?}: {reason}")
            }
            PromError::MissingType { family } => {
                write!(f, "sample family {family:?} has no preceding # TYPE")
            }
            PromError::MissingSample { series } => write!(f, "no sample matches {series}"),
            PromError::AmbiguousSample { series } => {
                write!(f, "more than one sample matches {series}")
            }
            PromError::Histogram { family, reason } => {
                write!(f, "histogram {family:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for PromError {}

/// A parsed exposition body: the `# TYPE` table plus every sample in
/// document order.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// Family name → declared type (`counter` / `gauge` / `histogram`).
    pub types: BTreeMap<String, String>,
    /// Every sample line, in document order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// Parses a full exposition body.
    ///
    /// # Errors
    ///
    /// [`PromError::Syntax`] on a malformed line,
    /// [`PromError::MissingType`] when a sample has no `# TYPE`.
    pub fn parse(text: &str) -> Result<Exposition, PromError> {
        let mut types = BTreeMap::new();
        let mut samples = Vec::new();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.splitn(2, ' ');
                let name = it.next().unwrap_or_default().to_string();
                let kind = it
                    .next()
                    .ok_or(PromError::Syntax {
                        line: line.to_string(),
                        reason: "TYPE line needs a kind",
                    })?
                    .to_string();
                if !matches!(kind.as_str(), "counter" | "gauge" | "histogram") {
                    return Err(PromError::Syntax {
                        line: line.to_string(),
                        reason: "unknown TYPE kind",
                    });
                }
                types.insert(name, kind);
                continue;
            }
            if line.starts_with('#') {
                continue; // HELP or comment
            }
            let (series, value) = line.rsplit_once(' ').ok_or(PromError::Syntax {
                line: line.to_string(),
                reason: "sample line needs a value",
            })?;
            let value = if value == "+Inf" {
                f64::INFINITY
            } else {
                value.parse::<f64>().map_err(|_| PromError::Syntax {
                    line: line.to_string(),
                    reason: "unparseable value",
                })?
            };
            let (name, labels) = match series.split_once('{') {
                None => (series.to_string(), BTreeMap::new()),
                Some((name, rest)) => {
                    let inner = rest.strip_suffix('}').ok_or(PromError::Syntax {
                        line: line.to_string(),
                        reason: "labels must close with }",
                    })?;
                    (name.to_string(), parse_labels(inner, line)?)
                }
            };
            // Each sample's family (name minus a histogram suffix) must
            // have a TYPE line before it.
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|s| name.strip_suffix(s))
                .filter(|f| types.contains_key(*f))
                .unwrap_or(&name);
            if !types.contains_key(family) {
                return Err(PromError::MissingType {
                    family: family.to_string(),
                });
            }
            samples.push(Sample {
                name,
                labels,
                value,
            });
        }
        Ok(Exposition { types, samples })
    }

    /// All samples of `name` whose labels include every `(k, v)` pair.
    #[must_use]
    pub fn with(&self, name: &str, want: &[(&str, &str)]) -> Vec<&Sample> {
        self.samples
            .iter()
            .filter(|s| {
                s.name == name
                    && want
                        .iter()
                        .all(|(k, v)| s.labels.get(*k).map(String::as_str) == Some(*v))
            })
            .collect()
    }

    /// The single sample of `name` matching the label pairs.
    ///
    /// # Errors
    ///
    /// [`PromError::MissingSample`] / [`PromError::AmbiguousSample`].
    pub fn one(&self, name: &str, want: &[(&str, &str)]) -> Result<f64, PromError> {
        let hits = self.with(name, want);
        match hits.len() {
            0 => Err(PromError::MissingSample {
                series: format!("{name}{want:?}"),
            }),
            1 => Ok(hits[0].value),
            _ => Err(PromError::AmbiguousSample {
                series: format!("{name}{want:?}"),
            }),
        }
    }

    /// Sum of every sample of `name` matching the label pairs — the
    /// way a monitor aggregates a per-model counter family into one
    /// total (e.g. `vitcod_requests_total` across models).
    #[must_use]
    pub fn sum(&self, name: &str, want: &[(&str, &str)]) -> f64 {
        self.with(name, want).iter().map(|s| s.value).sum()
    }
}

fn parse_labels(inner: &str, line: &str) -> Result<BTreeMap<String, String>, PromError> {
    let syntax = |reason: &'static str| PromError::Syntax {
        line: line.to_string(),
        reason,
    };
    let mut labels = BTreeMap::new();
    let mut rest = inner;
    while !rest.is_empty() {
        let eq = rest.find("=\"").ok_or_else(|| syntax("label needs =\""))?;
        let key = rest[..eq].trim_start_matches(',').to_string();
        rest = &rest[eq + 2..];
        // Find the closing quote, honouring backslash escapes.
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let close = loop {
            let (i, c) = chars
                .next()
                .ok_or_else(|| syntax("unterminated label value"))?;
            match c {
                '\\' => {
                    let (_, e) = chars.next().ok_or_else(|| syntax("dangling escape"))?;
                    value.push(match e {
                        'n' => '\n',
                        other => other, // \" and \\ unescape to themselves
                    });
                }
                '"' => break i,
                other => value.push(other),
            }
        };
        labels.insert(key, value);
        rest = &rest[close + 1..];
    }
    Ok(labels)
}

/// Validates one histogram family entry and returns its `_count`: the
/// `_bucket` series must be cumulative in `le`, close with `+Inf` equal
/// to `_count`, and `_sum`/`_count` must exist.
///
/// # Errors
///
/// [`PromError::Histogram`] naming the broken invariant.
pub fn check_histogram(
    exp: &Exposition,
    name: &str,
    labels: &[(&str, &str)],
) -> Result<f64, PromError> {
    let broken = |reason: String| PromError::Histogram {
        family: name.to_string(),
        reason,
    };
    if exp.types.get(name).map(String::as_str) != Some("histogram") {
        return Err(broken("not declared TYPE histogram".to_string()));
    }
    let mut buckets: Vec<(f64, f64)> = Vec::new();
    for s in exp.with(&format!("{name}_bucket"), labels) {
        let le = s
            .labels
            .get("le")
            .ok_or_else(|| broken("bucket without le".to_string()))?;
        let le = if le == "+Inf" {
            f64::INFINITY
        } else {
            le.parse()
                .map_err(|_| broken(format!("unparseable le {le:?}")))?
        };
        buckets.push((le, s.value));
    }
    if buckets.is_empty() {
        return Err(broken(format!("no buckets for labels {labels:?}")));
    }
    buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
    if !buckets.windows(2).all(|w| w[1].1 >= w[0].1) {
        return Err(broken("buckets are not cumulative".to_string()));
    }
    let &(last_le, inf_count) = buckets.last().unwrap_or(&(0.0, 0.0));
    if !last_le.is_infinite() {
        return Err(broken("series does not close with +Inf".to_string()));
    }
    let count = exp.one(&format!("{name}_count"), labels)?;
    let sum = exp.one(&format!("{name}_sum"), labels)?;
    if (inf_count - count).abs() >= 0.5 {
        return Err(broken(format!("+Inf bucket {inf_count} != count {count}")));
    }
    if sum < 0.0 {
        return Err(broken(format!("negative sum {sum}")));
    }
    Ok(count)
}

/// The fraction of observations at or under `threshold` in one
/// histogram entry, from its cumulative buckets: the numerator is the
/// smallest bucket whose bound covers `threshold`. Returns
/// `(good, total)` so callers can difference the counts over time.
///
/// # Errors
///
/// [`PromError::Histogram`] when no finite bucket bound covers
/// `threshold`, plus anything [`check_histogram`] reports.
pub fn good_under(
    exp: &Exposition,
    name: &str,
    labels: &[(&str, &str)],
    threshold: f64,
) -> Result<(f64, f64), PromError> {
    let total = check_histogram(exp, name, labels)?;
    let mut best: Option<(f64, f64)> = None;
    for s in exp.with(&format!("{name}_bucket"), labels) {
        let Some(le) = s.labels.get("le") else {
            continue;
        };
        if le == "+Inf" {
            continue;
        }
        let le: f64 = le.parse().map_err(|_| PromError::Histogram {
            family: name.to_string(),
            reason: format!("unparseable le {le:?}"),
        })?;
        if le >= threshold && best.is_none_or(|(b, _)| le < b) {
            best = Some((le, s.value));
        }
    }
    let (_, good) = best.ok_or_else(|| PromError::Histogram {
        family: name.to_string(),
        reason: format!("no bucket bound covers threshold {threshold}"),
    })?;
    Ok((good, total))
}

/// [`good_under`] summed across every entry of the family (one per
/// label set, i.e. per model): the fleet-wide `(good, total)` a
/// latency SLO differences over time. `(0, 0)` when the family has no
/// entries yet (a replica that has served nothing).
///
/// # Errors
///
/// Anything [`good_under`] reports for any entry.
pub fn good_under_all(
    exp: &Exposition,
    name: &str,
    threshold: f64,
) -> Result<(f64, f64), PromError> {
    let count_name = format!("{name}_count");
    let mut good = 0.0;
    let mut total = 0.0;
    for s in exp.with(&count_name, &[]) {
        let labels: Vec<(&str, &str)> = s
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let (g, t) = good_under(exp, name, &labels, threshold)?;
        good += g;
        total += t;
    }
    Ok((good, total))
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-value assertions on parsed integer-valued counters
mod tests {
    use super::*;

    const BODY: &str = "\
# HELP vitcod_requests_total Requests served.
# TYPE vitcod_requests_total counter
vitcod_requests_total{model=\"deit\\\"tiny\"} 6
vitcod_requests_total{model=\"other\"} 3
# TYPE vitcod_uptime_seconds gauge
vitcod_uptime_seconds 12.5
# TYPE vitcod_request_latency_seconds histogram
vitcod_request_latency_seconds_bucket{model=\"m\",le=\"0.1\"} 4
vitcod_request_latency_seconds_bucket{model=\"m\",le=\"0.5\"} 9
vitcod_request_latency_seconds_bucket{model=\"m\",le=\"+Inf\"} 10
vitcod_request_latency_seconds_sum{model=\"m\"} 1.25
vitcod_request_latency_seconds_count{model=\"m\"} 10
";

    #[test]
    fn parses_types_labels_and_escapes() {
        let exp = Exposition::parse(BODY).unwrap();
        assert_eq!(exp.types.get("vitcod_requests_total").unwrap(), "counter");
        assert_eq!(
            exp.one("vitcod_requests_total", &[("model", "deit\"tiny")])
                .unwrap(),
            6.0
        );
        assert_eq!(exp.one("vitcod_uptime_seconds", &[]).unwrap(), 12.5);
        assert_eq!(exp.sum("vitcod_requests_total", &[]), 9.0);
        assert!(matches!(
            exp.one("vitcod_requests_total", &[]),
            Err(PromError::AmbiguousSample { .. })
        ));
        assert!(matches!(
            exp.one("vitcod_nope", &[]),
            Err(PromError::MissingSample { .. })
        ));
    }

    #[test]
    fn histogram_invariants_check_and_good_under_picks_covering_bucket() {
        let exp = Exposition::parse(BODY).unwrap();
        let count =
            check_histogram(&exp, "vitcod_request_latency_seconds", &[("model", "m")]).unwrap();
        assert_eq!(count, 10.0);
        let (good, total) = good_under(
            &exp,
            "vitcod_request_latency_seconds",
            &[("model", "m")],
            0.25,
        )
        .unwrap();
        assert_eq!((good, total), (9.0, 10.0));
        let (good, _) = good_under(
            &exp,
            "vitcod_request_latency_seconds",
            &[("model", "m")],
            0.1,
        )
        .unwrap();
        assert_eq!(good, 4.0);
        assert!(good_under(
            &exp,
            "vitcod_request_latency_seconds",
            &[("model", "m")],
            2.0
        )
        .is_err());
    }

    #[test]
    fn malformed_input_errors_instead_of_panicking() {
        assert!(matches!(
            Exposition::parse("orphan_sample 1\n"),
            Err(PromError::MissingType { .. })
        ));
        assert!(matches!(
            Exposition::parse("# TYPE x counter\nx{a=\"unterminated} 1\n"),
            Err(PromError::Syntax { .. })
        ));
        assert!(matches!(
            Exposition::parse("# TYPE x counter\nx notanumber\n"),
            Err(PromError::Syntax { .. })
        ));
        assert!(matches!(
            Exposition::parse("# TYPE x summary\n"),
            Err(PromError::Syntax { .. })
        ));
    }
}
