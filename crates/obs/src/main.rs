//! `vitcod-obs` — poll one or more serving replicas' `/v1/metrics`,
//! drive the burn-rate SLO trackers, and write the alert transitions
//! out as JSON.
//!
//! ```text
//! vitcod-obs --endpoint 127.0.0.1:8080 [--endpoint …]
//!            [--interval-ms 500] [--duration-s 10]
//!            [--latency-threshold-ms 250]
//!            [--out alerts.json] [--fail-on-fire]
//! ```
//!
//! Each endpoint gets two trackers: an availability SLO (bad =
//! timeouts) and a latency SLO (bad = requests over the threshold,
//! derived from the request-latency histogram buckets). Exit status is
//! `0` normally, `2` when `--fail-on-fire` is set and any alert
//! reached `firing` — that is the CI hook.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used)]

use std::process::ExitCode;
use std::time::{Duration, Instant};

use vitcod_obs::{good_under_all, AlertState, Scraper, SloConfig, SloTracker};
use vitcod_transport::Json;

struct Args {
    endpoints: Vec<String>,
    interval: Duration,
    duration: Duration,
    latency_threshold_s: f64,
    out: Option<String>,
    fail_on_fire: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        endpoints: Vec::new(),
        interval: Duration::from_millis(500),
        duration: Duration::from_secs(10),
        latency_threshold_s: 0.25,
        out: None,
        fail_on_fire: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--endpoint" => args.endpoints.push(value("--endpoint")?),
            "--interval-ms" => {
                let ms: u64 = value("--interval-ms")?
                    .parse()
                    .map_err(|_| "--interval-ms must be an integer".to_string())?;
                args.interval = Duration::from_millis(ms.max(1));
            }
            "--duration-s" => {
                let s: u64 = value("--duration-s")?
                    .parse()
                    .map_err(|_| "--duration-s must be an integer".to_string())?;
                args.duration = Duration::from_secs(s);
            }
            "--latency-threshold-ms" => {
                let ms: u64 = value("--latency-threshold-ms")?
                    .parse()
                    .map_err(|_| "--latency-threshold-ms must be an integer".to_string())?;
                args.latency_threshold_s = ms as f64 / 1000.0;
            }
            "--out" => args.out = Some(value("--out")?),
            "--fail-on-fire" => args.fail_on_fire = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.endpoints.is_empty() {
        return Err("at least one --endpoint is required".to_string());
    }
    Ok(args)
}

/// One endpoint's pair of trackers.
struct Monitored {
    endpoint: String,
    availability: SloTracker,
    latency: SloTracker,
    scrapes_ok: u64,
    scrape_errors: u64,
    ever_fired: bool,
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("vitcod-obs: {e}");
            eprintln!(
                "usage: vitcod-obs --endpoint host:port [--endpoint …] \
                 [--interval-ms N] [--duration-s N] [--latency-threshold-ms N] \
                 [--out alerts.json] [--fail-on-fire]"
            );
            return ExitCode::FAILURE;
        }
    };
    let scraper = Scraper::new(args.endpoints.clone());
    let mut monitored: Vec<Monitored> = args
        .endpoints
        .iter()
        .map(|ep| Monitored {
            endpoint: ep.clone(),
            availability: SloTracker::new(SloConfig::availability("availability")),
            latency: SloTracker::new(SloConfig::latency("latency", args.latency_threshold_s)),
            scrapes_ok: 0,
            scrape_errors: 0,
            ever_fired: false,
        })
        .collect();

    let start = Instant::now();
    while start.elapsed() < args.duration {
        let t_s = start.elapsed().as_secs_f64();
        for (result, mon) in scraper.poll(t_s).into_iter().zip(monitored.iter_mut()) {
            let scrape = match result {
                Ok(s) => s,
                Err((ep, e)) => {
                    mon.scrape_errors += 1;
                    eprintln!("vitcod-obs: scrape {ep}: {e}");
                    continue;
                }
            };
            mon.scrapes_ok += 1;
            let exp = &scrape.exposition;
            let requests = exp.sum("vitcod_requests_total", &[]);
            let timeouts = exp.sum("vitcod_timeouts_total", &[]);
            mon.availability.observe(t_s, requests, timeouts);
            if let Some(x) = mon.availability.eval(t_s) {
                println!(
                    "[{:7.2}s] {} availability: {} -> {} (fast burn {:.1}, slow burn {:.1})",
                    t_s, mon.endpoint, x.from, x.to, x.fast_burn, x.slow_burn
                );
            }
            match good_under_all(
                exp,
                "vitcod_request_latency_seconds",
                args.latency_threshold_s,
            ) {
                Ok((good, total)) => {
                    mon.latency.observe(t_s, good, total - good);
                    if let Some(x) = mon.latency.eval(t_s) {
                        println!(
                            "[{:7.2}s] {} latency: {} -> {} (fast burn {:.1}, slow burn {:.1})",
                            t_s, mon.endpoint, x.from, x.to, x.fast_burn, x.slow_burn
                        );
                    }
                }
                Err(e) => eprintln!("vitcod-obs: {}: latency histogram: {e}", mon.endpoint),
            }
            let firing = mon.availability.state() == AlertState::Firing
                || mon.latency.state() == AlertState::Firing;
            mon.ever_fired |= firing;
        }
        std::thread::sleep(args.interval);
    }

    let report = report_json(&args, &monitored);
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, report.to_string()) {
            eprintln!("vitcod-obs: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    } else {
        println!("{report}");
    }

    // A monitor that never reached its target observed nothing — the
    // "no alerts" result would be vacuous, so refuse to report success.
    if let Some(dead) = monitored.iter().find(|m| m.scrapes_ok == 0) {
        eprintln!(
            "vitcod-obs: every scrape of {} failed ({} attempts) — no data observed",
            dead.endpoint, dead.scrape_errors
        );
        return ExitCode::FAILURE;
    }
    let any_fired = monitored.iter().any(|m| m.ever_fired);
    if args.fail_on_fire && any_fired {
        eprintln!("vitcod-obs: an SLO alert fired (--fail-on-fire)");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

fn tracker_json(t: &SloTracker) -> Json {
    let cfg = t.config();
    Json::Object(vec![
        ("alert".into(), Json::String(cfg.name.clone())),
        (
            "objective".into(),
            Json::String(cfg.objective.kind().into()),
        ),
        ("error_budget".into(), Json::Number(cfg.error_budget)),
        ("fast_window_s".into(), Json::Number(cfg.fast_window_s)),
        ("slow_window_s".into(), Json::Number(cfg.slow_window_s)),
        (
            "final_state".into(),
            Json::String(t.state().as_str().into()),
        ),
        (
            "transitions".into(),
            Json::Array(
                t.transitions()
                    .iter()
                    .map(|x| {
                        Json::Object(vec![
                            ("at_s".into(), Json::Number(x.at_s)),
                            ("from".into(), Json::String(x.from.as_str().into())),
                            ("to".into(), Json::String(x.to.as_str().into())),
                            ("fast_burn".into(), Json::Number(x.fast_burn)),
                            ("slow_burn".into(), Json::Number(x.slow_burn)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn report_json(args: &Args, monitored: &[Monitored]) -> Json {
    Json::Object(vec![
        (
            "interval_ms".into(),
            Json::Number(args.interval.as_millis() as f64),
        ),
        (
            "duration_s".into(),
            Json::Number(args.duration.as_secs_f64()),
        ),
        (
            "latency_threshold_s".into(),
            Json::Number(args.latency_threshold_s),
        ),
        (
            "endpoints".into(),
            Json::Array(
                monitored
                    .iter()
                    .map(|m| {
                        Json::Object(vec![
                            ("endpoint".into(), Json::String(m.endpoint.clone())),
                            ("scrapes_ok".into(), Json::Number(m.scrapes_ok as f64)),
                            ("scrape_errors".into(), Json::Number(m.scrape_errors as f64)),
                            (
                                "alerts".into(),
                                Json::Array(vec![
                                    tracker_json(&m.availability),
                                    tracker_json(&m.latency),
                                ]),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}
