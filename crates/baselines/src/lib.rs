//! Baseline platforms for the ViTCoD evaluation (paper Sec. VI-A).
//!
//! The paper benchmarks ViTCoD against five baselines:
//!
//! * three general computing platforms — a CPU (Intel Xeon Gold 6230R),
//!   an EdgeGPU (Nvidia Jetson Xavier NX; a TX2-class device is used for
//!   the Fig. 4 latency profiling) and a GPU (Nvidia RTX 2080 Ti) —
//!   modelled here as [`GeneralPlatform`] roofline models with published
//!   peak throughput/bandwidth and documented effective-utilization
//!   factors for small-batch attention kernels;
//! * two prior-art attention accelerators — **SpAtten** (cascade
//!   token/head pruning with on-the-fly top-k ranking) and **Sanger**
//!   (low-precision mask prediction feeding a reconfigurable S-stationary
//!   array) — modelled as behavioural cycle simulators
//!   ([`SpAttenSim`], [`SangerSim`]) given the *same* MAC count and DRAM
//!   bandwidth as the ViTCoD accelerator, matching the paper's "similar
//!   hardware configurations and areas for fair comparisons".
//!
//! All baselines emit [`vitcod_sim::SimReport`]s so speedups and energy
//! ratios compose directly with the ViTCoD simulator's output.
//!
//! # Example
//!
//! ```
//! use vitcod_baselines::GeneralPlatform;
//! use vitcod_model::ViTConfig;
//!
//! let gpu = GeneralPlatform::gpu_2080ti();
//! let r = gpu.simulate_attention(&ViTConfig::deit_base());
//! assert!(r.latency_s > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod platforms;
mod sanger;
mod spatten;

pub use platforms::GeneralPlatform;
pub use sanger::SangerSim;
pub use spatten::SpAttenSim;
