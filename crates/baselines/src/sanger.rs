//! Behavioural simulator of Sanger (Lu et al., MICRO 2021).
//!
//! Sanger predicts a *dynamic, input-dependent* sparse attention mask by
//! computing a low-precision (4-bit) dense `Q·Kᵀ` pass, then *packs and
//! splits* the resulting sparse rows into a load-balanced layout executed
//! on a reconfigurable **S-stationary** PE array. S-stationary maps
//! attention scores spatially onto PEs: loaded Q/K vectors are fully
//! reused (low traffic) at the price of large computation workloads and
//! PE under-utilization when the mask is highly sparse — exactly the
//! trade the ViTCoD paper's Fig. 19 decomposition highlights.

use vitcod_model::ViTConfig;
use vitcod_sim::{
    gemm_cycles, softmax_cycles, AcceleratorConfig, DramModel, LatencyBreakdown, PhaseCycles,
    SimReport, TrafficStats,
};

/// Sanger behavioural simulator on the ViTCoD-equivalent hardware
/// budget.
///
/// # Example
///
/// ```
/// use vitcod_baselines::SangerSim;
/// use vitcod_model::ViTConfig;
/// use vitcod_sim::AcceleratorConfig;
///
/// let sanger = SangerSim::new(AcceleratorConfig::vitcod_paper());
/// let r = sanger.simulate_attention(&ViTConfig::deit_base(), 0.9);
/// assert!(r.breakdown.preprocess_cycles > 0); // mask prediction
/// ```
#[derive(Debug, Clone)]
pub struct SangerSim {
    cfg: AcceleratorConfig,
    dram: DramModel,
    /// Throughput multiplier of the 4-bit prediction pass relative to
    /// 8-bit MACs (each MAC slices into two 4-bit ops).
    prediction_speedup: f64,
    /// PE-array utilization of the pack-and-split layout as a function
    /// floor; effective utilization degrades as sparsity rises beyond
    /// the 50–70 % regime Sanger was designed for.
    base_utilization: f64,
    /// Utilization on dense GEMM layers: the reconfigurable S-stationary
    /// array is specialised for attention scores, so projections/MLPs
    /// run below ViTCoD's reconfigured-MAC-line efficiency.
    linear_utilization: f64,
}

impl SangerSim {
    /// Creates the simulator on the given hardware budget.
    pub fn new(cfg: AcceleratorConfig) -> Self {
        Self {
            dram: DramModel::new(&cfg),
            cfg,
            prediction_speedup: 1.2,
            base_utilization: 0.65,
            linear_utilization: 0.5,
        }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.cfg
    }

    /// Effective S-stationary utilization at attention sparsity `s`.
    ///
    /// Sanger's pack-and-split balances rows well around 50–70 %
    /// sparsity (its design point, utilization ≈ `base_utilization`);
    /// beyond that the packed rows thin out and PEs idle — at 90 %+ the
    /// spatially-mapped score array has mostly empty slots.
    pub fn effective_utilization(&self, sparsity: f64) -> f64 {
        let over = (sparsity - 0.7).max(0.0);
        (self.base_utilization * (1.0 - 2.8 * over)).max(0.15)
    }

    /// Simulates the attention core at sparsity `s`, including the
    /// dynamic mask-prediction and pack-and-split preprocessing that
    /// every input pays.
    ///
    /// # Panics
    ///
    /// Panics if `sparsity` is outside `[0, 1)`.
    pub fn simulate_attention(&self, model: &ViTConfig, sparsity: f64) -> SimReport {
        assert!((0.0..1.0).contains(&sparsity), "sparsity must be in [0,1)");
        let lines = self.cfg.mac_lines;
        let mpl = self.cfg.macs_per_line;
        let bytes = self.cfg.bytes_per_elem as u64;
        let util = self.effective_utilization(sparsity);

        let mut total_cycles = 0u64;
        let mut macs = 0u64;
        let mut traffic = TrafficStats::new();
        let mut phases = PhaseCycles::default();
        let mut breakdown = LatencyBreakdown::default();

        for st in &model.stages {
            let n = st.tokens;
            let d = st.dim;
            let nnz = (((n * n) as f64) * (1.0 - sparsity)).ceil() as usize;

            for _ in 0..st.depth {
                // Phase 1 — mask prediction: dense 4-bit Q·K^T.
                let predict = (gemm_cycles(n, n, d, lines, mpl) as f64 / self.prediction_speedup)
                    .ceil() as u64;
                // Phase 2 — pack & split: stream the n^2 mask bits,
                // binning non-zeros into balanced sub-rows.
                let pack = ((n * n) as u64).div_ceil((lines * mpl) as u64);

                // Phase 3 — sparse SDDMM + SpMM on the S-stationary
                // array at degraded utilization.
                let sparse_macs = (2 * nnz * d) as u64;
                let ideal = sparse_macs.div_ceil((lines * mpl) as u64);
                let exec = (ideal as f64 / util).ceil() as u64;
                let softmax = softmax_cycles(nnz * st.heads, lines);

                // Traffic: Q/K twice (low-precision prediction pass +
                // full-precision execution), V once, output once.
                // S-stationary keeps S and partial sums on chip.
                let qk_bytes = 2 * (n * d) as u64 * bytes;
                let pred_bytes = qk_bytes / 2; // 4-bit copies
                let v_bytes = (n * d) as u64 * bytes;
                let out_bytes = (n * d) as u64 * bytes;
                traffic.load(qk_bytes + pred_bytes + v_bytes);
                traffic.store(out_bytes);
                let mem = self
                    .dram
                    .transfer_cycles(qk_bytes + pred_bytes + v_bytes + out_bytes);

                let compute = exec + softmax;
                let preprocess = predict + pack;
                let cycles = compute.max(mem) + preprocess;
                total_cycles += cycles;
                let layer_macs = sparse_macs + ((n * n * d) as f64 / 2.0) as u64;
                macs += layer_macs;
                phases.sddmm += exec / 2;
                phases.spmm += exec / 2;
                phases.softmax += softmax;
                breakdown.compute_cycles += compute;
                breakdown.preprocess_cycles += preprocess;
                if mem > compute {
                    breakdown.data_movement_cycles += mem - compute;
                }
                breakdown.data_movement_cycles += mem.min(compute) / 2;
                traffic.on_chip(2 * layer_macs * bytes);
            }
        }

        self.report(
            model,
            "core-attention",
            total_cycles,
            phases,
            breakdown,
            traffic,
            macs,
        )
    }

    /// End-to-end: identical dense linear layers plus Sanger's sparse
    /// attention (token counts are not reduced — Sanger prunes attention
    /// entries, not tokens).
    pub fn simulate_end_to_end(&self, model: &ViTConfig, sparsity: f64) -> SimReport {
        let attn = self.simulate_attention(model, sparsity);
        let lines = self.cfg.mac_lines;
        let mpl = self.cfg.macs_per_line;
        let bytes = self.cfg.bytes_per_elem as u64;

        let mut total_cycles = attn.total_cycles;
        let mut macs = attn.macs;
        let mut traffic = attn.traffic;
        let mut phases = attn.phases;
        let mut breakdown = attn.breakdown;

        for st in &model.stages {
            let n = st.tokens;
            let d = st.dim;
            let hidden = d * model.mlp_ratio;
            for _ in 0..st.depth {
                let ideal = gemm_cycles(n, d, 4 * d, lines, mpl)
                    + gemm_cycles(n, hidden, d, lines, mpl)
                    + gemm_cycles(n, d, hidden, lines, mpl);
                let compute = (ideal as f64 / self.linear_utilization).ceil() as u64;
                // Weights stream once per weight-reuse batch (per-image
                // cost), matching the ViTCoD simulator's protocol.
                let weight_bytes = ((4 * d * d + 2 * d * hidden) as u64) * bytes
                    / self.cfg.weight_reuse_batch.max(1);
                let mem = self.dram.transfer_cycles(weight_bytes);
                total_cycles += compute.max(mem);
                macs += (4 * n * d * d + 2 * n * d * hidden) as u64;
                phases.linear += compute;
                traffic.load(weight_bytes);
                breakdown.compute_cycles += compute;
                if mem > compute {
                    breakdown.data_movement_cycles += mem - compute;
                }
            }
        }
        if model.stem_macs > 0 {
            let c = model.stem_macs / (lines * mpl) as u64;
            total_cycles += c;
            macs += model.stem_macs;
            phases.linear += c;
            breakdown.compute_cycles += c;
        }
        self.report(
            model,
            "end-to-end",
            total_cycles,
            phases,
            breakdown,
            traffic,
            macs,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        model: &ViTConfig,
        kind: &str,
        total_cycles: u64,
        phases: PhaseCycles,
        breakdown: LatencyBreakdown,
        traffic: TrafficStats,
        macs: u64,
    ) -> SimReport {
        let latency_s = self.cfg.cycles_to_seconds(total_cycles);
        let e = &self.cfg.energy;
        // Sanger's PEs sit behind a reconfigurable pack-and-split
        // interconnect; per-op energy carries that routing overhead
        // relative to ViTCoD's fixed MAC lines.
        const RECONFIG_ENERGY_OVERHEAD: f64 = 2.0;
        let energy_j = macs as f64 * e.mac_pj * RECONFIG_ENERGY_OVERHEAD * 1e-12
            + traffic.sram_total() as f64 * e.sram_pj_per_byte * 1e-12
            + traffic.dram_total() as f64 * e.dram_pj_per_byte * 1e-12
            + e.static_watts * latency_s;
        SimReport {
            platform: "Sanger".to_string(),
            workload: format!("{} [{}]", model.name, kind),
            total_cycles,
            latency_s,
            phases,
            breakdown,
            traffic,
            macs,
            energy_j,
            utilization: (macs as f64 / (self.cfg.peak_macs_per_sec() * latency_s)).min(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> SangerSim {
        SangerSim::new(AcceleratorConfig::vitcod_paper())
    }

    #[test]
    fn utilization_degrades_past_design_point() {
        let s = sim();
        assert!((s.effective_utilization(0.5) - 0.65).abs() < 1e-9);
        assert!(s.effective_utilization(0.9) < s.effective_utilization(0.7));
        assert!(s.effective_utilization(0.99) >= 0.15);
    }

    #[test]
    fn prediction_overhead_always_paid() {
        // Even a very sparse run pays the dense low-precision pass.
        let r = sim().simulate_attention(&ViTConfig::deit_base(), 0.95);
        assert!(r.breakdown.preprocess_cycles > 0);
        let frac = r.breakdown.preprocess_cycles as f64 / r.total_cycles as f64;
        assert!(frac > 0.1, "prediction share {frac:.3} suspiciously small");
    }

    #[test]
    fn sparser_is_faster_but_sublinearly() {
        let s = sim();
        let m = ViTConfig::deit_base();
        let r50 = s.simulate_attention(&m, 0.5);
        let r90 = s.simulate_attention(&m, 0.9);
        assert!(r90.total_cycles < r50.total_cycles);
        // The fixed prediction pass prevents a proportional 5x gain.
        let gain = r50.total_cycles as f64 / r90.total_cycles as f64;
        assert!(gain < 5.0, "gain {gain:.2} should be sublinear in sparsity");
    }

    #[test]
    fn qk_loaded_twice_for_prediction() {
        let r = sim().simulate_attention(&ViTConfig::deit_tiny(), 0.9);
        let n = 197u64;
        let d = 192u64;
        // At least 2.5x n*d per layer of Q/K traffic (full + 4-bit).
        assert!(r.traffic.dram_read_bytes > 12 * 2 * n * d);
    }

    #[test]
    fn end_to_end_extends_attention() {
        let s = sim();
        let m = ViTConfig::deit_small();
        assert!(
            s.simulate_end_to_end(&m, 0.9).total_cycles
                > s.simulate_attention(&m, 0.9).total_cycles
        );
    }

    #[test]
    fn report_is_labelled() {
        let r = sim().simulate_attention(&ViTConfig::deit_tiny(), 0.8);
        assert_eq!(r.platform, "Sanger");
        assert!(r.workload.contains("DeiT-Tiny"));
    }
}
