//! Behavioural simulator of SpAtten (Wang et al., HPCA 2021).
//!
//! SpAtten accelerates attention with **cascade token and head pruning**:
//! an on-chip top-k engine ranks cumulative attention importance and
//! progressively drops whole tokens (and heads) as layers deepen. The
//! pruning is *dynamic and input-dependent* (it must be recomputed for
//! every input) and *coarse-grained* (whole tokens/heads), which caps the
//! achievable sparsity — the paper's Table I files it under "Low"
//! sparsity. On ViT workloads with a nominal attention-map sparsity `s`,
//! SpAtten can only realise the token-level share of it; the remaining
//! fine-grained sparsity is invisible to its dataflow.

use vitcod_model::ViTConfig;
use vitcod_sim::{
    gemm_cycles, softmax_cycles, AcceleratorConfig, DramModel, LatencyBreakdown, PhaseCycles,
    SimReport, TrafficStats,
};

/// SpAtten behavioural simulator, configured with the same MAC count and
/// DRAM bandwidth as the ViTCoD accelerator for the paper's iso-resource
/// comparison.
///
/// # Example
///
/// ```
/// use vitcod_baselines::SpAttenSim;
/// use vitcod_model::ViTConfig;
/// use vitcod_sim::AcceleratorConfig;
///
/// let sim = SpAttenSim::new(AcceleratorConfig::vitcod_paper());
/// let r = sim.simulate_attention(&ViTConfig::deit_base(), 0.9);
/// assert!(r.total_cycles > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SpAttenSim {
    cfg: AcceleratorConfig,
    dram: DramModel,
    /// Dense-array utilization on the kept-token workload.
    utilization: f64,
    /// Minimum kept-token fraction that preserves ViT accuracy (coarse
    /// token pruning cannot go further without unacceptable drops —
    /// SpAtten's granularity limit on ViTs).
    min_token_keep: f64,
    /// Utilization on dense GEMM layers: SpAtten's datapath is
    /// specialised for attention (top-k ranking, score pipelines), so
    /// projections/MLPs run at reduced efficiency compared with
    /// ViTCoD's explicitly reconfigurable MAC lines.
    linear_utilization: f64,
}

impl SpAttenSim {
    /// Creates the simulator on the given hardware budget.
    pub fn new(cfg: AcceleratorConfig) -> Self {
        Self {
            dram: DramModel::new(&cfg),
            cfg,
            utilization: 0.65,
            min_token_keep: 0.65,
            linear_utilization: 0.45,
        }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.cfg
    }

    /// Final kept-token fraction for a nominal attention sparsity `s`:
    /// `max(sqrt(1 − s), min_token_keep)` — token pruning removes rows
    /// *and* columns, so keeping a fraction `f` of tokens leaves `f²` of
    /// the attention map.
    pub fn token_keep_fraction(&self, sparsity: f64) -> f64 {
        (1.0 - sparsity).sqrt().max(self.min_token_keep)
    }

    /// Simulates the attention core at nominal sparsity `s`, cascading
    /// the kept-token fraction linearly from 1.0 at the first layer to
    /// [`Self::token_keep_fraction`] at the last.
    ///
    /// # Panics
    ///
    /// Panics if `sparsity` is outside `[0, 1)`.
    pub fn simulate_attention(&self, model: &ViTConfig, sparsity: f64) -> SimReport {
        assert!((0.0..1.0).contains(&sparsity), "sparsity must be in [0,1)");
        let lines = self.cfg.mac_lines;
        let mpl = self.cfg.macs_per_line;
        let bytes = self.cfg.bytes_per_elem as u64;
        let f_final = self.token_keep_fraction(sparsity);

        let mut total_cycles = 0u64;
        let mut macs = 0u64;
        let mut traffic = TrafficStats::new();
        let mut phases = PhaseCycles::default();
        let mut breakdown = LatencyBreakdown::default();

        for st in &model.stages {
            for l in 0..st.depth {
                let progress = if st.depth > 1 {
                    l as f64 / (st.depth - 1) as f64
                } else {
                    1.0
                };
                let f = 1.0 - (1.0 - f_final) * progress;
                let n_kept = ((st.tokens as f64) * f).ceil() as usize;
                let d = st.dim;

                // Dense QK^T and SV on the kept tokens.
                let qk = gemm_cycles(n_kept, n_kept, d, lines, mpl);
                let sv = gemm_cycles(n_kept, d, n_kept, lines, mpl);
                let compute = ((qk + sv) as f64 / self.utilization).ceil() as u64;
                let softmax = softmax_cycles(n_kept * n_kept * st.heads, lines);

                // Top-k ranking engine: cumulative importance scores are
                // accumulated (n_kept^2 adds) and a quick-select runs per
                // head; SpAtten's engine processes ~lines comparisons per
                // cycle.
                let topk =
                    ((n_kept * n_kept + n_kept * st.heads) as u64).div_ceil((lines * mpl) as u64);

                // Traffic: Q/K/V for kept tokens in, output out. Dynamic
                // pruning means indices/importance travel too.
                let qkv_bytes = 3 * (n_kept * d) as u64 * bytes;
                let out_bytes = (n_kept * d) as u64 * bytes;
                let imp_bytes = (n_kept as u64) * 4;
                traffic.load(qkv_bytes + imp_bytes);
                traffic.store(out_bytes);
                let mem = self.dram.transfer_cycles(qkv_bytes + imp_bytes + out_bytes);

                let layer_macs = (2 * n_kept * n_kept * d) as u64;
                let compute_total = compute + softmax;
                let cycles = compute_total.max(mem) + topk;
                total_cycles += cycles;
                macs += layer_macs;
                phases.sddmm += ((qk as f64) / self.utilization) as u64;
                phases.spmm += ((sv as f64) / self.utilization) as u64;
                phases.softmax += softmax;
                breakdown.compute_cycles += compute_total;
                breakdown.preprocess_cycles += topk;
                if mem > compute_total {
                    breakdown.data_movement_cycles += mem - compute_total;
                }
                breakdown.data_movement_cycles += mem.min(compute_total) / 2;
                traffic.on_chip(2 * layer_macs * bytes);
            }
        }

        self.report(
            model,
            "core-attention",
            total_cycles,
            phases,
            breakdown,
            traffic,
            macs,
        )
    }

    /// End-to-end: dense linear layers (identical hardware to ViTCoD's
    /// reconfigured MAC lines) plus the cascade-pruned attention. Token
    /// pruning also shrinks the MLPs of deeper layers.
    pub fn simulate_end_to_end(&self, model: &ViTConfig, sparsity: f64) -> SimReport {
        let attn = self.simulate_attention(model, sparsity);
        let lines = self.cfg.mac_lines;
        let mpl = self.cfg.macs_per_line;
        let bytes = self.cfg.bytes_per_elem as u64;
        let f_final = self.token_keep_fraction(sparsity);

        let mut total_cycles = attn.total_cycles;
        let mut macs = attn.macs;
        let mut traffic = attn.traffic;
        let mut phases = attn.phases;
        let mut breakdown = attn.breakdown;

        for st in &model.stages {
            for l in 0..st.depth {
                let progress = if st.depth > 1 {
                    l as f64 / (st.depth - 1) as f64
                } else {
                    1.0
                };
                let f = 1.0 - (1.0 - f_final) * progress;
                let n_kept = ((st.tokens as f64) * f).ceil() as usize;
                let d = st.dim;
                let hidden = d * model.mlp_ratio;
                let ideal = gemm_cycles(n_kept, d, 4 * d, lines, mpl)
                    + gemm_cycles(n_kept, hidden, d, lines, mpl)
                    + gemm_cycles(n_kept, d, hidden, lines, mpl);
                let compute = (ideal as f64 / self.linear_utilization).ceil() as u64;
                // Weights stream once per weight-reuse batch (per-image
                // cost), matching the ViTCoD simulator's protocol.
                let weight_bytes = ((4 * d * d + 2 * d * hidden) as u64) * bytes
                    / self.cfg.weight_reuse_batch.max(1);
                let mem = self.dram.transfer_cycles(weight_bytes);
                total_cycles += compute.max(mem);
                macs += (4 * n_kept * d * d + 2 * n_kept * d * hidden) as u64;
                phases.linear += compute;
                traffic.load(weight_bytes);
                breakdown.compute_cycles += compute;
                if mem > compute {
                    breakdown.data_movement_cycles += mem - compute;
                }
            }
        }
        if model.stem_macs > 0 {
            let c = model.stem_macs / (lines * mpl) as u64;
            total_cycles += c;
            macs += model.stem_macs;
            phases.linear += c;
            breakdown.compute_cycles += c;
        }
        self.report(
            model,
            "end-to-end",
            total_cycles,
            phases,
            breakdown,
            traffic,
            macs,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        model: &ViTConfig,
        kind: &str,
        total_cycles: u64,
        phases: PhaseCycles,
        breakdown: LatencyBreakdown,
        traffic: TrafficStats,
        macs: u64,
    ) -> SimReport {
        let latency_s = self.cfg.cycles_to_seconds(total_cycles);
        let e = &self.cfg.energy;
        let energy_j = macs as f64 * e.mac_pj * 1e-12
            + traffic.sram_total() as f64 * e.sram_pj_per_byte * 1e-12
            + traffic.dram_total() as f64 * e.dram_pj_per_byte * 1e-12
            + e.static_watts * latency_s;
        SimReport {
            platform: "SpAtten".to_string(),
            workload: format!("{} [{}]", model.name, kind),
            total_cycles,
            latency_s,
            phases,
            breakdown,
            traffic,
            macs,
            energy_j,
            utilization: (macs as f64 / (self.cfg.peak_macs_per_sec() * latency_s)).min(1.0),
        }
    }
}

#[cfg(test)]
// Exact float equality below asserts deterministic replay of seeded runs.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn sim() -> SpAttenSim {
        SpAttenSim::new(AcceleratorConfig::vitcod_paper())
    }

    #[test]
    fn token_keep_fraction_floors_at_granularity_limit() {
        let s = sim();
        assert!((s.token_keep_fraction(0.0) - 1.0).abs() < 1e-12);
        // sqrt(0.1) = 0.316 < the coarse-granularity floor.
        assert_eq!(s.token_keep_fraction(0.9), 0.65);
        assert!((s.token_keep_fraction(0.5) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
    }

    #[test]
    fn higher_sparsity_helps_but_saturates() {
        let s = sim();
        let m = ViTConfig::deit_base();
        let r0 = s.simulate_attention(&m, 0.0);
        let r60 = s.simulate_attention(&m, 0.6);
        let r90 = s.simulate_attention(&m, 0.9);
        let r95 = s.simulate_attention(&m, 0.95);
        assert!(r60.total_cycles < r0.total_cycles);
        assert!(r90.total_cycles <= r60.total_cycles);
        // Past the granularity floor, no further gains.
        assert_eq!(r90.total_cycles, r95.total_cycles);
    }

    #[test]
    fn preprocess_overhead_is_nonzero() {
        let r = sim().simulate_attention(&ViTConfig::deit_small(), 0.9);
        assert!(
            r.breakdown.preprocess_cycles > 0,
            "top-k engine must cost cycles"
        );
    }

    #[test]
    fn end_to_end_adds_linear_work() {
        let s = sim();
        let m = ViTConfig::deit_small();
        let attn = s.simulate_attention(&m, 0.9);
        let e2e = s.simulate_end_to_end(&m, 0.9);
        assert!(e2e.total_cycles > attn.total_cycles);
        assert!(e2e.phases.linear > 0);
    }

    #[test]
    fn energy_positive() {
        let r = sim().simulate_attention(&ViTConfig::deit_tiny(), 0.8);
        assert!(r.energy_j > 0.0);
    }
}
