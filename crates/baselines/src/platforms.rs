//! Analytic roofline models of the general computing platforms.
//!
//! The paper measures real devices; we have none, so each platform is a
//! roofline: published peak throughput and memory bandwidth, derated by
//! an *effective utilization* for unfused small-batch attention kernels,
//! plus a per-layer framework/kernel-launch overhead. The utilization
//! constants are stated here and recorded in EXPERIMENTS.md; they are
//! the calibration knobs of this substitution and sit well inside
//! publicly reported ranges for batch-1 Transformer inference.

use vitcod_model::ViTConfig;
use vitcod_sim::{LatencyBreakdown, PhaseCycles, SimReport, TrafficStats};

/// Roofline model of a general-purpose platform running **dense**
/// attention (commodity hardware cannot exploit ViTCoD's fine-grained
/// sparsity, which is the paper's premise for these baselines).
///
/// # Example
///
/// ```
/// use vitcod_baselines::GeneralPlatform;
/// use vitcod_model::ViTConfig;
///
/// let cpu = GeneralPlatform::cpu_xeon_6230r();
/// let gpu = GeneralPlatform::gpu_2080ti();
/// let model = ViTConfig::deit_base();
/// assert!(cpu.simulate_attention(&model).latency_s
///         > gpu.simulate_attention(&model).latency_s);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GeneralPlatform {
    /// Platform label.
    pub name: &'static str,
    /// Peak throughput in GMAC/s at the precision the platform would use.
    pub peak_gmacs: f64,
    /// Peak DRAM bandwidth, GB/s.
    pub bandwidth_gbps: f64,
    /// Effective compute utilization for batch-1 attention kernels.
    pub compute_eff: f64,
    /// Effective bandwidth utilization.
    pub mem_eff: f64,
    /// Framework/launch overhead charged per transformer layer, seconds.
    pub per_layer_overhead_s: f64,
    /// Bytes per element (fp32 on CPU, fp16 on the GPUs).
    pub bytes_per_elem: usize,
    /// Board/package power while busy, watts (for energy comparisons).
    pub busy_watts: f64,
    /// Hardware-resource scale factor for a peak-throughput-comparable
    /// ViTCoD configuration (paper: "when benchmarking with GPUs w/
    /// larger batch size, we scale up the accelerators' hardware
    /// resource to have a comparable peak throughput").
    pub comparable_vitcod_scale: usize,
}

impl GeneralPlatform {
    /// Intel Xeon Gold 6230R: 26 cores, AVX-512 FMA @ ~2.1 GHz base
    /// (~875 GMAC/s fp32), 6-channel DDR4 (~140 GB/s). Batch-1 attention
    /// in a framework runs at ~1 % of peak (unfused ops, permutes,
    /// softmax, Python dispatch).
    pub fn cpu_xeon_6230r() -> Self {
        Self {
            name: "CPU (Xeon 6230R)",
            peak_gmacs: 875.0,
            bandwidth_gbps: 140.0,
            compute_eff: 0.010,
            mem_eff: 0.30,
            per_layer_overhead_s: 100e-6,
            bytes_per_elem: 4,
            busy_watts: 150.0,
            comparable_vitcod_scale: 1,
        }
    }

    /// Nvidia Jetson Xavier NX (EdgeGPU): ~845 GFLOP/s fp16 GPU
    /// (~422 GMAC/s), 51.2 GB/s LPDDR4x. Small kernels at ~3.5 %
    /// effective utilization (matches the Fig. 4-style profiling where
    /// attention dominates latency far beyond its FLOPs share).
    pub fn edgegpu_xavier_nx() -> Self {
        Self {
            name: "EdgeGPU (Xavier NX)",
            peak_gmacs: 422.0,
            bandwidth_gbps: 51.2,
            compute_eff: 0.032,
            mem_eff: 0.40,
            per_layer_overhead_s: 60e-6,
            bytes_per_elem: 2,
            busy_watts: 15.0,
            comparable_vitcod_scale: 1,
        }
    }

    /// Nvidia RTX 2080 Ti: 13.4 TFLOP/s fp32 (~6.7 TMAC/s), 616 GB/s
    /// GDDR6, evaluated at a larger batch per the paper, with ~10 %
    /// effective utilization for unfused attention and a 26× scaled
    /// ViTCoD partner configuration (26 × 256 GOPS ≈ 6.7 TMAC/s).
    pub fn gpu_2080ti() -> Self {
        Self {
            name: "GPU (RTX 2080 Ti)",
            peak_gmacs: 6700.0,
            bandwidth_gbps: 616.0,
            compute_eff: 0.10,
            mem_eff: 0.55,
            per_layer_overhead_s: 30e-6,
            bytes_per_elem: 4,
            busy_watts: 250.0,
            comparable_vitcod_scale: 26,
        }
    }

    /// Nvidia Jetson TX2 (the EdgeGPU used for the Fig. 4 latency
    /// breakdown): ~665 GFLOP/s fp16 (~332 GMAC/s), 59.7 GB/s.
    pub fn edgegpu_tx2() -> Self {
        Self {
            name: "EdgeGPU (TX2)",
            peak_gmacs: 332.0,
            bandwidth_gbps: 59.7,
            compute_eff: 0.030,
            mem_eff: 0.40,
            per_layer_overhead_s: 70e-6,
            bytes_per_elem: 2,
            busy_watts: 15.0,
            comparable_vitcod_scale: 1,
        }
    }

    /// The three comparison platforms of Fig. 15, in paper order.
    pub fn all() -> Vec<GeneralPlatform> {
        vec![
            Self::cpu_xeon_6230r(),
            Self::edgegpu_xavier_nx(),
            Self::gpu_2080ti(),
        ]
    }

    /// Effective compute throughput in GMAC/s.
    pub fn effective_gmacs(&self) -> f64 {
        self.peak_gmacs * self.compute_eff
    }

    /// Effective bandwidth in GB/s.
    pub fn effective_bandwidth_gbps(&self) -> f64 {
        self.bandwidth_gbps * self.mem_eff
    }

    /// Latency of one dense attention-core pass (`Q·Kᵀ`, softmax,
    /// `S·V`), all stages and layers, batch 1.
    pub fn simulate_attention(&self, model: &ViTConfig) -> SimReport {
        let mut latency = 0.0f64;
        let mut macs = 0u64;
        let mut dram = 0u64;
        let mut compute_s = 0.0f64;
        for st in &model.stages {
            let n = st.tokens as u64;
            let d = st.dim as u64;
            let h = st.heads as u64;
            let layer_macs = 2 * n * n * d;
            // Unfused attention materialises S: write after QK, read and
            // write around softmax, read for SV — plus Q/K/V in, out.
            let s_bytes = n * n * h * self.bytes_per_elem as u64;
            let qkv_bytes = 4 * n * d * self.bytes_per_elem as u64;
            let layer_bytes = 4 * s_bytes + qkv_bytes;
            let t_compute = layer_macs as f64 / (self.effective_gmacs() * 1e9);
            let t_mem = layer_bytes as f64 / (self.effective_bandwidth_gbps() * 1e9);
            let t_layer = t_compute.max(t_mem) + self.per_layer_overhead_s;
            latency += t_layer * st.depth as f64;
            compute_s += t_compute * st.depth as f64;
            macs += layer_macs * st.depth as u64;
            dram += layer_bytes * st.depth as u64;
        }
        self.report(model, "core-attention", latency, compute_s, macs, dram)
    }

    /// Latency of the full dense model (attention + projections + MLPs +
    /// stem), batch 1.
    pub fn simulate_end_to_end(&self, model: &ViTConfig) -> SimReport {
        let attn = self.simulate_attention(model);
        let mut latency = attn.latency_s;
        let mut macs = attn.macs;
        let mut dram = attn.traffic.dram_read_bytes;
        let mut compute_s = attn.breakdown.compute_cycles as f64 / 1e9; // stored as ns, see report()
        for st in &model.stages {
            let n = st.tokens as u64;
            let d = st.dim as u64;
            let hidden = (st.dim * model.mlp_ratio) as u64;
            let layer_macs = 4 * n * d * d + 2 * n * d * hidden;
            let weight_bytes = (4 * d * d + 2 * d * hidden) * self.bytes_per_elem as u64;
            let act_bytes = 8 * n * d * self.bytes_per_elem as u64;
            let t_compute = layer_macs as f64 / (self.effective_gmacs() * 1e9);
            let t_mem = (weight_bytes + act_bytes) as f64 / (self.effective_bandwidth_gbps() * 1e9);
            // Dense GEMMs run far closer to peak than attention; grant
            // them 8x the attention efficiency, capped at 60 %.
            let gemm_eff_boost = (8.0f64).min(0.6 / self.compute_eff);
            let t_layer = (t_compute / gemm_eff_boost).max(t_mem) + self.per_layer_overhead_s;
            latency += t_layer * st.depth as f64;
            compute_s += (t_compute / gemm_eff_boost) * st.depth as f64;
            macs += layer_macs * st.depth as u64;
            dram += (weight_bytes + act_bytes) * st.depth as u64;
        }
        if model.stem_macs > 0 {
            latency += model.stem_macs as f64 / (self.effective_gmacs() * 8.0 * 1e9);
            macs += model.stem_macs;
        }
        self.report(model, "end-to-end", latency, compute_s, macs, dram)
    }

    fn report(
        &self,
        model: &ViTConfig,
        kind: &str,
        latency_s: f64,
        compute_s: f64,
        macs: u64,
        dram_bytes: u64,
    ) -> SimReport {
        // Cycle fields are expressed in nanoseconds for these analytic
        // models (no native clock); ratios remain meaningful.
        let to_ns = |s: f64| (s * 1e9) as u64;
        SimReport {
            platform: self.name.to_string(),
            workload: format!("{} [{}]", model.name, kind),
            total_cycles: to_ns(latency_s),
            latency_s,
            phases: PhaseCycles::default(),
            breakdown: LatencyBreakdown {
                compute_cycles: to_ns(compute_s.min(latency_s)),
                preprocess_cycles: 0,
                data_movement_cycles: to_ns((latency_s - compute_s).max(0.0)),
            },
            traffic: TrafficStats {
                dram_read_bytes: dram_bytes,
                ..Default::default()
            },
            macs,
            energy_j: self.busy_watts * latency_s,
            utilization: (macs as f64 / (self.peak_gmacs * 1e9 * latency_s)).min(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_ordering_cpu_slowest_gpu_fastest() {
        let model = ViTConfig::deit_base();
        let cpu = GeneralPlatform::cpu_xeon_6230r().simulate_attention(&model);
        let edge = GeneralPlatform::edgegpu_xavier_nx().simulate_attention(&model);
        let gpu = GeneralPlatform::gpu_2080ti().simulate_attention(&model);
        assert!(cpu.latency_s > edge.latency_s);
        assert!(edge.latency_s > gpu.latency_s);
    }

    #[test]
    fn attention_latency_in_plausible_band() {
        // Batch-1 DeiT-Base attention on a 2080 Ti lands in the
        // hundreds-of-microseconds to few-ms band.
        let gpu = GeneralPlatform::gpu_2080ti().simulate_attention(&ViTConfig::deit_base());
        assert!(
            (1e-4..2e-2).contains(&gpu.latency_s),
            "gpu attention latency {}",
            gpu.latency_s
        );
        let cpu = GeneralPlatform::cpu_xeon_6230r().simulate_attention(&ViTConfig::deit_base());
        assert!(
            (5e-3..0.5).contains(&cpu.latency_s),
            "cpu attention latency {}",
            cpu.latency_s
        );
    }

    #[test]
    fn end_to_end_slower_than_attention() {
        for p in GeneralPlatform::all() {
            let m = ViTConfig::deit_small();
            assert!(p.simulate_end_to_end(&m).latency_s > p.simulate_attention(&m).latency_s);
        }
    }

    #[test]
    fn attention_dominates_edge_latency_share() {
        // Fig. 4: self-attention is >= 50 % of end-to-end latency on an
        // EdgeGPU despite its small FLOPs share.
        let p = GeneralPlatform::edgegpu_tx2();
        let m = ViTConfig::deit_small();
        let attn = p.simulate_attention(&m).latency_s;
        let e2e = p.simulate_end_to_end(&m).latency_s;
        assert!(
            attn / e2e > 0.4,
            "attention share {:.2} too small",
            attn / e2e
        );
    }

    #[test]
    fn bigger_models_take_longer() {
        let p = GeneralPlatform::edgegpu_xavier_nx();
        let tiny = p.simulate_attention(&ViTConfig::deit_tiny()).latency_s;
        let base = p.simulate_attention(&ViTConfig::deit_base()).latency_s;
        assert!(base > tiny);
    }

    #[test]
    fn energy_scales_with_latency_and_power() {
        let p = GeneralPlatform::cpu_xeon_6230r();
        let r = p.simulate_attention(&ViTConfig::deit_base());
        assert!((r.energy_j - 150.0 * r.latency_s).abs() < 1e-9);
    }

    #[test]
    fn utilization_below_one() {
        for p in GeneralPlatform::all() {
            let r = p.simulate_attention(&ViTConfig::deit_base());
            assert!(r.utilization <= 1.0);
            assert!(r.utilization > 0.0);
        }
    }
}
