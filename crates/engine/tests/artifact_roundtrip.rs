//! Artifact persistence acceptance: a `CompiledVit` saved to text and
//! reloaded must be *indistinguishable* from the original —
//! bit-identical fp32 logits through `Engine::infer_batch`, byte-exact
//! int8 payloads — and malformed artifacts must be rejected with the
//! offending line number.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vitcod_autograd::ParamStore;
use vitcod_core::load_compiled;
use vitcod_engine::{load_compiled_vit, save_compiled_vit, CompiledVit, Engine, Precision};
use vitcod_model::{AutoEncoderSpec, Sample, SparsityPlan, ViTConfig, VisionTransformer};
use vitcod_tensor::{Initializer, Matrix};

const IN_DIM: usize = 8;
const CLASSES: usize = 4;

/// A small but fully featured model: optional AE round trip, optional
/// per-head sparsity plan.
fn tiny_model(seed: u64, ae: bool, sparse: bool) -> CompiledVit {
    let cfg = ViTConfig::deit_tiny().reduced_for_training();
    let mut store = ParamStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut vit = VisionTransformer::new(&cfg, IN_DIM, CLASSES, &mut store, &mut rng);
    if ae {
        vit.insert_auto_encoder(
            AutoEncoderSpec::half(vit.config().heads),
            &mut store,
            &mut rng,
        );
    }
    if sparse {
        let n = vit.config().tokens;
        let mut mask = Matrix::zeros(n, n);
        for q in 0..n {
            mask.set(q, q, 1.0);
            mask.set(q, 0, 1.0);
            mask.set(q, (q + 1) % n, 1.0);
        }
        let plan: SparsityPlan = (0..vit.config().depth)
            .map(|_| {
                (0..vit.config().heads)
                    .map(|_| Some(mask.clone()))
                    .collect()
            })
            .collect();
        vit.set_sparsity_plan(plan);
    }
    CompiledVit::from_parts(&vit, &store)
}

fn batch(tokens: usize, seed: u64, count: usize) -> Vec<Sample> {
    (0..count)
        .map(|i| Sample {
            tokens: Initializer::Normal { std: 1.0 }.sample(tokens, IN_DIM, seed + i as u64),
            label: 0,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// save → load → `Engine::infer_batch` reproduces the original fp32
    /// logits **bit-identically**, across random weights, AE on/off and
    /// sparse/dense head plans; and re-saving the loaded model is
    /// byte-identical.
    #[test]
    fn fp32_round_trip_serves_bit_identical_logits(
        seed in 0u64..1000,
        ae in any::<bool>(),
        sparse in any::<bool>(),
    ) {
        let original = tiny_model(seed, ae, sparse);
        let text = save_compiled_vit(&original, Precision::Fp32);
        let (restored, precision) = load_compiled_vit(&text).unwrap();
        prop_assert_eq!(precision, Precision::Fp32);
        prop_assert_eq!(save_compiled_vit(&restored, Precision::Fp32), text);

        let samples = batch(original.config().tokens, 5000 + seed, 3);
        let before = Engine::builder(original).build().infer_batch(&samples);
        let after = Engine::builder(restored).build().infer_batch(&samples);
        for (b, a) in before.iter().zip(after.iter()) {
            prop_assert_eq!(&b.logits, &a.logits, "logits must be bit-identical");
            prop_assert_eq!(b.class, a.class);
        }
    }

    /// int8 plans round-trip **byte-identically**: the saved artifact's
    /// quantized payloads survive load → re-save unchanged, and an int8
    /// engine over the reloaded fp32 weights computes the same logits
    /// as one over the originals.
    #[test]
    fn int8_plans_round_trip_byte_identical(
        seed in 0u64..1000,
        sparse in any::<bool>(),
    ) {
        let original = tiny_model(seed, false, sparse);

        // Byte-identity of the int8 artifact itself.
        let int8_text = save_compiled_vit(&original, Precision::Int8);
        let (restored_q, precision) = load_compiled_vit(&int8_text).unwrap();
        prop_assert_eq!(precision, Precision::Int8);
        prop_assert_eq!(save_compiled_vit(&restored_q, Precision::Int8), int8_text);

        // Bit-identity of int8 *serving* through an fp32 round trip:
        // identical weights quantize identically.
        let fp32_text = save_compiled_vit(&original, Precision::Fp32);
        let (restored, _) = load_compiled_vit(&fp32_text).unwrap();
        let samples = batch(original.config().tokens, 7000 + seed, 2);
        let before = Engine::builder(original)
            .precision(Precision::Int8)
            .build()
            .infer_batch(&samples);
        let after = Engine::builder(restored)
            .precision(Precision::Int8)
            .build()
            .infer_batch(&samples);
        for (b, a) in before.iter().zip(after.iter()) {
            prop_assert_eq!(&b.logits, &a.logits);
        }

        // An engine over the int8 artifact itself uses the packed
        // projection payloads carried in the file — same logits again.
        let from_q = Engine::builder(restored_q)
            .precision(Precision::Int8)
            .build()
            .infer_batch(&samples);
        for (b, a) in before.iter().zip(from_q.iter()) {
            prop_assert_eq!(&b.logits, &a.logits);
        }
    }
}

#[test]
fn int8_artifact_stores_one_byte_weight_payloads() {
    let model = tiny_model(11, false, false);
    let record = load_compiled(&save_compiled_vit(&model, Precision::Int8)).unwrap();
    assert!(record.has_int8_tensors());
    // The engine's quantization set is i8; biases/LayerNorm stay f32.
    for name in ["patch_w", "pos_embed", "head_w", "layer0.w_qkv"] {
        assert!(
            matches!(
                record.tensor(name).unwrap().payload,
                vitcod_core::TensorPayload::I8 { .. }
            ),
            "{name} should be quantized"
        );
    }
    for name in ["patch_b", "layer0.ln1_gamma", "final_beta", "head_b"] {
        assert!(
            matches!(
                record.tensor(name).unwrap().payload,
                vitcod_core::TensorPayload::F32(_)
            ),
            "{name} should stay fp32"
        );
    }
}

#[test]
fn malformed_artifacts_report_line_numbers() {
    use vitcod_engine::ArtifactError;

    // Format-level failures carry the offending line.
    let cases: &[(&str, usize)] = &[
        ("vitcod-compiled v2\nend\n", 1),
        ("vitcod-compiled v1\ntensor f32 w 1 2\n3f800000\nend\n", 3),
        ("vitcod-compiled v1\ntensor f32 w 1 1\nnothex\nend\n", 3),
        ("vitcod-compiled v1\nbogus record\nend\n", 2),
        ("vitcod-compiled v1\nplans 1 1\nhead dense\nend\n", 3),
    ];
    for (text, line) in cases {
        match load_compiled_vit(text).unwrap_err() {
            ArtifactError::Parse(e) => {
                assert_eq!(e.line(), *line, "wrong line for {text:?}");
            }
            other => panic!("expected parse error for {text:?}, got {other}"),
        }
    }

    // Truncation is always rejected.
    let text = save_compiled_vit(&tiny_model(3, true, true), Precision::Fp32);
    let lines: Vec<&str> = text.lines().collect();
    for cut in [lines.len() / 4, lines.len() / 2, lines.len() - 1] {
        assert!(
            load_compiled_vit(&lines[..cut].join("\n")).is_err(),
            "truncation at line {cut} must fail"
        );
    }

    // Schema-level failure: a parseable record that is not a ViT.
    let text = "vitcod-compiled v1\nmeta model X\nend\n";
    match load_compiled_vit(text).unwrap_err() {
        ArtifactError::Schema(msg) => assert!(msg.contains("family"), "got: {msg}"),
        other => panic!("expected schema error, got {other}"),
    }
}

#[test]
fn schema_rejects_wrong_shapes_and_missing_tensors() {
    let model = tiny_model(4, false, false);
    let good = save_compiled_vit(&model, Precision::Fp32);

    // Drop a tensor record (name survives in other layers' tensors).
    let missing = good.replace("tensor f32 layer0.w_out", "tensor f32 layer0.w_out_gone");
    let err = load_compiled_vit(&missing).unwrap_err().to_string();
    assert!(err.contains("layer0.w_out"), "got: {err}");

    // Declare the wrong token count: pos_embed shape check fires.
    let bad_tokens = good.replace("meta tokens 17", "meta tokens 18");
    let err = load_compiled_vit(&bad_tokens).unwrap_err().to_string();
    assert!(err.contains("shape") || err.contains("CSC"), "got: {err}");
}

/// `Arc`-shared weights: engines built from the same shared artifact
/// serve the identical allocation — no per-engine (and so no
/// per-request) weight copies.
#[test]
fn shared_artifact_is_never_copied_by_fp32_engines() {
    use std::sync::Arc;
    let compiled = Arc::new(tiny_model(5, false, true));
    let scalars = compiled.num_weight_scalars();
    let engines: Vec<Engine> = (0..4)
        .map(|_| Engine::builder_shared(Arc::clone(&compiled)).build())
        .collect();
    let samples = batch(compiled.config().tokens, 9000, 4);
    let baseline = engines[0].infer_batch(&samples);
    for e in &engines {
        // Same allocation, not an equal copy.
        assert!(
            Arc::ptr_eq(&e.compiled_arc(), &compiled),
            "fp32 build must share the artifact"
        );
        assert_eq!(e.infer_batch(&samples)[0].logits, baseline[0].logits);
    }
    // Serving changed nothing about the frozen weights.
    assert_eq!(compiled.num_weight_scalars(), scalars);
    // 4 engines + the local handle + the transient in `ptr_eq` checks:
    // strong count proves no engine cloned the artifact.
    assert_eq!(Arc::strong_count(&compiled), 5);
    // Int8 is the documented exception: it must clone exactly once to
    // hold quantized values.
    let int8 = Engine::builder_shared(Arc::clone(&compiled))
        .precision(Precision::Int8)
        .build();
    assert!(!Arc::ptr_eq(&int8.compiled_arc(), &compiled));
}
