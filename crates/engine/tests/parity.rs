//! Acceptance parity tests for the serving engine.
//!
//! * fp32 dense: engine logits are **bit-identical** to the training
//!   tape's forward, on both kernel backends;
//! * sparse CSC path: engine logits match the `-inf`-masked dense
//!   reference within 1e-4 per logit;
//! * int8: bounded divergence from fp32;
//! * batching: worker fan-out preserves order and determinism.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vitcod_autograd::{ParamStore, Tape};
use vitcod_core::{PipelineConfig, SplitConquerConfig, ViTCoDPipeline};
use vitcod_engine::{accuracy, CompileReport, CompiledVit, Engine, Precision};
use vitcod_model::{
    AutoEncoderSpec, Sample, SparsityPlan, SyntheticTask, SyntheticTaskConfig, TrainConfig,
    Trainer, ViTConfig, VisionTransformer,
};
use vitcod_tensor::{kernels, Backend, Initializer, Matrix};

const IN_DIM: usize = 8;
const CLASSES: usize = 4;

fn tiny_model(seed: u64) -> (VisionTransformer, ParamStore) {
    let cfg = ViTConfig::deit_tiny().reduced_for_training();
    let mut store = ParamStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let vit = VisionTransformer::new(&cfg, IN_DIM, CLASSES, &mut store, &mut rng);
    (vit, store)
}

fn random_tokens(vit: &VisionTransformer, seed: u64) -> Matrix {
    Initializer::Normal { std: 1.0 }.sample(vit.config().tokens, IN_DIM, seed)
}

fn tape_logits(vit: &VisionTransformer, store: &ParamStore, tokens: &Matrix) -> Vec<f32> {
    let mut tape = Tape::new();
    let out = vit.forward(&mut tape, store, tokens);
    tape.value(out.logits).row(0).to_vec()
}

/// Diagonal + class-token-column + neighbour plan at the model's shape.
fn local_global_plan(vit: &VisionTransformer) -> SparsityPlan {
    let n = vit.config().tokens;
    let mut mask = Matrix::zeros(n, n);
    for q in 0..n {
        mask.set(q, q, 1.0);
        mask.set(q, 0, 1.0);
        mask.set(q, (q + 1) % n, 1.0);
        mask.set(q, (q + 5) % n, 1.0);
    }
    (0..vit.config().depth)
        .map(|_| {
            (0..vit.config().heads)
                .map(|_| Some(mask.clone()))
                .collect()
        })
        .collect()
}

#[test]
fn fp32_dense_logits_bit_identical_to_tape_on_all_backends() {
    let (vit, store) = tiny_model(1);
    let compiled = CompiledVit::from_parts(&vit, &store);
    for backend in [Backend::Blocked, Backend::Scalar, Backend::Simd] {
        kernels::set_backend(backend);
        let engine = Engine::builder(compiled.clone()).backend(backend).build();
        for seed in 0..4 {
            let tokens = random_tokens(&vit, 100 + seed);
            let expected = tape_logits(&vit, &store, &tokens);
            let got = engine.infer_one(&tokens);
            assert_eq!(
                got.logits, expected,
                "{backend:?} logits differ from tape at seed {seed}"
            );
        }
    }
    kernels::set_backend(Backend::Blocked);
}

#[test]
fn fp32_dense_with_auto_encoder_bit_identical_to_tape() {
    let (mut vit, mut store) = tiny_model(2);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    vit.insert_auto_encoder(
        AutoEncoderSpec::half(vit.config().heads),
        &mut store,
        &mut rng,
    );
    let engine = Engine::builder(CompiledVit::from_parts(&vit, &store)).build();
    let tokens = random_tokens(&vit, 200);
    assert_eq!(
        engine.infer_one(&tokens).logits,
        tape_logits(&vit, &store, &tokens)
    );
}

#[test]
fn sparse_csc_path_matches_masked_dense_reference() {
    let (mut vit, store) = tiny_model(3);
    vit.set_sparsity_plan(local_global_plan(&vit));
    let compiled = CompiledVit::from_parts(&vit, &store);
    assert_eq!(
        compiled.num_sparse_heads(),
        vit.config().depth * vit.config().heads
    );
    assert!(compiled.mean_attention_sparsity() > 0.5);
    let engine = Engine::builder(compiled).build();
    for seed in 0..4 {
        let tokens = random_tokens(&vit, 300 + seed);
        // The tape runs the same masks through dense -inf masking — the
        // reference the CSC dataflow must reproduce.
        let reference = tape_logits(&vit, &store, &tokens);
        let got = engine.infer_one(&tokens);
        for (g, r) in got.logits.iter().zip(&reference) {
            assert!(
                (g - r).abs() < 1e-4,
                "sparse logit diverges: {g} vs {r} (seed {seed})"
            );
        }
    }
}

#[test]
fn sparse_csc_path_agrees_across_backends_bitwise() {
    let (mut vit, store) = tiny_model(4);
    vit.set_sparsity_plan(local_global_plan(&vit));
    let compiled = CompiledVit::from_parts(&vit, &store);
    let tokens = random_tokens(&vit, 400);
    let blocked = Engine::builder(compiled.clone())
        .backend(Backend::Blocked)
        .build()
        .infer_one(&tokens);
    let scalar = Engine::builder(compiled.clone())
        .backend(Backend::Scalar)
        .build()
        .infer_one(&tokens);
    let simd = Engine::builder(compiled)
        .backend(Backend::Simd)
        .build()
        .infer_one(&tokens);
    assert_eq!(blocked, scalar);
    assert_eq!(blocked, simd);
}

#[test]
fn int8_stays_close_to_fp32_and_shrinks_weights() {
    let (mut vit, store) = tiny_model(5);
    vit.set_sparsity_plan(local_global_plan(&vit));
    let compiled = CompiledVit::from_parts(&vit, &store);
    let fp32 = Engine::builder(compiled.clone()).build();
    let int8 = Engine::builder(compiled.clone())
        .precision(Precision::Int8)
        .build();
    assert_eq!(
        int8.int8_weight_bytes(),
        Some(compiled.num_weight_scalars() - weight_vector_scalars(&compiled))
    );
    let tokens = random_tokens(&vit, 500);
    let a = fp32.infer_one(&tokens).logits;
    let b = int8.infer_one(&tokens).logits;
    let norm = a.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
    let diff = a
        .iter()
        .zip(&b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max);
    assert!(
        diff / norm < 0.35,
        "int8 relative logit error {}",
        diff / norm
    );
}

/// Scalars held in bias / LayerNorm vectors (which stay fp32 under int8:
/// only weight *matrices* — including the positional embedding — are
/// quantized).
fn weight_vector_scalars(c: &CompiledVit) -> usize {
    let cfg = c.config();
    let dim = cfg.dim;
    let per_layer = 3 * dim + dim + cfg.mlp_ratio * dim + dim + 4 * dim;
    dim + cfg.depth * per_layer + 2 * dim + c.num_classes()
}

#[test]
fn infer_batch_preserves_order_and_worker_count_does_not_matter() {
    let (vit, store) = tiny_model(6);
    let compiled = CompiledVit::from_parts(&vit, &store);
    let samples: Vec<Sample> = (0..9)
        .map(|i| Sample {
            tokens: random_tokens(&vit, 600 + i),
            label: (i as usize) % CLASSES,
        })
        .collect();
    let serial: Vec<_> = samples
        .iter()
        .map(|s| {
            Engine::builder(compiled.clone())
                .build()
                .infer_one(&s.tokens)
        })
        .collect();
    for workers in [1usize, 2, 4] {
        let engine = Engine::builder(compiled.clone()).workers(workers).build();
        let batch = engine.infer_batch(&samples);
        assert_eq!(batch, serial, "workers={workers}");
    }
}

#[test]
fn pipeline_report_compiles_and_serves_above_chance() {
    let task = SyntheticTask::generate(SyntheticTaskConfig {
        train_samples: 64,
        test_samples: 32,
        ..Default::default()
    });
    let model = ViTConfig::deit_tiny().reduced_for_training();
    let cfg = PipelineConfig {
        auto_encoder: None,
        split_conquer: Some(SplitConquerConfig::with_sparsity(0.7)),
        pretrain: TrainConfig {
            epochs: 6,
            ..Default::default()
        },
        finetune: TrainConfig {
            epochs: 3,
            lr: 1e-3,
            ..Default::default()
        },
        model,
        seed: 11,
    };
    let report = ViTCoDPipeline::new(cfg).run(&task);
    let tape_accuracy = report.final_accuracy;
    let compiled = report.compile();
    assert!(compiled.num_sparse_heads() > 0);
    let engine = Engine::builder(compiled).build();
    let predictions = engine.infer_batch(&task.test);
    let engine_accuracy = accuracy(&predictions, &task.test);
    // The engine's sparse forward and the tape's -inf-masked evaluation
    // agree to 1e-4 per logit, so accuracies are essentially equal.
    assert!(
        (engine_accuracy - tape_accuracy).abs() <= 1.5 / task.test.len() as f32,
        "engine {engine_accuracy} vs tape {tape_accuracy}"
    );
    assert!(
        engine_accuracy > 0.25,
        "accuracy {engine_accuracy} at chance"
    );
}

#[test]
fn profiled_forward_matches_fast_path_and_partitions_time() {
    let (mut vit, store) = tiny_model(9);
    vit.set_sparsity_plan(local_global_plan(&vit));
    let compiled = CompiledVit::from_parts(&vit, &store);
    let depth = vit.config().depth;
    let samples: Vec<Sample> = (0..3)
        .map(|i| Sample {
            tokens: random_tokens(&vit, 900 + i),
            label: 0,
        })
        .collect();
    for precision in [Precision::Fp32, Precision::Int8] {
        let engine = Engine::builder(compiled.clone())
            .precision(precision)
            .build();
        let fast = engine.infer_batch(&samples);
        let profiled = engine.infer_batch_profiled(&samples);
        assert_eq!(profiled.len(), fast.len());
        for ((p, profile), f) in profiled.iter().zip(&fast) {
            // The profiled forward takes the separable attention
            // kernels, so logits agree within rounding, not bitwise.
            let norm = f.logits.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
            for (a, b) in p.logits.iter().zip(&f.logits) {
                assert!(
                    (a - b).abs() / norm < 1e-3,
                    "{precision:?}: profiled logit {a} vs fast {b}"
                );
            }
            // One LayerOps per layer, every named op observed, and the
            // attributed seconds never exceed the forward total.
            assert_eq!(profile.layers.len(), depth);
            for layer in &profile.layers {
                for (i, s) in layer.seconds.iter().enumerate() {
                    assert!(
                        *s > 0.0,
                        "{precision:?}: op {} has no time",
                        vitcod_engine::OP_NAMES[i]
                    );
                }
            }
            assert!(profile.total_s > 0.0);
            assert!(
                profile.attributed_s() <= profile.total_s,
                "{precision:?}: attributed {} > total {}",
                profile.attributed_s(),
                profile.total_s
            );
            let totals = profile.op_totals();
            let names: Vec<_> = totals.iter().map(|(n, _)| *n).collect();
            assert_eq!(names, vitcod_engine::OP_NAMES.to_vec());
        }
    }
}

#[test]
fn approx_ops_per_sample_tracks_sparsity() {
    let (vit, store) = tiny_model(10);
    let dense = CompiledVit::from_parts(&vit, &store);
    let dense_ops = Engine::builder(dense).build().approx_ops_per_sample();
    let (mut vit2, store2) = tiny_model(10);
    vit2.set_sparsity_plan(local_global_plan(&vit2));
    let sparse = CompiledVit::from_parts(&vit2, &store2);
    let sparse_ops = Engine::builder(sparse).build().approx_ops_per_sample();
    assert!(dense_ops > 0.0);
    // Sparsifying the attention core only removes work.
    assert!(sparse_ops < dense_ops);
    // But never more than the whole core plus softmax.
    let f = vit.config().flops();
    let floor = dense_ops - 2.0 * f.attention_core() as f64 - f.softmax_ops as f64;
    assert!(sparse_ops >= floor);
}

#[test]
fn from_trainer_equals_from_parts() {
    let (vit, store) = tiny_model(8);
    let a = CompiledVit::from_parts(&vit, &store);
    let trainer = Trainer::new(vit.clone(), store);
    let b = CompiledVit::from_trainer(trainer);
    let tokens = random_tokens(&vit, 800);
    assert_eq!(
        Engine::builder(a).build().infer_one(&tokens),
        Engine::builder(b).build().infer_one(&tokens)
    );
}
