//! Per-op timing of a profiled forward pass.
//!
//! [`crate::Engine::infer_batch_profiled`] times every named compute op
//! of every transformer layer on a monotonic clock and returns one
//! [`OpProfile`] per sample. The op set is fixed ([`OP_NAMES`]) so the
//! serving layer can aggregate across layers with bounded metric
//! cardinality — per-layer detail only rides in sampled span trees.

/// Names of the per-layer compute ops a profiled forward times, in
/// execution order. These are the `op` label values of
/// `vitcod_engine_op_seconds{model,op}` and the child span names under a
/// sampled request's `compute` span.
pub const OP_NAMES: [&str; 7] = ["qkv", "scores", "softmax", "spmm", "out_proj", "fc1", "fc2"];

/// Number of distinct per-layer ops ([`OP_NAMES`]).
pub const OP_COUNT: usize = OP_NAMES.len();

/// Wall-clock seconds each named op consumed within one transformer
/// layer, indexed like [`OP_NAMES`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LayerOps {
    /// Seconds per op, `seconds[i]` belonging to `OP_NAMES[i]`.
    pub seconds: [f64; OP_COUNT],
}

impl LayerOps {
    /// Seconds this layer spent across all named ops.
    pub fn total_s(&self) -> f64 {
        self.seconds.iter().sum()
    }
}

/// The per-op timing record of one profiled forward pass.
///
/// All entries share one monotonic clock. LayerNorms, residual adds, the
/// embedding stem and the classifier head are deliberately
/// unattributed, so the named ops always sum to **at most**
/// [`OpProfile::total_s`] — the invariant the span-partition tests
/// enforce.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpProfile {
    /// One entry per transformer layer, in depth order.
    pub layers: Vec<LayerOps>,
    /// Wall-clock seconds of the whole forward, stem and classifier
    /// included.
    pub total_s: f64,
}

impl OpProfile {
    /// Sums each op over all layers: `(op name, seconds)` pairs in
    /// [`OP_NAMES`] order — the bounded-cardinality aggregate behind
    /// `vitcod_engine_op_seconds{model,op}`.
    pub fn op_totals(&self) -> [(&'static str, f64); OP_COUNT] {
        let mut out = [("", 0.0f64); OP_COUNT];
        for (i, name) in OP_NAMES.iter().enumerate() {
            out[i] = (name, self.layers.iter().map(|l| l.seconds[i]).sum::<f64>());
        }
        out
    }

    /// Seconds attributed to named ops, summed over layers and ops. The
    /// remainder up to [`OpProfile::total_s`] is unattributed glue
    /// (LayerNorms, residuals, stem, classifier).
    pub fn attributed_s(&self) -> f64 {
        self.layers.iter().map(LayerOps::total_s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_totals_sum_over_layers_in_name_order() {
        let mut a = LayerOps::default();
        let mut b = LayerOps::default();
        for i in 0..OP_COUNT {
            a.seconds[i] = (i + 1) as f64;
            b.seconds[i] = 10.0 * (i + 1) as f64;
        }
        let p = OpProfile {
            layers: vec![a, b],
            total_s: 500.0,
        };
        let totals = p.op_totals();
        for (i, (name, s)) in totals.iter().enumerate() {
            assert_eq!(*name, OP_NAMES[i]);
            assert!((s - 11.0 * (i + 1) as f64).abs() < 1e-12);
        }
        let attributed: f64 = totals.iter().map(|(_, s)| s).sum();
        assert!((p.attributed_s() - attributed).abs() < 1e-12);
        assert!(p.attributed_s() <= p.total_s);
    }
}
