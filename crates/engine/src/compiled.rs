//! The frozen, compile-once inference artifact.
//!
//! [`CompiledVit`] is everything a serving process needs and nothing it
//! does not: weights lifted out of the training-time
//! [`vitcod_autograd::ParamStore`] into an inference-friendly layout
//! (per-layer fused QKV projection, LayerNorm parameters as plain
//! vectors) plus one [`HeadPlan`] per attention head — either dense or a
//! pre-built [`CscMatrix`] index, the same artifact the accelerator's
//! sparser engine pre-loads. Compilation happens once; the artifact is
//! immutable and shared by every worker of an [`crate::Engine`].

use vitcod_autograd::ParamStore;
use vitcod_core::{CscMatrix, PipelineReport, PolarizedHead};
use vitcod_model::{Sample, Trainer, ViTConfig, VisionTransformer};
use vitcod_tensor::{Matrix, PackedGemmWeights};

/// Per-head execution plan.
#[derive(Debug, Clone)]
pub enum HeadPlan {
    /// Full `n × n` attention on the dense kernel path.
    Dense,
    /// Fixed sparse attention over a pre-compiled CSC index; the head
    /// runs the SDDMM → sparse-softmax → SpMM dataflow.
    Sparse(CscMatrix),
}

impl HeadPlan {
    /// Whether this head runs the sparse dataflow.
    pub fn is_sparse(&self) -> bool {
        matches!(self, HeadPlan::Sparse(_))
    }
}

/// Frozen auto-encoder weights of one layer (encode → decode for Q and
/// K, exactly the round trip the finetuned forward applies).
#[derive(Debug, Clone)]
pub struct CompiledAe {
    /// Q encoder, `heads × compressed_heads`.
    pub enc_q: Matrix,
    /// Q decoder, `compressed_heads × heads`.
    pub dec_q: Matrix,
    /// K encoder, `heads × compressed_heads`.
    pub enc_k: Matrix,
    /// K decoder, `compressed_heads × heads`.
    pub dec_k: Matrix,
}

/// One layer's projection weights packed for the int8 GEMM
/// ([`vitcod_tensor::int8_gemm`]): quantized per-tensor and re-laid out
/// into the interleaved `k`-pair lane panels the kernel consumes.
/// Packed once — at artifact compile or load — and shared read-only by
/// every engine worker, so serving never re-packs per batch.
#[derive(Debug, Clone)]
pub struct Int8Projections {
    /// Fused QKV projection, `dim × 3·dim`, packed.
    pub w_qkv: PackedGemmWeights,
    /// Attention output projection, `dim × dim`, packed.
    pub w_out: PackedGemmWeights,
    /// MLP expansion, `dim × mlp·dim`, packed.
    pub w_fc1: PackedGemmWeights,
    /// MLP contraction, `mlp·dim × dim`, packed.
    pub w_fc2: PackedGemmWeights,
}

/// One transformer block's frozen weights in inference layout.
#[derive(Debug, Clone)]
pub struct CompiledLayer {
    /// Pre-attention LayerNorm gamma.
    pub ln1_gamma: Vec<f32>,
    /// Pre-attention LayerNorm beta.
    pub ln1_beta: Vec<f32>,
    /// Fused QKV projection, `dim × 3·dim` (`[Wq | Wk | Wv]`): one GEMM
    /// per layer instead of three, with bit-identical columns.
    pub w_qkv: Matrix,
    /// Fused QKV bias, length `3·dim`.
    pub b_qkv: Vec<f32>,
    /// Attention output projection, `dim × dim`.
    pub w_out: Matrix,
    /// Output-projection bias.
    pub b_out: Vec<f32>,
    /// Pre-MLP LayerNorm gamma.
    pub ln2_gamma: Vec<f32>,
    /// Pre-MLP LayerNorm beta.
    pub ln2_beta: Vec<f32>,
    /// MLP expansion weights, `dim × mlp·dim`.
    pub w_fc1: Matrix,
    /// MLP expansion bias.
    pub b_fc1: Vec<f32>,
    /// MLP contraction weights, `mlp·dim × dim`.
    pub w_fc2: Matrix,
    /// MLP contraction bias.
    pub b_fc2: Vec<f32>,
    /// Frozen auto-encoder round-trip weights, if installed.
    pub ae: Option<CompiledAe>,
    /// One execution plan per attention head.
    pub heads: Vec<HeadPlan>,
}

/// A Vision Transformer frozen for inference.
///
/// Build one with [`CompiledVit::from_trainer`] (or
/// [`crate::CompileReport::compile`] on a finished
/// [`PipelineReport`]), then serve it through [`crate::Engine`].
#[derive(Debug, Clone)]
pub struct CompiledVit {
    pub(crate) cfg: ViTConfig,
    pub(crate) in_dim: usize,
    pub(crate) num_classes: usize,
    pub(crate) patch_w: Matrix,
    pub(crate) patch_b: Vec<f32>,
    pub(crate) pos_embed: Matrix,
    pub(crate) layers: Vec<CompiledLayer>,
    pub(crate) final_gamma: Vec<f32>,
    pub(crate) final_beta: Vec<f32>,
    pub(crate) head_w: Matrix,
    pub(crate) head_b: Vec<f32>,
    /// Per-layer packed int8 projection weights; populated lazily by
    /// [`CompiledVit::ensure_int8_projections`] or directly from an int8
    /// artifact's payloads (identical bytes, no requantization).
    pub(crate) int8: Option<Vec<Int8Projections>>,
}

fn row_vec(store: &ParamStore, id: vitcod_autograd::ParamId) -> Vec<f32> {
    store.value(id).row(0).to_vec()
}

impl CompiledVit {
    /// Freezes `model`'s weights out of `store`.
    ///
    /// Sparse heads are taken from the model's installed sparsity plan
    /// (each 0/1 mask is compiled to a CSC index); heads without a mask
    /// stay dense.
    pub fn from_parts(model: &VisionTransformer, store: &ParamStore) -> Self {
        let plans = Self::plans_from_model(model);
        Self::from_parts_with_plans(model, store, plans)
    }

    /// Consumes a [`Trainer`] and freezes its model — the natural hand-off
    /// point from training to serving.
    pub fn from_trainer(trainer: Trainer) -> Self {
        let (model, store) = trainer.into_parts();
        Self::from_parts(&model, &store)
    }

    /// Freezes `model` with explicit per-`[layer][head]` plans (used by
    /// the pipeline compiler, which derives CSC indexes straight from its
    /// [`PolarizedHead`]s).
    ///
    /// # Panics
    ///
    /// Panics if `plans` does not cover every `(layer, head)` or a CSC
    /// index size differs from the token count.
    pub fn from_parts_with_plans(
        model: &VisionTransformer,
        store: &ParamStore,
        plans: Vec<Vec<HeadPlan>>,
    ) -> Self {
        let cfg = model.config().clone();
        assert_eq!(plans.len(), cfg.depth, "plans must cover all layers");
        let layers = (0..cfg.depth)
            .zip(plans)
            .map(|(l, heads)| {
                assert_eq!(heads.len(), cfg.heads, "layer {l} must cover all heads");
                for h in &heads {
                    if let HeadPlan::Sparse(csc) = h {
                        assert_eq!(csc.size(), cfg.tokens, "CSC size must match tokens");
                    }
                }
                let b = model.block_modules(l);
                let wq = store.value(b.wq.weight());
                let wk = store.value(b.wk.weight());
                let wv = store.value(b.wv.weight());
                let mut b_qkv = row_vec(store, b.wq.bias());
                b_qkv.extend_from_slice(store.value(b.wk.bias()).row(0));
                b_qkv.extend_from_slice(store.value(b.wv.bias()).row(0));
                CompiledLayer {
                    ln1_gamma: row_vec(store, b.ln1.gamma()),
                    ln1_beta: row_vec(store, b.ln1.beta()),
                    w_qkv: Matrix::hcat(&[wq, wk, wv]),
                    b_qkv,
                    w_out: store.value(b.wo.weight()).clone(),
                    b_out: row_vec(store, b.wo.bias()),
                    ln2_gamma: row_vec(store, b.ln2.gamma()),
                    ln2_beta: row_vec(store, b.ln2.beta()),
                    w_fc1: store.value(b.fc1.weight()).clone(),
                    b_fc1: row_vec(store, b.fc1.bias()),
                    w_fc2: store.value(b.fc2.weight()).clone(),
                    b_fc2: row_vec(store, b.fc2.bias()),
                    ae: b.ae.map(|ae| CompiledAe {
                        enc_q: store.value(ae.enc_q).clone(),
                        dec_q: store.value(ae.dec_q).clone(),
                        enc_k: store.value(ae.enc_k).clone(),
                        dec_k: store.value(ae.dec_k).clone(),
                    }),
                    heads,
                }
            })
            .collect();
        Self {
            in_dim: model.in_dim(),
            num_classes: model.num_classes(),
            patch_w: store.value(model.patch_embedding().weight()).clone(),
            patch_b: row_vec(store, model.patch_embedding().bias()),
            pos_embed: store.value(model.positional_embedding()).clone(),
            layers,
            final_gamma: row_vec(store, model.final_layernorm().gamma()),
            final_beta: row_vec(store, model.final_layernorm().beta()),
            head_w: store.value(model.classifier().weight()).clone(),
            head_b: row_vec(store, model.classifier().bias()),
            cfg,
            int8: None,
        }
    }

    /// Per-head plans from a model's installed sparsity plan (dense
    /// everywhere when no plan is installed).
    fn plans_from_model(model: &VisionTransformer) -> Vec<Vec<HeadPlan>> {
        let cfg = model.config();
        let n = cfg.tokens;
        (0..cfg.depth)
            .map(|l| {
                (0..cfg.heads)
                    .map(|h| {
                        match model
                            .sparsity_plan()
                            .and_then(|p| p.get(l))
                            .and_then(|layer| layer.get(h))
                            .and_then(|m| m.as_ref())
                        {
                            Some(m) => HeadPlan::Sparse(CscMatrix::from_indicator(n, |q, k| {
                                m.get(q, k) != 0.0
                            })),
                            None => HeadPlan::Dense,
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Per-head plans from split-and-conquer output: each head's pruned
    /// mask (original token order — what finetuning used) becomes its CSC
    /// index.
    pub fn plans_from_polarized(polarized: &[Vec<PolarizedHead>]) -> Vec<Vec<HeadPlan>> {
        polarized
            .iter()
            .map(|layer| {
                layer
                    .iter()
                    .map(|h| HeadPlan::Sparse(CscMatrix::from_mask(&h.pruned)))
                    .collect()
            })
            .collect()
    }

    /// Model configuration the artifact was compiled from.
    pub fn config(&self) -> &ViTConfig {
        &self.cfg
    }

    /// Raw patch feature dimension consumed.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Number of classes predicted.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of sparse heads across all layers.
    pub fn num_sparse_heads(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| &l.heads)
            .filter(|h| h.is_sparse())
            .count()
    }

    /// Mean sparsity across the sparse heads' CSC indexes (0.0 when the
    /// model is fully dense).
    pub fn mean_attention_sparsity(&self) -> f64 {
        let n = self.cfg.tokens;
        let mut sum = 0.0;
        let mut count = 0usize;
        for l in &self.layers {
            for h in &l.heads {
                if let HeadPlan::Sparse(csc) = h {
                    sum += 1.0 - csc.nnz() as f64 / (n * n) as f64;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Total frozen weight scalars (fp32 elements).
    pub fn num_weight_scalars(&self) -> usize {
        let mut n = self.patch_w.len()
            + self.patch_b.len()
            + self.pos_embed.len()
            + self.final_gamma.len()
            + self.final_beta.len()
            + self.head_w.len()
            + self.head_b.len();
        for l in &self.layers {
            n += l.w_qkv.len()
                + l.b_qkv.len()
                + l.w_out.len()
                + l.b_out.len()
                + l.w_fc1.len()
                + l.b_fc1.len()
                + l.w_fc2.len()
                + l.b_fc2.len()
                + l.ln1_gamma.len()
                + l.ln1_beta.len()
                + l.ln2_gamma.len()
                + l.ln2_beta.len();
            if let Some(ae) = &l.ae {
                n += ae.enc_q.len() + ae.dec_q.len() + ae.enc_k.len() + ae.dec_k.len();
            }
        }
        n
    }

    pub(crate) fn patch_w(&self) -> &Matrix {
        &self.patch_w
    }

    pub(crate) fn patch_b(&self) -> &[f32] {
        &self.patch_b
    }

    pub(crate) fn pos_embed(&self) -> &Matrix {
        &self.pos_embed
    }

    pub(crate) fn layers(&self) -> &[CompiledLayer] {
        &self.layers
    }

    pub(crate) fn final_ln(&self) -> (&[f32], &[f32]) {
        (&self.final_gamma, &self.final_beta)
    }

    pub(crate) fn head_w(&self) -> &Matrix {
        &self.head_w
    }

    pub(crate) fn head_b(&self) -> &[f32] {
        &self.head_b
    }

    /// Packs each layer's projection weights for the int8 GEMM if not
    /// already present. Packing quantizes the *current* fp32 weights —
    /// call this before any lossy weight transform so the packed bytes
    /// match what [`crate::save_compiled_vit`] would store.
    pub(crate) fn ensure_int8_projections(&mut self) {
        if self.int8.is_some() {
            return;
        }
        self.int8 = Some(
            self.layers
                .iter()
                .map(|l| Int8Projections {
                    w_qkv: PackedGemmWeights::pack(&l.w_qkv),
                    w_out: PackedGemmWeights::pack(&l.w_out),
                    w_fc1: PackedGemmWeights::pack(&l.w_fc1),
                    w_fc2: PackedGemmWeights::pack(&l.w_fc2),
                })
                .collect(),
        );
    }

    pub(crate) fn int8_projections(&self) -> Option<&[Int8Projections]> {
        self.int8.as_deref()
    }

    /// Applies `f` to every weight matrix in place — projections, MLPs,
    /// AE mixers and the positional embedding; biases and LayerNorm
    /// parameters are vectors and stay untouched. The engine's int8
    /// build round-trips all of these through quantization.
    pub(crate) fn map_weights(&mut self, mut f: impl FnMut(&mut Matrix)) {
        f(&mut self.patch_w);
        f(&mut self.pos_embed);
        f(&mut self.head_w);
        for l in &mut self.layers {
            f(&mut l.w_qkv);
            f(&mut l.w_out);
            f(&mut l.w_fc1);
            f(&mut l.w_fc2);
            if let Some(ae) = &mut l.ae {
                f(&mut ae.enc_q);
                f(&mut ae.dec_q);
                f(&mut ae.enc_k);
                f(&mut ae.dec_k);
            }
        }
    }
}

/// Extension trait turning a finished training pipeline into the serving
/// artifact: `report.compile()` is the boundary between the two worlds.
pub trait CompileReport {
    /// Freezes the pipeline's finetuned model into a [`CompiledVit`],
    /// compiling each polarized head's pruned mask to a CSC index.
    fn compile(self) -> CompiledVit;
}

impl CompileReport for PipelineReport {
    fn compile(self) -> CompiledVit {
        let (model, store) = self.trainer.into_parts();
        if self.polarized.is_empty() {
            CompiledVit::from_parts(&model, &store)
        } else {
            let plans = CompiledVit::plans_from_polarized(&self.polarized);
            CompiledVit::from_parts_with_plans(&model, &store, plans)
        }
    }
}

/// Convenience for tests and benchmarks: labelled samples the engine can
/// classify, straight from a synthetic task split.
pub fn accuracy(predictions: &[crate::Prediction], samples: &[Sample]) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(samples)
        .filter(|(p, s)| p.class == s.label)
        .count();
    correct as f32 / samples.len() as f32
}
