//! On-disk persistence for [`CompiledVit`]: the hooks that lower the
//! engine's frozen artifact into the format-level
//! [`CompiledModelArtifact`] record (and back), so a compiled model can
//! outlive the process that trained it.
//!
//! The format itself lives in [`vitcod_core::artifact`]
//! ([`save_compiled`]/[`load_compiled`], same line-oriented style as
//! `save_masks`); this module owns the *schema*: which meta keys carry
//! the [`ViTConfig`], which tensor names hold which weights, and which
//! tensors an int8 save stores as 1-byte quantized payloads.
//!
//! Guarantees:
//!
//! * **fp32 saves are bit-exact** — every weight scalar is written as
//!   its IEEE-754 bit pattern, so a reloaded model's logits are
//!   bit-identical to the original's.
//! * **int8 saves are byte-exact** — weight matrices on the engine's
//!   quantization set are stored as raw i8 bytes plus their bit-exact
//!   scale; save → load → save reproduces the identical artifact text.

use std::fmt;

use vitcod_core::{
    load_compiled, save_compiled, CompiledModelArtifact, HeadPlanRecord, NamedTensor,
    ParseArtifactError, TensorPayload,
};
use vitcod_model::{ModelFamily, StageConfig, ViTConfig};
use vitcod_tensor::{Matrix, PackedGemmWeights, QuantParams, QuantizedMatrix};

use crate::compiled::{CompiledAe, CompiledLayer, CompiledVit, HeadPlan, Int8Projections};
use crate::Precision;

/// Error loading a [`CompiledVit`] from its serialized form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The text failed to parse at the format level; carries the
    /// offending line number.
    Parse(ParseArtifactError),
    /// The record parsed but does not describe a valid compiled ViT
    /// (missing tensor, wrong shape, inconsistent plan counts, ...).
    Schema(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Parse(e) => write!(f, "{e}"),
            ArtifactError::Schema(m) => write!(f, "invalid compiled-model schema: {m}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<ParseArtifactError> for ArtifactError {
    fn from(e: ParseArtifactError) -> Self {
        ArtifactError::Parse(e)
    }
}

fn schema(msg: impl Into<String>) -> ArtifactError {
    ArtifactError::Schema(msg.into())
}

/// Serializes `model` to the versioned text format. Under
/// [`Precision::Int8`] the engine's quantization set (projections, MLPs,
/// AE mixers, patch/pos/classifier weights) is stored as 1-byte
/// payloads; biases and LayerNorm parameters stay fp32, exactly as the
/// int8 engine computes.
pub fn save_compiled_vit(model: &CompiledVit, precision: Precision) -> String {
    save_compiled(&model.to_artifact(precision))
}

/// Parses a model written by [`save_compiled_vit`], returning the
/// reconstructed artifact and the precision it was saved under (int8
/// payloads dequantize to exactly the values the bytes represent).
///
/// # Errors
///
/// [`ArtifactError::Parse`] on malformed text (with line number),
/// [`ArtifactError::Schema`] when the record is not a compiled ViT.
pub fn load_compiled_vit(text: &str) -> Result<(CompiledVit, Precision), ArtifactError> {
    let record = load_compiled(text)?;
    let model = CompiledVit::from_artifact(&record)?;
    let precision = match record.meta_value("precision") {
        Some("int8") => Precision::Int8,
        Some("fp32") | None => Precision::Fp32,
        Some(other) => return Err(schema(format!("unknown precision '{other}'"))),
    };
    Ok((model, precision))
}

/// Pushes a weight matrix, quantizing it when `int8` (the engine's
/// 1-byte-per-weight artifact bytes).
fn push_weight(tensors: &mut Vec<NamedTensor>, name: String, m: &Matrix, int8: bool) {
    let payload = if int8 {
        let q = QuantizedMatrix::quantize(m);
        TensorPayload::I8 {
            shape: q.shape(),
            scale: q.params().scale,
            data: (0..q.shape().0)
                .flat_map(|r| q.row_raw(r).iter().copied())
                .collect(),
        }
    } else {
        TensorPayload::F32(m.clone())
    };
    tensors.push(NamedTensor { name, payload });
}

/// Pushes a parameter vector as a 1 × n fp32 tensor (vectors are never
/// quantized — the int8 engine keeps biases and LayerNorm in fp32).
fn push_vec(tensors: &mut Vec<NamedTensor>, name: String, v: &[f32]) {
    tensors.push(NamedTensor {
        name,
        payload: TensorPayload::F32(Matrix::from_vec(1, v.len(), v.to_vec())),
    });
}

fn take_matrix(
    record: &CompiledModelArtifact,
    name: &str,
    shape: (usize, usize),
) -> Result<Matrix, ArtifactError> {
    let t = record
        .tensor(name)
        .ok_or_else(|| schema(format!("missing tensor '{name}'")))?;
    if t.payload.shape() != shape {
        return Err(schema(format!(
            "tensor '{name}' has shape {:?}, expected {:?}",
            t.payload.shape(),
            shape
        )));
    }
    Ok(t.payload.to_matrix())
}

/// Packs an int8 projection payload straight into the serving GEMM
/// layout. The artifact's i8 bytes and scale are used verbatim — no
/// dequantize/requantize round-trip — so the packed operand is
/// byte-identical to what [`CompiledVit::ensure_int8_projections`]
/// produced at save time. Returns `None` for fp32 payloads.
fn packed_from_payload(record: &CompiledModelArtifact, name: &str) -> Option<PackedGemmWeights> {
    match &record.tensor(name)?.payload {
        TensorPayload::I8 { shape, scale, data } => {
            let q = QuantizedMatrix::from_raw(
                shape.0,
                shape.1,
                data.clone(),
                QuantParams { scale: *scale },
            );
            Some(PackedGemmWeights::from_quantized(&q))
        }
        TensorPayload::F32(_) => None,
    }
}

fn take_vec(
    record: &CompiledModelArtifact,
    name: &str,
    len: usize,
) -> Result<Vec<f32>, ArtifactError> {
    Ok(take_matrix(record, name, (1, len))?.row(0).to_vec())
}

fn meta_parse<T: std::str::FromStr>(
    record: &CompiledModelArtifact,
    key: &str,
) -> Result<T, ArtifactError> {
    record
        .meta_value(key)
        .ok_or_else(|| schema(format!("missing meta key '{key}'")))?
        .parse::<T>()
        .map_err(|_| schema(format!("malformed meta value for '{key}'")))
}

/// Resolves a model name back to the `&'static str` the [`ViTConfig`]
/// zoo uses; unknown names (custom configs) are interned in a process
/// table, leaking one allocation per *distinct* name — so a long-lived
/// server reloading the same artifact forever holds constant memory.
fn static_name(name: &str) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock, PoisonError};
    for cfg in ViTConfig::all_paper_models() {
        if cfg.name == name {
            return cfg.name;
        }
    }
    static INTERNED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    // Poison recovery: the only mutation under this lock is a single
    // HashSet insert of an already-leaked str, so a panicking interner
    // cannot leave the table inconsistent.
    let mut table = INTERNED
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    match table.get(name) {
        Some(interned) => interned,
        None => {
            let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
            table.insert(leaked);
            leaked
        }
    }
}

impl CompiledVit {
    /// Lowers the frozen model into the schema-free format record.
    /// Under [`Precision::Int8`], the weight matrices the int8 engine
    /// quantizes are stored as i8 payloads; everything else stays fp32.
    pub fn to_artifact(&self, precision: Precision) -> CompiledModelArtifact {
        let int8 = precision == Precision::Int8;
        let cfg = &self.cfg;
        let stages: Vec<String> = cfg
            .stages
            .iter()
            .map(|s| format!("{},{},{},{}", s.tokens, s.dim, s.heads, s.depth))
            .collect();
        let meta = vec![
            ("model".to_string(), cfg.name.to_string()),
            ("family".to_string(), cfg.family.to_string()),
            ("tokens".to_string(), cfg.tokens.to_string()),
            ("dim".to_string(), cfg.dim.to_string()),
            ("heads".to_string(), cfg.heads.to_string()),
            ("depth".to_string(), cfg.depth.to_string()),
            ("mlp_ratio".to_string(), cfg.mlp_ratio.to_string()),
            ("stages".to_string(), stages.join(";")),
            ("stem_macs".to_string(), cfg.stem_macs.to_string()),
            // f64 stored bit-exactly, like every other scalar.
            (
                "paper_sparsity".to_string(),
                format!("{:016x}", cfg.paper_sparsity.to_bits()),
            ),
            ("in_dim".to_string(), self.in_dim.to_string()),
            ("num_classes".to_string(), self.num_classes.to_string()),
            (
                "precision".to_string(),
                if int8 { "int8" } else { "fp32" }.to_string(),
            ),
        ];

        let mut tensors = Vec::new();
        push_weight(&mut tensors, "patch_w".into(), &self.patch_w, int8);
        push_vec(&mut tensors, "patch_b".into(), &self.patch_b);
        push_weight(&mut tensors, "pos_embed".into(), &self.pos_embed, int8);
        for (l, layer) in self.layers.iter().enumerate() {
            let name = |field: &str| format!("layer{l}.{field}");
            push_vec(&mut tensors, name("ln1_gamma"), &layer.ln1_gamma);
            push_vec(&mut tensors, name("ln1_beta"), &layer.ln1_beta);
            push_weight(&mut tensors, name("w_qkv"), &layer.w_qkv, int8);
            push_vec(&mut tensors, name("b_qkv"), &layer.b_qkv);
            push_weight(&mut tensors, name("w_out"), &layer.w_out, int8);
            push_vec(&mut tensors, name("b_out"), &layer.b_out);
            push_vec(&mut tensors, name("ln2_gamma"), &layer.ln2_gamma);
            push_vec(&mut tensors, name("ln2_beta"), &layer.ln2_beta);
            push_weight(&mut tensors, name("w_fc1"), &layer.w_fc1, int8);
            push_vec(&mut tensors, name("b_fc1"), &layer.b_fc1);
            push_weight(&mut tensors, name("w_fc2"), &layer.w_fc2, int8);
            push_vec(&mut tensors, name("b_fc2"), &layer.b_fc2);
            if let Some(ae) = &layer.ae {
                push_weight(&mut tensors, name("ae.enc_q"), &ae.enc_q, int8);
                push_weight(&mut tensors, name("ae.dec_q"), &ae.dec_q, int8);
                push_weight(&mut tensors, name("ae.enc_k"), &ae.enc_k, int8);
                push_weight(&mut tensors, name("ae.dec_k"), &ae.dec_k, int8);
            }
        }
        push_vec(&mut tensors, "final_gamma".into(), &self.final_gamma);
        push_vec(&mut tensors, "final_beta".into(), &self.final_beta);
        push_weight(&mut tensors, "head_w".into(), &self.head_w, int8);
        push_vec(&mut tensors, "head_b".into(), &self.head_b);

        let plans = self
            .layers
            .iter()
            .map(|layer| {
                layer
                    .heads
                    .iter()
                    .map(|h| match h {
                        HeadPlan::Dense => HeadPlanRecord::Dense,
                        HeadPlan::Sparse(csc) => HeadPlanRecord::Sparse(csc.clone()),
                    })
                    .collect()
            })
            .collect();

        CompiledModelArtifact {
            meta,
            tensors,
            plans,
        }
    }

    /// Reconstructs a frozen model from a format record, validating the
    /// schema (tensor presence, shapes, plan counts) along the way.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Schema`] naming the first inconsistency.
    pub fn from_artifact(record: &CompiledModelArtifact) -> Result<Self, ArtifactError> {
        let name = record
            .meta_value("model")
            .ok_or_else(|| schema("missing meta key 'model'"))?;
        let family = match record
            .meta_value("family")
            .ok_or_else(|| schema("missing meta key 'family'"))?
        {
            "DeiT" => ModelFamily::DeiT,
            "LeViT" => ModelFamily::LeViT,
            "Strided Transformer" => ModelFamily::Strided,
            other => return Err(schema(format!("unknown model family '{other}'"))),
        };
        let tokens: usize = meta_parse(record, "tokens")?;
        let dim: usize = meta_parse(record, "dim")?;
        let heads: usize = meta_parse(record, "heads")?;
        let depth: usize = meta_parse(record, "depth")?;
        let mlp_ratio: usize = meta_parse(record, "mlp_ratio")?;
        let stem_macs: u64 = meta_parse(record, "stem_macs")?;
        let sparsity_bits = record
            .meta_value("paper_sparsity")
            .ok_or_else(|| schema("missing meta key 'paper_sparsity'"))?;
        let paper_sparsity = f64::from_bits(
            u64::from_str_radix(sparsity_bits, 16)
                .map_err(|_| schema("malformed 'paper_sparsity' bit pattern"))?,
        );
        let stages = record
            .meta_value("stages")
            .ok_or_else(|| schema("missing meta key 'stages'"))?
            .split(';')
            .map(|s| {
                let fields: Vec<usize> = s
                    .split(',')
                    .map(|v| v.parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| schema(format!("malformed stage '{s}'")))?;
                if fields.len() != 4 {
                    return Err(schema(format!("stage '{s}' needs 4 fields")));
                }
                Ok(StageConfig {
                    tokens: fields[0],
                    dim: fields[1],
                    heads: fields[2],
                    depth: fields[3],
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        if stages.is_empty() {
            return Err(schema("model needs at least one stage"));
        }
        if heads == 0 || !dim.is_multiple_of(heads) {
            return Err(schema(format!("dim {dim} not divisible by heads {heads}")));
        }
        let cfg = ViTConfig {
            name: static_name(name),
            family,
            tokens,
            dim,
            heads,
            depth,
            mlp_ratio,
            stages,
            stem_macs,
            paper_sparsity,
        };
        let in_dim: usize = meta_parse(record, "in_dim")?;
        let num_classes: usize = meta_parse(record, "num_classes")?;

        if record.plans.len() != depth {
            return Err(schema(format!(
                "{} plan layers for depth {depth}",
                record.plans.len()
            )));
        }
        // Meta values are untrusted: shape arithmetic must error, not
        // overflow-panic (matching the core parser's hardening).
        let overflow = || schema(format!("dim {dim} x mlp_ratio {mlp_ratio} overflows"));
        let three_dim = dim.checked_mul(3).ok_or_else(overflow)?;
        let hidden = dim.checked_mul(mlp_ratio).ok_or_else(overflow)?;
        let layers = record
            .plans
            .iter()
            .enumerate()
            .map(|(l, plan)| {
                if plan.len() != heads {
                    return Err(schema(format!(
                        "layer {l} has {} head plans for {heads} heads",
                        plan.len()
                    )));
                }
                let name = |field: &str| format!("layer{l}.{field}");
                let head_plans = plan
                    .iter()
                    .map(|h| match h {
                        HeadPlanRecord::Dense => Ok(HeadPlan::Dense),
                        HeadPlanRecord::Sparse(csc) => {
                            if csc.size() != tokens {
                                return Err(schema(format!(
                                    "layer {l}: CSC index size {} != tokens {tokens}",
                                    csc.size()
                                )));
                            }
                            Ok(HeadPlan::Sparse(csc.clone()))
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                // The AE's compressed width is not in the meta — recover
                // it from the encoder tensor itself.
                let ae = if let Some(t) = record.tensor(&name("ae.enc_q")) {
                    let enc_q = t.payload.to_matrix();
                    if enc_q.rows() != heads {
                        return Err(schema(format!(
                            "layer {l}: ae.enc_q has {} rows for {heads} heads",
                            enc_q.rows()
                        )));
                    }
                    let compressed = enc_q.cols();
                    Some(CompiledAe {
                        enc_q,
                        dec_q: take_matrix(record, &name("ae.dec_q"), (compressed, heads))?,
                        enc_k: take_matrix(record, &name("ae.enc_k"), (heads, compressed))?,
                        dec_k: take_matrix(record, &name("ae.dec_k"), (compressed, heads))?,
                    })
                } else {
                    None
                };
                Ok(CompiledLayer {
                    ln1_gamma: take_vec(record, &name("ln1_gamma"), dim)?,
                    ln1_beta: take_vec(record, &name("ln1_beta"), dim)?,
                    w_qkv: take_matrix(record, &name("w_qkv"), (dim, three_dim))?,
                    b_qkv: take_vec(record, &name("b_qkv"), three_dim)?,
                    w_out: take_matrix(record, &name("w_out"), (dim, dim))?,
                    b_out: take_vec(record, &name("b_out"), dim)?,
                    ln2_gamma: take_vec(record, &name("ln2_gamma"), dim)?,
                    ln2_beta: take_vec(record, &name("ln2_beta"), dim)?,
                    w_fc1: take_matrix(record, &name("w_fc1"), (dim, hidden))?,
                    b_fc1: take_vec(record, &name("b_fc1"), hidden)?,
                    w_fc2: take_matrix(record, &name("w_fc2"), (hidden, dim))?,
                    b_fc2: take_vec(record, &name("b_fc2"), dim)?,
                    ae,
                    heads: head_plans,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;

        // Int8 artifacts carry the projection bytes the serving GEMM
        // consumes: pack them directly (same bytes, same scales) so a
        // loaded engine computes exactly what the saved one did.
        let int8 = (0..depth)
            .map(|l| {
                let name = |field: &str| format!("layer{l}.{field}");
                Some(Int8Projections {
                    w_qkv: packed_from_payload(record, &name("w_qkv"))?,
                    w_out: packed_from_payload(record, &name("w_out"))?,
                    w_fc1: packed_from_payload(record, &name("w_fc1"))?,
                    w_fc2: packed_from_payload(record, &name("w_fc2"))?,
                })
            })
            .collect::<Option<Vec<_>>>();

        Ok(CompiledVit {
            patch_w: take_matrix(record, "patch_w", (in_dim, dim))?,
            patch_b: take_vec(record, "patch_b", dim)?,
            pos_embed: take_matrix(record, "pos_embed", (tokens, dim))?,
            layers,
            final_gamma: take_vec(record, "final_gamma", dim)?,
            final_beta: take_vec(record, "final_beta", dim)?,
            head_w: take_matrix(record, "head_w", (dim, num_classes))?,
            head_b: take_vec(record, "head_b", num_classes)?,
            cfg,
            in_dim,
            num_classes,
            int8,
        })
    }

    /// Saves this model as fp32 text ([`save_compiled_vit`] shorthand).
    pub fn save(&self) -> String {
        save_compiled_vit(self, Precision::Fp32)
    }

    /// Loads a model saved by [`CompiledVit::save`] /
    /// [`save_compiled_vit`], discarding the stored precision tag.
    ///
    /// # Errors
    ///
    /// See [`load_compiled_vit`].
    pub fn load(text: &str) -> Result<Self, ArtifactError> {
        load_compiled_vit(text).map(|(model, _)| model)
    }
}
