//! Compile-once / serve-many inference for the ViTCoD reproduction.
//!
//! The training side of this workspace runs every forward through the
//! autograd tape; that is the right tool for finetuning and exactly the
//! wrong one for serving. This crate draws the boundary the paper's
//! co-design implies (and related stacks like ViTA and CHOSEN make
//! explicit): a **frozen, compile-once artifact** and a **batched
//! engine** that serves it.
//!
//! * [`CompiledVit`] — weights frozen out of a trained
//!   [`vitcod_model::Trainer`] into inference layout (per-layer fused
//!   QKV projections) plus one [`HeadPlan`] per attention head: dense,
//!   or a pre-compiled CSC index for the accelerator's sparse dataflow.
//!   [`CompileReport::compile`] produces it straight from a finished
//!   [`vitcod_core::PipelineReport`].
//! * [`Engine`] — built via
//!   `Engine::builder(compiled).backend(..).precision(..).workers(..)`;
//!   [`Engine::infer_batch`] runs a tape-free forward that fans samples
//!   across worker threads and routes sparse heads through the real
//!   SDDMM → sparse-softmax → SpMM dataflow from
//!   [`vitcod_tensor::sparse`] instead of dense `-inf` masking.
//!
//! The fp32 dense path replays exactly the kernel sequence the tape
//! records, so its logits are bit-identical to the training forward's —
//! the parity tests in this crate enforce that. [`Precision::Int8`]
//! quantizes every weight through [`vitcod_tensor::QuantizedMatrix`] and
//! computes attention scores with i8 operands and i32 accumulation, the
//! accelerator MAC lines' arithmetic.

#![forbid(unsafe_code)]
// The serving path must not panic (vitcod-lint V001); clippy enforces
// the unwrap half at compile time. Tests may unwrap freely.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]

mod artifact;
mod compiled;
mod engine;
pub mod profile;

pub use artifact::{load_compiled_vit, save_compiled_vit, ArtifactError};
pub use compiled::{
    accuracy, CompileReport, CompiledAe, CompiledLayer, CompiledVit, HeadPlan, Int8Projections,
};
pub use engine::{Engine, EngineBuilder, Precision, Prediction};
pub use profile::{LayerOps, OpProfile, OP_COUNT, OP_NAMES};
