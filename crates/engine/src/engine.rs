//! The batched serving engine: a tape-free forward over a frozen
//! [`CompiledVit`].

use std::sync::Arc;
use std::time::Instant;

use vitcod_autograd::LAYERNORM_EPS;
use vitcod_model::Sample;
use vitcod_tensor::sparse;
use vitcod_tensor::{
    argmax, gelu, int8_gemm, kernels, Backend, Matrix, QuantizedMatrix, QuantizedRows,
};

use crate::compiled::{CompiledLayer, CompiledVit, HeadPlan, Int8Projections};
use crate::profile::{LayerOps, OpProfile};

/// [`crate::profile::OP_NAMES`] indexes, named for the profiled forward.
const OP_QKV: usize = 0;
const OP_SCORES: usize = 1;
const OP_SOFTMAX: usize = 2;
const OP_SPMM: usize = 3;
const OP_OUT_PROJ: usize = 4;
const OP_FC1: usize = 5;
const OP_FC2: usize = 6;

/// Runs `f`, charging its wall-clock seconds to `slot`.
fn timed<T>(slot: &mut f64, f: impl FnOnce() -> T) -> T {
    let t = Instant::now();
    let out = f();
    *slot += t.elapsed().as_secs_f64();
    out
}

/// LayerNorm epsilon, shared with the training tape so the fp32 dense
/// forward reproduces the tape's logits bit for bit.
const LN_EPS: f32 = LAYERNORM_EPS;

/// Numeric precision of the serving engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full fp32: bit-identical to the training tape's forward on dense
    /// models.
    #[default]
    Fp32,
    /// 8-bit weights, 8-bit projection GEMMs and 8-bit attention
    /// scores. Every weight matrix is round-tripped through symmetric
    /// per-tensor quantization at build time (the values an int8
    /// artifact would carry); the fused-QKV, attention-output and MLP
    /// projections then run the packed i8×i8→i32 GEMM
    /// ([`vitcod_tensor::int8_gemm`]) against per-row-quantized
    /// activations, each activation tensor quantized **once per layer**
    /// and shared by every consumer — attention Q/K included, since
    /// per-row scales survive per-head column slicing. Attention scores
    /// use i32 accumulation, the accelerator MAC lines' arithmetic.
    /// Softmax, GELU, residuals and LayerNorm stay fp32, as the paper's
    /// softmax units do.
    Int8,
}

impl std::fmt::Display for Precision {
    /// The wire name used in artifacts, `/v1/reload` bodies and metric
    /// labels: `fp32` or `int8`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Precision::Fp32 => "fp32",
            Precision::Int8 => "int8",
        })
    }
}

/// One classification result.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Predicted class (argmax of `logits`).
    pub class: usize,
    /// Raw class logits.
    pub logits: Vec<f32>,
}

/// Builder for [`Engine`]; see [`Engine::builder`].
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    compiled: Arc<CompiledVit>,
    backend: Option<Backend>,
    precision: Precision,
    workers: usize,
}

impl EngineBuilder {
    /// Pins the kernel backend used while this engine runs inference.
    /// All backends produce bit-identical results (the kernel layer's
    /// agreement contract); `Scalar` exists for auditing. Defaults to
    /// the process-wide backend (which honours `VITCOD_BACKEND`).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Selects the numeric precision (default [`Precision::Fp32`]).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Number of worker threads batches fan out across (`0`, the
    /// default, follows the kernel layer's thread budget).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Finalises the engine. For [`Precision::Int8`] this is where the
    /// weights are quantized: each matrix is round-tripped through
    /// [`QuantizedMatrix`] so the engine computes on exactly the values
    /// the 1-byte-per-weight artifact represents, and the projection
    /// weights are packed for the int8 GEMM (unless the artifact loader
    /// already installed packed payloads — then those identical bytes
    /// are kept).
    ///
    /// An fp32 build never copies the weights: the engine shares the
    /// builder's `Arc`'d artifact, so any number of engines (and any
    /// number of serving workers behind them) hold the same frozen
    /// scalars. An int8 build clones the artifact exactly once to hold
    /// the quantized values.
    pub fn build(self) -> Engine {
        let (model, int8_weight_bytes) = match self.precision {
            Precision::Fp32 => (self.compiled, None),
            Precision::Int8 => {
                let mut compiled = self.compiled;
                // Quantize in place when the Arc is uniquely owned (the
                // common builder(owned) path); clone only when another
                // engine actually shares the fp32 artifact. Projections
                // are packed *before* the dequantize round-trip so the
                // packed bytes come from the pristine weights — the same
                // bytes an int8 artifact stores.
                let mut bytes = 0usize;
                let m = Arc::make_mut(&mut compiled);
                m.ensure_int8_projections();
                m.map_weights(|w| {
                    let q = QuantizedMatrix::quantize(w);
                    bytes += q.bytes();
                    *w = q.dequantize();
                });
                (compiled, Some(bytes))
            }
        };
        Engine {
            model,
            backend: self.backend,
            precision: self.precision,
            workers: self.workers,
            int8_weight_bytes,
        }
    }
}

/// A compile-once / serve-many inference engine.
///
/// The engine owns an immutable [`CompiledVit`] and runs a tape-free
/// forward: no gradient bookkeeping, fused QKV projections, and sparse
/// heads executed through the real SDDMM → sparse-softmax → SpMM
/// dataflow over their pre-compiled CSC indexes (not dense `-inf`
/// masking). [`Engine::infer_batch`] fans samples across worker
/// threads; every per-sample forward is independent, so results are
/// deterministic regardless of the worker count.
///
/// # Example
///
/// ```no_run
/// use vitcod_core::{PipelineConfig, ViTCoDPipeline};
/// use vitcod_engine::{CompileReport, Engine, Precision};
/// use vitcod_model::{SyntheticTask, SyntheticTaskConfig, ViTConfig};
///
/// let task = SyntheticTask::generate(SyntheticTaskConfig::default());
/// let cfg = PipelineConfig::paper_default(
///     ViTConfig::deit_tiny().reduced_for_training());
/// let report = ViTCoDPipeline::new(cfg).run(&task);
/// let engine = Engine::builder(report.compile())
///     .precision(Precision::Fp32)
///     .build();
/// let predictions = engine.infer_batch(&task.test);
/// assert_eq!(predictions.len(), task.test.len());
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    model: Arc<CompiledVit>,
    backend: Option<Backend>,
    precision: Precision,
    workers: usize,
    int8_weight_bytes: Option<usize>,
}

impl Engine {
    /// Starts building an engine over a frozen artifact.
    pub fn builder(compiled: CompiledVit) -> EngineBuilder {
        Self::builder_shared(Arc::new(compiled))
    }

    /// Starts building an engine over an already-shared artifact: several
    /// engines built from clones of the same `Arc` serve the same weight
    /// scalars without copying them (fp32 builds keep the `Arc` as is).
    pub fn builder_shared(compiled: Arc<CompiledVit>) -> EngineBuilder {
        EngineBuilder {
            compiled,
            backend: None,
            precision: Precision::Fp32,
            workers: 0,
        }
    }

    /// The frozen artifact this engine serves.
    pub fn compiled(&self) -> &CompiledVit {
        &self.model
    }

    /// The shared handle to the frozen artifact. Two engines with
    /// `Arc::ptr_eq` handles serve the identical weight allocation —
    /// the serving layer's no-copy tests key on this.
    pub fn compiled_arc(&self) -> Arc<CompiledVit> {
        Arc::clone(&self.model)
    }

    /// The engine's numeric precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The backend this engine's kernels run on: the pinned one when
    /// [`EngineBuilder::backend`] was called, otherwise the calling
    /// thread's current selection (the process default in practice —
    /// what an observability snapshot should label the model with).
    pub fn backend(&self) -> Backend {
        self.backend.unwrap_or_else(kernels::backend)
    }

    /// Bytes the int8 weight artifact occupies (1 per weight scalar);
    /// `None` under fp32.
    pub fn int8_weight_bytes(&self) -> Option<usize> {
        self.int8_weight_bytes
    }

    /// Resolved batch-level worker count for `batch` samples.
    fn batch_workers(&self, batch: usize) -> usize {
        let budget = if self.workers > 0 {
            self.workers
        } else {
            kernels::num_threads()
        };
        budget.min(batch).max(1)
    }

    /// Runs `f` with the engine's pinned backend installed as a
    /// thread-local override (panic-safe, and racing nothing: other
    /// engines and threads keep their own selection); a no-op when no
    /// backend was pinned.
    fn with_backend<T>(&self, f: impl FnOnce() -> T) -> T {
        match self.backend {
            Some(b) => kernels::with_backend_override(b, f),
            None => f(),
        }
    }

    /// Classifies a batch of samples, fanning them across worker
    /// threads. Results are returned in input order.
    ///
    /// This is a hand-rolled fan-out rather than
    /// [`kernels::par_map_collect`] because it must honour the explicit
    /// `workers(..)` override and give each worker a reduced kernel
    /// thread budget — otherwise the per-sample kernels would multiply
    /// the batch fan-out into `threads²` oversubscription.
    pub fn infer_batch(&self, samples: &[Sample]) -> Vec<Prediction> {
        self.with_backend(|| {
            let workers = self.batch_workers(samples.len());
            if workers <= 1 {
                return samples.iter().map(|s| self.predict(&s.tokens)).collect();
            }
            let inner_budget = (kernels::num_threads() / workers).max(1);
            let per = samples.len().div_ceil(workers);
            // Each worker re-installs the engine's thread-local backend
            // override (thread-locals do not cross spawns) and a reduced
            // kernel budget.
            std::thread::scope(|scope| {
                let handles: Vec<_> = samples
                    .chunks(per)
                    .map(|chunk| {
                        scope.spawn(move || {
                            self.with_backend(|| {
                                kernels::with_thread_budget(inner_budget, || {
                                    chunk
                                        .iter()
                                        .map(|s| self.predict(&s.tokens))
                                        .collect::<Vec<_>>()
                                })
                            })
                        })
                    })
                    .collect();
                let mut out = Vec::with_capacity(samples.len());
                for h in handles {
                    match h.join() {
                        Ok(chunk) => out.extend(chunk),
                        // Re-raise the worker's panic payload on the
                        // caller thread instead of a fresh panic here.
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
                out
            })
        })
    }

    /// Classifies one raw token matrix (`tokens × in_dim`, row 0 the
    /// class-token slot).
    ///
    /// # Panics
    ///
    /// Panics if the token shape does not match the compiled model.
    pub fn infer_one(&self, tokens: &Matrix) -> Prediction {
        self.with_backend(|| self.predict(tokens))
    }

    /// Classifies a batch **sequentially**, timing every named compute
    /// op of every layer on a monotonic clock (see
    /// [`crate::profile::OP_NAMES`]). This is the sampled-trace slow
    /// path: no batch fan-out (worker interleaving would corrupt
    /// wall-clock attribution), and dense fp32 attention takes the
    /// separable scores → softmax → `S·V` kernel sequence instead of
    /// the fused multi-head kernel, so logits can differ from
    /// [`Engine::infer_batch`] by float-rounding noise (identical
    /// classes in practice, asserted within epsilon by this crate's
    /// tests).
    pub fn infer_batch_profiled(&self, samples: &[Sample]) -> Vec<(Prediction, OpProfile)> {
        self.with_backend(|| {
            samples
                .iter()
                .map(|s| self.predict_profiled(&s.tokens))
                .collect()
        })
    }

    /// [`Engine::infer_batch_profiled`] for one raw token matrix.
    ///
    /// # Panics
    ///
    /// Panics if the token shape does not match the compiled model.
    pub fn infer_one_profiled(&self, tokens: &Matrix) -> (Prediction, OpProfile) {
        self.with_backend(|| self.predict_profiled(tokens))
    }

    /// Approximate arithmetic ops one forward pass performs (1 MAC = 2
    /// ops, softmax = 1 op per kept attention entry), with the
    /// quadratic `Q·Kᵀ`/`S·V` core and softmax discounted by the
    /// compiled sparsity plan. Feeds the achieved-Gop/s gauge:
    /// `ops_per_sample × requests / compute_seconds / 1e9`.
    pub fn approx_ops_per_sample(&self) -> f64 {
        let cfg = self.model.config();
        let f = cfg.flops();
        let total_heads = self
            .model
            .layers()
            .iter()
            .map(|l| l.heads.len())
            .sum::<usize>();
        let kept = if total_heads == 0 {
            1.0
        } else {
            let sparse_frac = self.model.num_sparse_heads() as f64 / total_heads as f64;
            1.0 - sparse_frac * self.model.mean_attention_sparsity()
        };
        let dense_macs = (f.total() - f.attention_core() - f.softmax_ops) as f64;
        let core_macs = f.attention_core() as f64 * kept;
        2.0 * (dense_macs + core_macs) + f.softmax_ops as f64 * kept
    }

    fn predict(&self, tokens: &Matrix) -> Prediction {
        let logits = self.forward(tokens);
        let class = argmax(&logits).unwrap_or(0);
        Prediction { class, logits }
    }

    fn predict_profiled(&self, tokens: &Matrix) -> (Prediction, OpProfile) {
        let start = Instant::now();
        let (logits, mut profile) = self.forward_profiled(tokens);
        profile.total_s = start.elapsed().as_secs_f64();
        let class = argmax(&logits).unwrap_or(0);
        (Prediction { class, logits }, profile)
    }

    /// The tape-free forward: dispatches to the fp32 path (bit-identical
    /// to the training tape on dense models) or the int8 serving path
    /// (packed projection GEMMs over per-layer-cached quantized
    /// activations).
    fn forward(&self, tokens: &Matrix) -> Vec<f32> {
        let cfg = self.model.config();
        assert_eq!(
            tokens.shape(),
            (cfg.tokens, self.model.in_dim()),
            "input token shape mismatch"
        );
        match (self.precision, self.model.int8_projections()) {
            (Precision::Int8, Some(packed)) => self.forward_int8(tokens, packed),
            _ => self.forward_fp32(tokens),
        }
    }

    /// The profiled forward: same dispatch as [`Engine::forward`], with
    /// per-op timing.
    fn forward_profiled(&self, tokens: &Matrix) -> (Vec<f32>, OpProfile) {
        let cfg = self.model.config();
        assert_eq!(
            tokens.shape(),
            (cfg.tokens, self.model.in_dim()),
            "input token shape mismatch"
        );
        match (self.precision, self.model.int8_projections()) {
            (Precision::Int8, Some(packed)) => self.forward_int8_profiled(tokens, packed),
            _ => self.forward_fp32_profiled(tokens),
        }
    }

    /// [`Engine::forward_fp32`] with per-op timing. LayerNorms,
    /// residual adds, the stem and the classifier stay unattributed, so
    /// a layer's op seconds sum to strictly less than the forward
    /// total. Dense attention runs the separable per-head kernels (the
    /// fused multi-head kernel cannot split scores/softmax/`S·V`), so
    /// logits carry float-rounding differences vs the fused path.
    fn forward_fp32_profiled(&self, tokens: &Matrix) -> (Vec<f32>, OpProfile) {
        let cfg = self.model.config();
        let n = cfg.tokens;
        let dim = cfg.dim;
        let dk = cfg.head_dim();
        let scale = 1.0 / (dk as f32).sqrt();
        let mut profile = OpProfile::default();

        let embedded = kernels::matmul(tokens, self.model.patch_w());
        let mut x = &kernels::add_bias(&embedded, self.model.patch_b()) + self.model.pos_embed();

        for layer in self.model.layers() {
            let mut ops = LayerOps::default();
            let normed = kernels::layernorm_rows(&x, &layer.ln1_gamma, &layer.ln1_beta, LN_EPS);
            // The AE round trip feeds directly into attention from the
            // fused projection, so it is charged to `qkv`.
            let (q, k, v) = timed(&mut ops.seconds[OP_QKV], || {
                let qkv = kernels::add_bias(&kernels::matmul(&normed, &layer.w_qkv), &layer.b_qkv);
                let mut q = qkv.submatrix(0, n, 0, dim);
                let mut k = qkv.submatrix(0, n, dim, 2 * dim);
                let v = qkv.submatrix(0, n, 2 * dim, 3 * dim);
                if let Some(ae) = &layer.ae {
                    q = kernels::head_mix(&kernels::head_mix(&q, &ae.enc_q, dk), &ae.dec_q, dk);
                    k = kernels::head_mix(&kernels::head_mix(&k, &ae.enc_k, dk), &ae.dec_k, dk);
                }
                (q, k, v)
            });

            let attn = self.attention_profiled(layer, &q, &k, &v, dk, scale, &mut ops);
            let projected = timed(&mut ops.seconds[OP_OUT_PROJ], || {
                kernels::add_bias(&kernels::matmul(&attn, &layer.w_out), &layer.b_out)
            });
            x = &x + &projected;

            let normed2 = kernels::layernorm_rows(&x, &layer.ln2_gamma, &layer.ln2_beta, LN_EPS);
            let act = timed(&mut ops.seconds[OP_FC1], || {
                let h1 = kernels::add_bias(&kernels::matmul(&normed2, &layer.w_fc1), &layer.b_fc1);
                kernels::map(&h1, gelu)
            });
            let h2 = timed(&mut ops.seconds[OP_FC2], || {
                kernels::add_bias(&kernels::matmul(&act, &layer.w_fc2), &layer.b_fc2)
            });
            x = &x + &h2;
            profile.layers.push(ops);
        }

        let cls = x.submatrix(0, 1, 0, dim);
        let (final_gamma, final_beta) = self.model.final_ln();
        let normed = kernels::layernorm_rows(&cls, final_gamma, final_beta, LN_EPS);
        let logits = kernels::add_bias(
            &kernels::matmul(&normed, self.model.head_w()),
            self.model.head_b(),
        );
        (logits.row(0).to_vec(), profile)
    }

    /// [`Engine::forward_int8`] with per-op timing. Activation
    /// quantization is charged to the op that consumes it (the layer
    /// quantize before the fused QKV GEMM to `qkv`, the Q/K quantize to
    /// `scores`, and so on), mirroring how the fast path amortizes it.
    fn forward_int8_profiled(
        &self,
        tokens: &Matrix,
        packed: &[Int8Projections],
    ) -> (Vec<f32>, OpProfile) {
        let cfg = self.model.config();
        let n = cfg.tokens;
        let dim = cfg.dim;
        let dk = cfg.head_dim();
        let scale = 1.0 / (dk as f32).sqrt();
        let mut profile = OpProfile::default();

        let embedded = kernels::matmul(tokens, self.model.patch_w());
        let mut x = &kernels::add_bias(&embedded, self.model.patch_b()) + self.model.pos_embed();

        for (layer, proj) in self.model.layers().iter().zip(packed) {
            let mut ops = LayerOps::default();
            let normed = kernels::layernorm_rows(&x, &layer.ln1_gamma, &layer.ln1_beta, LN_EPS);
            let (q, k, v) = timed(&mut ops.seconds[OP_QKV], || {
                let normed8 = QuantizedRows::quantize(&normed);
                let qkv = int8_gemm(&normed8, &proj.w_qkv, &layer.b_qkv);
                let mut q = qkv.submatrix(0, n, 0, dim);
                let mut k = qkv.submatrix(0, n, dim, 2 * dim);
                let v = qkv.submatrix(0, n, 2 * dim, 3 * dim);
                if let Some(ae) = &layer.ae {
                    q = kernels::head_mix(&kernels::head_mix(&q, &ae.enc_q, dk), &ae.dec_q, dk);
                    k = kernels::head_mix(&kernels::head_mix(&k, &ae.enc_k, dk), &ae.dec_k, dk);
                }
                (q, k, v)
            });

            let (q8, k8) = timed(&mut ops.seconds[OP_SCORES], || {
                (QuantizedRows::quantize(&q), QuantizedRows::quantize(&k))
            });
            let attn = self.attention_int8_profiled(layer, &q8, &k8, &v, dk, scale, &mut ops);
            let projected = timed(&mut ops.seconds[OP_OUT_PROJ], || {
                let attn8 = QuantizedRows::quantize(&attn);
                int8_gemm(&attn8, &proj.w_out, &layer.b_out)
            });
            x = &x + &projected;

            let normed2 = kernels::layernorm_rows(&x, &layer.ln2_gamma, &layer.ln2_beta, LN_EPS);
            let act = timed(&mut ops.seconds[OP_FC1], || {
                let normed2_8 = QuantizedRows::quantize(&normed2);
                let h1 = int8_gemm(&normed2_8, &proj.w_fc1, &layer.b_fc1);
                kernels::map(&h1, gelu)
            });
            let h2 = timed(&mut ops.seconds[OP_FC2], || {
                let act8 = QuantizedRows::quantize(&act);
                int8_gemm(&act8, &proj.w_fc2, &layer.b_fc2)
            });
            x = &x + &h2;
            profile.layers.push(ops);
        }

        let cls = x.submatrix(0, 1, 0, dim);
        let (final_gamma, final_beta) = self.model.final_ln();
        let normed = kernels::layernorm_rows(&cls, final_gamma, final_beta, LN_EPS);
        let logits = kernels::add_bias(
            &kernels::matmul(&normed, self.model.head_w()),
            self.model.head_b(),
        );
        (logits.row(0).to_vec(), profile)
    }

    /// [`Engine::attention`] with per-op timing: heads run sequentially
    /// through the separable scores → softmax → `S·V` sequence (dense
    /// heads too — the fused kernel cannot attribute its phases), each
    /// phase's seconds accumulating across heads into `ops`.
    #[allow(clippy::too_many_arguments)]
    fn attention_profiled(
        &self,
        layer: &CompiledLayer,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
        dk: usize,
        scale: f32,
        ops: &mut LayerOps,
    ) -> Matrix {
        let n = q.rows();
        let mut per_head = Vec::with_capacity(layer.heads.len());
        for (h, plan) in layer.heads.iter().enumerate() {
            let c0 = h * dk;
            let qh = q.submatrix(0, n, c0, c0 + dk);
            let kh = k.submatrix(0, n, c0, c0 + dk);
            let vh = v.submatrix(0, n, c0, c0 + dk);
            match plan {
                HeadPlan::Dense => {
                    let scores = timed(&mut ops.seconds[OP_SCORES], || {
                        let raw = kernels::matmul_nt(&qh, &kh);
                        kernels::map(&raw, |s| s * scale)
                    });
                    let probs = timed(&mut ops.seconds[OP_SOFTMAX], || {
                        kernels::softmax_rows(&scores)
                    });
                    per_head.push(timed(&mut ops.seconds[OP_SPMM], || {
                        kernels::matmul(&probs, &vh)
                    }));
                }
                HeadPlan::Sparse(csc) => {
                    let scores = timed(&mut ops.seconds[OP_SCORES], || {
                        sparse::sddmm_k_stationary(&qh, &kh, csc, scale)
                    });
                    let probs = timed(&mut ops.seconds[OP_SOFTMAX], || scores.softmax_rows());
                    per_head.push(timed(&mut ops.seconds[OP_SPMM], || {
                        sparse::spmm_output_stationary(&probs, &vh)
                    }));
                }
            }
        }
        Matrix::hcat(&per_head.iter().collect::<Vec<_>>())
    }

    /// [`Engine::attention_int8`] with per-op timing; heads run
    /// sequentially, phases accumulate into `ops` like
    /// [`Engine::attention_profiled`].
    #[allow(clippy::too_many_arguments)]
    fn attention_int8_profiled(
        &self,
        layer: &CompiledLayer,
        q8: &QuantizedRows,
        k8: &QuantizedRows,
        v: &Matrix,
        dk: usize,
        scale: f32,
        ops: &mut LayerOps,
    ) -> Matrix {
        let n = v.rows();
        let mut per_head = Vec::with_capacity(layer.heads.len());
        for (h, plan) in layer.heads.iter().enumerate() {
            let c0 = h * dk;
            let vh = v.submatrix(0, n, c0, c0 + dk);
            match plan {
                HeadPlan::Dense => {
                    let scores = timed(&mut ops.seconds[OP_SCORES], || {
                        q8.scores_nt(k8, c0..c0 + dk, scale)
                    });
                    let probs = timed(&mut ops.seconds[OP_SOFTMAX], || {
                        kernels::softmax_rows(&scores)
                    });
                    per_head.push(timed(&mut ops.seconds[OP_SPMM], || {
                        kernels::matmul(&probs, &vh)
                    }));
                }
                HeadPlan::Sparse(csc) => {
                    let scores = timed(&mut ops.seconds[OP_SCORES], || {
                        sparse::sddmm_k_stationary_int8_rows(q8, k8, c0..c0 + dk, csc, scale)
                    });
                    let probs = timed(&mut ops.seconds[OP_SOFTMAX], || scores.softmax_rows());
                    per_head.push(timed(&mut ops.seconds[OP_SPMM], || {
                        sparse::spmm_output_stationary(&probs, &vh)
                    }));
                }
            }
        }
        Matrix::hcat(&per_head.iter().collect::<Vec<_>>())
    }

    /// Fp32 forward: mirrors the training tape's kernel sequence exactly
    /// (same GEMM, bias, LayerNorm, GELU and fused attention kernels in
    /// the same order) so the dense path is bit-identical to the tape's
    /// logits, while sparse heads take the CSC dataflow instead of dense
    /// `-inf` masks.
    fn forward_fp32(&self, tokens: &Matrix) -> Vec<f32> {
        let cfg = self.model.config();
        let n = cfg.tokens;
        let dim = cfg.dim;
        let dk = cfg.head_dim();
        let scale = 1.0 / (dk as f32).sqrt();

        let embedded = kernels::matmul(tokens, self.model.patch_w());
        let mut x = &kernels::add_bias(&embedded, self.model.patch_b()) + self.model.pos_embed();

        for layer in self.model.layers() {
            let normed = kernels::layernorm_rows(&x, &layer.ln1_gamma, &layer.ln1_beta, LN_EPS);
            // Fused QKV: one dim × 3·dim GEMM; each column accumulates in
            // the same order as the three separate projections, so the
            // fusion changes layout, not numerics.
            let qkv = kernels::add_bias(&kernels::matmul(&normed, &layer.w_qkv), &layer.b_qkv);
            let mut q = qkv.submatrix(0, n, 0, dim);
            let mut k = qkv.submatrix(0, n, dim, 2 * dim);
            let v = qkv.submatrix(0, n, 2 * dim, 3 * dim);

            if let Some(ae) = &layer.ae {
                q = kernels::head_mix(&kernels::head_mix(&q, &ae.enc_q, dk), &ae.dec_q, dk);
                k = kernels::head_mix(&kernels::head_mix(&k, &ae.enc_k, dk), &ae.dec_k, dk);
            }

            let attn = self.attention(layer, &q, &k, &v, dk, scale);
            let projected = kernels::add_bias(&kernels::matmul(&attn, &layer.w_out), &layer.b_out);
            x = &x + &projected;

            let normed2 = kernels::layernorm_rows(&x, &layer.ln2_gamma, &layer.ln2_beta, LN_EPS);
            let h1 = kernels::add_bias(&kernels::matmul(&normed2, &layer.w_fc1), &layer.b_fc1);
            let act = kernels::map(&h1, gelu);
            let h2 = kernels::add_bias(&kernels::matmul(&act, &layer.w_fc2), &layer.b_fc2);
            x = &x + &h2;
        }

        let cls = x.submatrix(0, 1, 0, dim);
        let (final_gamma, final_beta) = self.model.final_ln();
        let normed = kernels::layernorm_rows(&cls, final_gamma, final_beta, LN_EPS);
        let logits = kernels::add_bias(
            &kernels::matmul(&normed, self.model.head_w()),
            self.model.head_b(),
        );
        logits.row(0).to_vec()
    }

    /// Int8 forward: the projections (fused QKV, attention output, both
    /// MLP legs) run the packed i8×i8→i32 GEMM with its fused
    /// dequantize-and-bias epilogue. Each activation tensor is
    /// per-row-quantized **once** and reused by every consumer in the
    /// layer — in particular the fused Q and K are quantized once for
    /// *all* attention heads, whose per-head views are just column
    /// windows over the shared quantization. Softmax, GELU, residuals,
    /// LayerNorm and the 1-row classifier stay fp32.
    fn forward_int8(&self, tokens: &Matrix, packed: &[Int8Projections]) -> Vec<f32> {
        let cfg = self.model.config();
        let n = cfg.tokens;
        let dim = cfg.dim;
        let dk = cfg.head_dim();
        let scale = 1.0 / (dk as f32).sqrt();

        let embedded = kernels::matmul(tokens, self.model.patch_w());
        let mut x = &kernels::add_bias(&embedded, self.model.patch_b()) + self.model.pos_embed();

        for (layer, proj) in self.model.layers().iter().zip(packed) {
            let normed = kernels::layernorm_rows(&x, &layer.ln1_gamma, &layer.ln1_beta, LN_EPS);
            let normed8 = QuantizedRows::quantize(&normed);
            // The epilogue adds b_qkv — no separate bias pass.
            let qkv = int8_gemm(&normed8, &proj.w_qkv, &layer.b_qkv);
            let mut q = qkv.submatrix(0, n, 0, dim);
            let mut k = qkv.submatrix(0, n, dim, 2 * dim);
            let v = qkv.submatrix(0, n, 2 * dim, 3 * dim);

            if let Some(ae) = &layer.ae {
                // The head-mix round trips are tiny (heads × heads
                // mixers) and stay fp32, like the paper's AE decoder.
                q = kernels::head_mix(&kernels::head_mix(&q, &ae.enc_q, dk), &ae.dec_q, dk);
                k = kernels::head_mix(&kernels::head_mix(&k, &ae.enc_k, dk), &ae.dec_k, dk);
            }

            let q8 = QuantizedRows::quantize(&q);
            let k8 = QuantizedRows::quantize(&k);
            let attn = self.attention_int8(layer, &q8, &k8, &v, dk, scale);
            let attn8 = QuantizedRows::quantize(&attn);
            let projected = int8_gemm(&attn8, &proj.w_out, &layer.b_out);
            x = &x + &projected;

            let normed2 = kernels::layernorm_rows(&x, &layer.ln2_gamma, &layer.ln2_beta, LN_EPS);
            let normed2_8 = QuantizedRows::quantize(&normed2);
            let h1 = int8_gemm(&normed2_8, &proj.w_fc1, &layer.b_fc1);
            let act = kernels::map(&h1, gelu);
            let act8 = QuantizedRows::quantize(&act);
            let h2 = int8_gemm(&act8, &proj.w_fc2, &layer.b_fc2);
            x = &x + &h2;
        }

        let cls = x.submatrix(0, 1, 0, dim);
        let (final_gamma, final_beta) = self.model.final_ln();
        let normed = kernels::layernorm_rows(&cls, final_gamma, final_beta, LN_EPS);
        let logits = kernels::add_bias(
            &kernels::matmul(&normed, self.model.head_w()),
            self.model.head_b(),
        );
        logits.row(0).to_vec()
    }

    /// One layer's multi-head attention on the fp32 path, routing each
    /// head through its compiled plan.
    fn attention(
        &self,
        layer: &CompiledLayer,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
        dk: usize,
        scale: f32,
    ) -> Matrix {
        let all_dense = layer.heads.iter().all(|h| !h.is_sparse());
        if all_dense {
            // Same fused kernel the tape records — bit-identical logits.
            return kernels::multi_head_attention(q, k, v, dk, scale, &[]).out;
        }
        let n = q.rows();
        let heads = layer.heads.len();
        // Per-head cost upper bound: the dense path's two n×n×dk GEMMs.
        let per_head = kernels::par_map_collect(heads, 2 * n * n * dk, |h| {
            let c0 = h * dk;
            let qh = q.submatrix(0, n, c0, c0 + dk);
            let kh = k.submatrix(0, n, c0, c0 + dk);
            let vh = v.submatrix(0, n, c0, c0 + dk);
            match &layer.heads[h] {
                HeadPlan::Dense => kernels::attention_head(&qh, &kh, &vh, scale, None).0,
                HeadPlan::Sparse(csc) => sparse::attention_head(&qh, &kh, &vh, csc, scale),
            }
        });
        Matrix::hcat(&per_head.iter().collect::<Vec<_>>())
    }

    /// One layer's multi-head attention on the int8 path, over the
    /// layer's shared per-row-quantized Q/K: dense heads compute
    /// i8·i8→i32 scores through [`QuantizedRows::scores_nt`], sparse
    /// heads run the int8 SDDMM → sparse-softmax → SpMM dataflow. Each
    /// head reads its column window of the shared quantization — no
    /// per-head requantization.
    fn attention_int8(
        &self,
        layer: &CompiledLayer,
        q8: &QuantizedRows,
        k8: &QuantizedRows,
        v: &Matrix,
        dk: usize,
        scale: f32,
    ) -> Matrix {
        let n = v.rows();
        let heads = layer.heads.len();
        let per_head = kernels::par_map_collect(heads, 2 * n * n * dk, |h| {
            let c0 = h * dk;
            let vh = v.submatrix(0, n, c0, c0 + dk);
            match &layer.heads[h] {
                HeadPlan::Dense => {
                    let scores = q8.scores_nt(k8, c0..c0 + dk, scale);
                    let probs = kernels::softmax_rows(&scores);
                    kernels::matmul(&probs, &vh)
                }
                HeadPlan::Sparse(csc) => {
                    sparse::attention_head_int8_rows(q8, k8, c0..c0 + dk, &vh, csc, scale)
                }
            }
        });
        Matrix::hcat(&per_head.iter().collect::<Vec<_>>())
    }
}
