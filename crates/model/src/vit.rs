//! A trainable Vision Transformer with fixed sparse attention masks and
//! ViTCoD auto-encoder modules.

use std::sync::Arc;

use rand::Rng;
use vitcod_autograd::{HeadExec, LayerNorm, Linear, ParamId, ParamStore, Tape, Var};
use vitcod_tensor::sparse::CscMatrix;
use vitcod_tensor::Matrix;

use crate::config::ViTConfig;

/// Specification of the ViTCoD auto-encoder (AE) modules inserted into
/// every attention layer (paper Sec. IV-C).
///
/// The AE compresses Q and K along the *head* dimension: `heads` input
/// heads are linearly mixed down to `compressed_heads` (the paper uses a
/// 50 % ratio, e.g. 12 → 6) before being written to off-chip memory, and
/// mixed back up when reloaded. Training minimises the reconstruction
/// error jointly with the task loss (Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoEncoderSpec {
    /// Number of compressed heads (must be `>= 1` and `<= heads`).
    pub compressed_heads: usize,
}

impl AutoEncoderSpec {
    /// The paper's default 50 % compression (rounding down, minimum 1).
    pub fn half(heads: usize) -> Self {
        Self {
            compressed_heads: (heads / 2).max(1),
        }
    }

    /// Compression ratio relative to `heads`.
    pub fn ratio(&self, heads: usize) -> f64 {
        self.compressed_heads as f64 / heads as f64
    }
}

/// Fixed sparse attention masks, one per `[layer][head]`.
///
/// Each mask is an `n × n` 0/1 matrix (`1.0` = keep). `None` means the
/// head stays dense. Masks are produced by `vitcod-core`'s
/// split-and-conquer algorithm and stay fixed during finetuning and
/// inference (the paper's central premise for ViTs).
pub type SparsityPlan = Vec<Vec<Option<Matrix>>>;

/// Output of one forward pass.
///
/// For [`VisionTransformer::forward`] the logits node is
/// `1 × num_classes`; for [`VisionTransformer::forward_batch`] it holds
/// one row per sample in batch order.
#[derive(Debug)]
pub struct VitOutput {
    /// Class logits node, one row per sample.
    pub logits: Var,
    /// Summed Q/K reconstruction loss node if AE modules are active
    /// (mean over every stacked token row, so batched and per-sample
    /// passes weight it identically).
    pub recon_loss: Option<Var>,
    /// One fused multi-head attention node per layer; per-head
    /// probability maps are extracted via [`Tape::head_probs`] (single
    /// sample) or [`Tape::head_probs_dense`] (any sample).
    pub attention_nodes: Vec<Var>,
}

#[derive(Clone)]
struct AeParams {
    enc_q: ParamId,
    dec_q: ParamId,
    enc_k: ParamId,
    dec_k: ParamId,
}

/// Parameter handles of one block's auto-encoder modules (encoder and
/// decoder head-mixing matrices for Q and K).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AeParamIds {
    /// Q encoder, `heads × compressed_heads`.
    pub enc_q: ParamId,
    /// Q decoder, `compressed_heads × heads`.
    pub dec_q: ParamId,
    /// K encoder, `heads × compressed_heads`.
    pub enc_k: ParamId,
    /// K decoder, `compressed_heads × heads`.
    pub dec_k: ParamId,
}

/// Read-only views of one transformer block's modules, in forward-pass
/// order. This is the reflection surface inference compilers (the
/// `vitcod-engine` crate) use to freeze a trained model's weights out of
/// its [`vitcod_autograd::ParamStore`].
#[derive(Debug, Clone, Copy)]
pub struct BlockModules<'a> {
    /// Pre-attention LayerNorm.
    pub ln1: &'a LayerNorm,
    /// Query projection.
    pub wq: &'a Linear,
    /// Key projection.
    pub wk: &'a Linear,
    /// Value projection.
    pub wv: &'a Linear,
    /// Attention output projection.
    pub wo: &'a Linear,
    /// Pre-MLP LayerNorm.
    pub ln2: &'a LayerNorm,
    /// MLP expansion layer.
    pub fc1: &'a Linear,
    /// MLP contraction layer.
    pub fc2: &'a Linear,
    /// Auto-encoder parameter handles, if AE modules are installed.
    pub ae: Option<AeParamIds>,
}

#[derive(Clone)]
struct Block {
    ln1: LayerNorm,
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    ln2: LayerNorm,
    fc1: Linear,
    fc2: Linear,
    ae: Option<AeParams>,
}

/// A small trainable ViT (DeiT-style: pre-norm blocks, class-token
/// readout) used for the paper's algorithm-level experiments.
///
/// Token row 0 is the class-token slot; its content is learned through
/// the positional embedding. Sparse masks and AE modules can be attached
/// after construction, mirroring the paper's two-step pipeline
/// (insert AE → finetune → split-and-conquer → finetune).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use vitcod_autograd::{ParamStore, Tape};
/// use vitcod_model::{ViTConfig, VisionTransformer};
/// use vitcod_tensor::Matrix;
///
/// let cfg = ViTConfig::deit_tiny().reduced_for_training();
/// let mut store = ParamStore::new();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let vit = VisionTransformer::new(&cfg, 8, 4, &mut store, &mut rng);
/// let mut tape = Tape::new();
/// let out = vit.forward(&mut tape, &store, &Matrix::zeros(17, 8));
/// assert_eq!(tape.value(out.logits).shape(), (1, 4));
/// ```
#[derive(Clone)]
pub struct VisionTransformer {
    cfg: ViTConfig,
    in_dim: usize,
    num_classes: usize,
    patch_embed: Linear,
    pos_embed: ParamId,
    blocks: Vec<Block>,
    final_ln: LayerNorm,
    head: Linear,
    masks: Option<SparsityPlan>,
    /// Additive `-inf` biases compiled from `masks` once at install time
    /// and `Arc`-shared into every tape, `[layer][head]`.
    mask_biases: Option<Vec<Vec<Option<Arc<Matrix>>>>>,
    /// CSC indexes compiled from `masks` by
    /// [`Self::freeze_sparse_attention`], `[layer][head]`; when present,
    /// masked heads run the truly-sparse dataflow in forward passes.
    frozen: Option<Vec<Vec<Option<Arc<CscMatrix>>>>>,
    ae_spec: Option<AutoEncoderSpec>,
}

impl std::fmt::Debug for VisionTransformer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "VisionTransformer({}, {} blocks, {} heads, masks={}, ae={:?})",
            self.cfg.name,
            self.blocks.len(),
            self.cfg.heads,
            self.masks.is_some(),
            self.ae_spec
        )
    }
}

impl VisionTransformer {
    /// Builds a ViT for `cfg` that consumes `in_dim`-dimensional patch
    /// tokens and predicts `num_classes` classes, registering all
    /// parameters in `store`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.dim` is not divisible by `cfg.heads`.
    pub fn new<R: Rng>(
        cfg: &ViTConfig,
        in_dim: usize,
        num_classes: usize,
        store: &mut ParamStore,
        rng: &mut R,
    ) -> Self {
        assert_eq!(cfg.dim % cfg.heads, 0, "dim must divide into heads");
        let patch_embed = Linear::new(store, "patch_embed", in_dim, cfg.dim, rng);
        let pos_embed = store.register(
            "pos_embed",
            vitcod_tensor::Initializer::Normal { std: 0.02 }.sample_with(cfg.tokens, cfg.dim, rng),
        );
        let blocks = (0..cfg.depth)
            .map(|l| {
                let p = |s: &str| format!("block{l}.{s}");
                Block {
                    ln1: LayerNorm::new(store, &p("ln1"), cfg.dim),
                    wq: Linear::new(store, &p("wq"), cfg.dim, cfg.dim, rng),
                    wk: Linear::new(store, &p("wk"), cfg.dim, cfg.dim, rng),
                    wv: Linear::new(store, &p("wv"), cfg.dim, cfg.dim, rng),
                    wo: Linear::new(store, &p("wo"), cfg.dim, cfg.dim, rng),
                    ln2: LayerNorm::new(store, &p("ln2"), cfg.dim),
                    fc1: Linear::new(store, &p("fc1"), cfg.dim, cfg.dim * cfg.mlp_ratio, rng),
                    fc2: Linear::new(store, &p("fc2"), cfg.dim * cfg.mlp_ratio, cfg.dim, rng),
                    ae: None,
                }
            })
            .collect();
        let final_ln = LayerNorm::new(store, "final_ln", cfg.dim);
        let head = Linear::new(store, "head", cfg.dim, num_classes, rng);
        Self {
            cfg: cfg.clone(),
            in_dim,
            num_classes,
            patch_embed,
            pos_embed,
            blocks,
            final_ln,
            head,
            masks: None,
            mask_biases: None,
            frozen: None,
            ae_spec: None,
        }
    }

    /// Model configuration.
    pub fn config(&self) -> &ViTConfig {
        &self.cfg
    }

    /// Number of classes predicted.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Raw patch feature dimension consumed.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Whether AE modules are installed.
    pub fn has_auto_encoder(&self) -> bool {
        self.ae_spec.is_some()
    }

    /// Whether a sparsity plan is installed.
    pub fn has_masks(&self) -> bool {
        self.masks.is_some()
    }

    /// The installed sparsity plan, if any.
    pub fn sparsity_plan(&self) -> Option<&SparsityPlan> {
        self.masks.as_ref()
    }

    /// The installed auto-encoder spec, if any.
    pub fn ae_spec(&self) -> Option<AutoEncoderSpec> {
        self.ae_spec
    }

    /// The patch-embedding layer.
    pub fn patch_embedding(&self) -> &Linear {
        &self.patch_embed
    }

    /// Handle to the positional-embedding parameter (`tokens × dim`).
    pub fn positional_embedding(&self) -> ParamId {
        self.pos_embed
    }

    /// The final LayerNorm applied to the class token.
    pub fn final_layernorm(&self) -> &LayerNorm {
        &self.final_ln
    }

    /// The classification head.
    pub fn classifier(&self) -> &Linear {
        &self.head
    }

    /// Read-only views of block `l`'s modules.
    ///
    /// # Panics
    ///
    /// Panics if `l >= config().depth`.
    pub fn block_modules(&self, l: usize) -> BlockModules<'_> {
        let b = &self.blocks[l];
        BlockModules {
            ln1: &b.ln1,
            wq: &b.wq,
            wk: &b.wk,
            wv: &b.wv,
            wo: &b.wo,
            ln2: &b.ln2,
            fc1: &b.fc1,
            fc2: &b.fc2,
            ae: b.ae.as_ref().map(|ae| AeParamIds {
                enc_q: ae.enc_q,
                dec_q: ae.dec_q,
                enc_k: ae.enc_k,
                dec_k: ae.dec_k,
            }),
        }
    }

    /// Installs the ViTCoD auto-encoder modules (paper Fig. 10, Step 1),
    /// registering fresh encoder/decoder weights initialised close to a
    /// head-identity so finetuning starts from a near-lossless state.
    ///
    /// # Panics
    ///
    /// Panics if `spec.compressed_heads` is zero or exceeds the head
    /// count.
    pub fn insert_auto_encoder<R: Rng>(
        &mut self,
        spec: AutoEncoderSpec,
        store: &mut ParamStore,
        rng: &mut R,
    ) {
        let h = self.cfg.heads;
        assert!(
            spec.compressed_heads >= 1 && spec.compressed_heads <= h,
            "compressed heads must be in 1..=heads"
        );
        for (l, block) in self.blocks.iter_mut().enumerate() {
            let mk =
                |store: &mut ParamStore, name: String, rows: usize, cols: usize, rng: &mut R| {
                    // Partial-identity init: head j maps mostly to compressed
                    // slot j % hc, plus small noise for symmetry breaking.
                    let mut m = Matrix::zeros(rows, cols);
                    for i in 0..rows {
                        for j in 0..cols {
                            let base = if i % cols.max(1) == j || j % rows.max(1) == i {
                                0.7
                            } else {
                                0.0
                            };
                            m.set(i, j, base + rng.gen_range(-0.05..0.05));
                        }
                    }
                    store.register(name, m)
                };
            block.ae = Some(AeParams {
                enc_q: mk(
                    store,
                    format!("block{l}.ae.enc_q"),
                    h,
                    spec.compressed_heads,
                    rng,
                ),
                dec_q: mk(
                    store,
                    format!("block{l}.ae.dec_q"),
                    spec.compressed_heads,
                    h,
                    rng,
                ),
                enc_k: mk(
                    store,
                    format!("block{l}.ae.enc_k"),
                    h,
                    spec.compressed_heads,
                    rng,
                ),
                dec_k: mk(
                    store,
                    format!("block{l}.ae.dec_k"),
                    spec.compressed_heads,
                    h,
                    rng,
                ),
            });
        }
        self.ae_spec = Some(spec);
    }

    /// Installs fixed sparse attention masks (paper Fig. 10, Step 2).
    ///
    /// # Panics
    ///
    /// Panics if the plan's layer/head structure or mask shapes do not
    /// match the model.
    pub fn set_sparsity_plan(&mut self, plan: SparsityPlan) {
        assert_eq!(plan.len(), self.blocks.len(), "plan must cover all layers");
        for (l, layer) in plan.iter().enumerate() {
            assert_eq!(
                layer.len(),
                self.cfg.heads,
                "layer {l} must cover all heads"
            );
            for m in layer.iter().flatten() {
                assert_eq!(
                    m.shape(),
                    (self.cfg.tokens, self.cfg.tokens),
                    "mask must be tokens x tokens"
                );
            }
        }
        // Compile the additive biases once; tapes share them by Arc
        // instead of re-materialising an n x n bias per sample.
        self.mask_biases = Some(
            plan.iter()
                .map(|layer| {
                    layer
                        .iter()
                        .map(|m| {
                            m.as_ref().map(|mask| {
                                let mut bias = mask.clone();
                                bias.map_inplace(
                                    |kept| if kept == 0.0 { f32::NEG_INFINITY } else { 0.0 },
                                );
                                Arc::new(bias)
                            })
                        })
                        .collect()
                })
                .collect(),
        );
        self.frozen = None;
        self.masks = Some(plan);
    }

    /// Removes any installed sparsity plan (back to dense attention).
    pub fn clear_sparsity_plan(&mut self) {
        self.masks = None;
        self.mask_biases = None;
        self.frozen = None;
    }

    /// Whether the installed masks have been frozen to CSC indexes (the
    /// truly-sparse training path).
    pub fn has_frozen_sparse(&self) -> bool {
        self.frozen.is_some()
    }

    /// Compiles the installed sparsity plan into per-head CSC indexes,
    /// switching every masked head's forward *and* backward onto the
    /// accelerator's SDDMM → sparse-softmax → SpMM dataflow so a
    /// training step's attention cost scales with `nnz` instead of `n²`.
    /// This is the mask-freeze step of the sparse-finetune loop; call it
    /// after [`Self::set_sparsity_plan`] and before finetuning.
    ///
    /// Returns the number of heads that now run sparse.
    ///
    /// # Panics
    ///
    /// Panics if no sparsity plan is installed.
    pub fn freeze_sparse_attention(&mut self) -> usize {
        let masks = self
            .masks
            .as_ref()
            .expect("freeze_sparse_attention requires an installed sparsity plan");
        let mut sparse_heads = 0;
        let frozen = masks
            .iter()
            .map(|layer| {
                layer
                    .iter()
                    .map(|m| {
                        m.as_ref().map(|mask| {
                            sparse_heads += 1;
                            Arc::new(CscMatrix::from_indicator(mask.rows(), |q, k| {
                                mask.get(q, k) != 0.0
                            }))
                        })
                    })
                    .collect()
            })
            .collect();
        self.frozen = Some(frozen);
        sparse_heads
    }

    /// Runs a forward pass for a single sample of raw tokens
    /// (`tokens × in_dim`, row 0 being the class-token slot).
    ///
    /// # Panics
    ///
    /// Panics if `tokens` does not have the configured shape.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, tokens: &Matrix) -> VitOutput {
        if self.frozen.is_some() {
            // Frozen-sparse models route every pass (including
            // single-sample evaluation) through the batched op so masked
            // heads run the nnz-scaled dataflow.
            return self.forward_batch(tape, store, &[tokens]);
        }
        assert_eq!(
            tokens.shape(),
            (self.cfg.tokens, self.in_dim),
            "input token shape mismatch"
        );
        let dk = self.cfg.head_dim();
        let scale = 1.0 / (dk as f32).sqrt();

        let x0 = tape.constant(tokens.clone());
        let embedded = self.patch_embed.forward(tape, store, x0);
        let pos = tape.param(store, self.pos_embed);
        let mut x = tape.add(embedded, pos);

        let mut recon_total: Option<Var> = None;
        let mut attention_nodes = Vec::with_capacity(self.blocks.len());

        for (l, block) in self.blocks.iter().enumerate() {
            let normed = block.ln1.forward(tape, store, x);
            let mut q = block.wq.forward(tape, store, normed);
            let mut k = block.wk.forward(tape, store, normed);
            let v = block.wv.forward(tape, store, normed);

            if let Some(ae) = &block.ae {
                let (q2, rq) = apply_ae(tape, store, q, ae.enc_q, ae.dec_q, dk);
                let (k2, rk) = apply_ae(tape, store, k, ae.enc_k, ae.dec_k, dk);
                q = q2;
                k = k2;
                let layer_recon = tape.weighted_sum(rq, rk, 1.0, 1.0);
                recon_total = Some(match recon_total {
                    Some(acc) => tape.weighted_sum(acc, layer_recon, 1.0, 1.0),
                    None => layer_recon,
                });
            }

            // All heads attend in one fused op: the kernel layer fans the
            // per-head column stripes out across worker threads instead of
            // recording `heads` separate slice/attend/concat nodes.
            let masks = self.layer_mask_biases(l);
            let attn = tape.multi_head_attention(q, k, v, dk, scale, &masks);
            attention_nodes.push(attn);
            let projected = block.wo.forward(tape, store, attn);
            x = tape.add(x, projected);

            let normed2 = block.ln2.forward(tape, store, x);
            let h1 = block.fc1.forward(tape, store, normed2);
            let act = tape.gelu(h1);
            let h2 = block.fc2.forward(tape, store, act);
            x = tape.add(x, h2);
        }

        let cls = tape.row_slice(x, 0);
        let normed = self.final_ln.forward(tape, store, cls);
        let logits = self.head.forward(tape, store, normed);
        VitOutput {
            logits,
            recon_loss: recon_total,
            attention_nodes,
        }
    }

    /// Runs one forward pass over a whole minibatch on a single tape:
    /// the samples' token matrices are stacked vertically and every
    /// layer processes the stack in one set of ops, so weights are
    /// imported once per step (not once per sample) and the per-op
    /// bookkeeping amortises across the batch. Attention runs through
    /// [`Tape::batched_multi_head_attention`], with `(sample, head)`
    /// tasks fanned across worker threads; masked heads follow the
    /// model's execution plans (dense `-inf` biases, or the truly-sparse
    /// CSC dataflow after [`Self::freeze_sparse_attention`]).
    ///
    /// Returns logits with one row per sample, in batch order. Losses
    /// built on them (e.g. [`Tape::cross_entropy`] with one target per
    /// row) average over the batch, so the flushed gradients are the
    /// batch means — the same semantics as accumulating per-sample tapes
    /// and rescaling.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is empty or a sample's token matrix does not
    /// have the configured shape.
    pub fn forward_batch(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        batch: &[&Matrix],
    ) -> VitOutput {
        assert!(!batch.is_empty(), "forward_batch needs at least one sample");
        for (i, tokens) in batch.iter().enumerate() {
            assert_eq!(
                tokens.shape(),
                (self.cfg.tokens, self.in_dim),
                "sample {i} token shape mismatch"
            );
        }
        let b = batch.len();
        let n = self.cfg.tokens;
        let dk = self.cfg.head_dim();
        let scale = 1.0 / (dk as f32).sqrt();

        let stacked = Matrix::vcat(batch);
        let x0 = tape.constant(stacked);
        let embedded = self.patch_embed.forward(tape, store, x0);
        let pos = tape.param(store, self.pos_embed);
        let pos_tiled = tape.tile_rows(pos, b);
        let mut x = tape.add(embedded, pos_tiled);

        let mut recon_total: Option<Var> = None;
        let mut attention_nodes = Vec::with_capacity(self.blocks.len());

        for (l, block) in self.blocks.iter().enumerate() {
            let normed = block.ln1.forward(tape, store, x);
            let mut q = block.wq.forward(tape, store, normed);
            let mut k = block.wk.forward(tape, store, normed);
            let v = block.wv.forward(tape, store, normed);

            if let Some(ae) = &block.ae {
                let (q2, rq) = apply_ae(tape, store, q, ae.enc_q, ae.dec_q, dk);
                let (k2, rk) = apply_ae(tape, store, k, ae.enc_k, ae.dec_k, dk);
                q = q2;
                k = k2;
                let layer_recon = tape.weighted_sum(rq, rk, 1.0, 1.0);
                recon_total = Some(match recon_total {
                    Some(acc) => tape.weighted_sum(acc, layer_recon, 1.0, 1.0),
                    None => layer_recon,
                });
            }

            let plans = self.layer_head_plans(l);
            let attn = tape.batched_multi_head_attention(q, k, v, dk, scale, b, &plans);
            attention_nodes.push(attn);
            let projected = block.wo.forward(tape, store, attn);
            x = tape.add(x, projected);

            let normed2 = block.ln2.forward(tape, store, x);
            let h1 = block.fc1.forward(tape, store, normed2);
            let act = tape.gelu(h1);
            let h2 = block.fc2.forward(tape, store, act);
            x = tape.add(x, h2);
        }

        // One class-token row per sample: rows 0, n, 2n, ...
        let cls_rows: Vec<usize> = (0..b).map(|s| s * n).collect();
        let cls = tape.gather_rows(x, &cls_rows);
        let normed = self.final_ln.forward(tape, store, cls);
        let logits = self.head.forward(tape, store, normed);
        VitOutput {
            logits,
            recon_loss: recon_total,
            attention_nodes,
        }
    }

    /// Per-head execution plans for `layer`: frozen CSC indexes when the
    /// masks are frozen, cached `-inf` biases when only installed, empty
    /// (all dense) otherwise.
    fn layer_head_plans(&self, layer: usize) -> Vec<HeadExec> {
        if let Some(frozen) = &self.frozen {
            return frozen[layer]
                .iter()
                .map(|csc| match csc {
                    Some(csc) => HeadExec::Sparse(csc.clone()),
                    None => HeadExec::Dense,
                })
                .collect();
        }
        if let Some(biases) = &self.mask_biases {
            return biases[layer]
                .iter()
                .map(|bias| match bias {
                    Some(bias) => HeadExec::Masked(bias.clone()),
                    None => HeadExec::Dense,
                })
                .collect();
        }
        Vec::new()
    }

    /// Additive mask biases for every head of `layer`, copied out of the
    /// cache compiled at [`Self::set_sparsity_plan`]; empty when the
    /// model is fully dense (the fused attention op treats an empty slice
    /// as "no masks").
    fn layer_mask_biases(&self, layer: usize) -> Vec<Option<Matrix>> {
        match &self.mask_biases {
            None => Vec::new(),
            Some(biases) => biases[layer]
                .iter()
                .map(|b| b.as_ref().map(|bias| (**bias).clone()))
                .collect(),
        }
    }

    /// Averaged per-head attention maps over `samples`, the statistic the
    /// split-and-conquer algorithm consumes ("extract averaged attention
    /// maps by forwarding the pretrained models on all training samples").
    ///
    /// Returns `[layer][head]` matrices of shape `tokens × tokens`.
    pub fn averaged_attention_maps(
        &self,
        store: &ParamStore,
        samples: &[crate::Sample],
    ) -> Vec<Vec<Matrix>> {
        let n = self.cfg.tokens;
        let mut acc: Vec<Vec<Matrix>> = (0..self.blocks.len())
            .map(|_| (0..self.cfg.heads).map(|_| Matrix::zeros(n, n)).collect())
            .collect();
        for s in samples {
            let mut tape = Tape::new();
            let out = self.forward(&mut tape, store, &s.tokens);
            for (l, &node) in out.attention_nodes.iter().enumerate() {
                for (h, m) in acc[l].iter_mut().enumerate() {
                    // Dense heads accumulate by reference; only sparse
                    // heads pay a densification copy.
                    match tape.try_head_probs(node, 0, h) {
                        Some(p) => m.add_assign(p),
                        None => m.add_assign(&tape.head_probs_dense(node, 0, h)),
                    }
                }
            }
        }
        let inv = 1.0 / samples.len().max(1) as f32;
        for layer in &mut acc {
            for m in layer {
                m.map_inplace(|v| v * inv);
            }
        }
        acc
    }
}

/// Applies one AE (encode → decode) to a fused `n × (h·dk)` Q or K
/// matrix; returns the reconstruction and its MSE against the input.
fn apply_ae(
    tape: &mut Tape,
    store: &ParamStore,
    x: Var,
    enc: ParamId,
    dec: ParamId,
    dk: usize,
) -> (Var, Var) {
    let enc_w = tape.param(store, enc);
    let dec_w = tape.param(store, dec);
    let compressed = tape.head_mix(x, enc_w, dk);
    let recovered = tape.head_mix(compressed, dec_w, dk);
    let recon = tape.mse_between(recovered, x);
    (recovered, recon)
}

#[cfg(test)]
// Exact float equality below asserts deterministic replay of seeded runs.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_model() -> (VisionTransformer, ParamStore) {
        let cfg = ViTConfig::deit_tiny().reduced_for_training();
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let vit = VisionTransformer::new(&cfg, 8, 4, &mut store, &mut rng);
        (vit, store)
    }

    #[test]
    fn forward_produces_logits() {
        let (vit, store) = tiny_model();
        let mut tape = Tape::new();
        let tokens = Matrix::zeros(vit.config().tokens, 8);
        let out = vit.forward(&mut tape, &store, &tokens);
        assert_eq!(tape.value(out.logits).shape(), (1, 4));
        assert!(out.recon_loss.is_none());
        assert_eq!(out.attention_nodes.len(), vit.config().depth);
        assert_eq!(tape.num_heads(out.attention_nodes[0]), vit.config().heads);
    }

    #[test]
    fn attention_probs_rows_sum_to_one() {
        let (vit, store) = tiny_model();
        let mut tape = Tape::new();
        let tokens =
            vitcod_tensor::Initializer::Normal { std: 1.0 }.sample(vit.config().tokens, 8, 7);
        let out = vit.forward(&mut tape, &store, &tokens);
        let p = tape.head_probs(out.attention_nodes[0], 0);
        for r in 0..p.rows() {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "row {r} sums to {s}");
        }
    }

    #[test]
    fn ae_insertion_adds_recon_loss_and_keeps_logits_shape() {
        let (mut vit, mut store) = tiny_model();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        vit.insert_auto_encoder(
            AutoEncoderSpec::half(vit.config().heads),
            &mut store,
            &mut rng,
        );
        assert!(vit.has_auto_encoder());
        let mut tape = Tape::new();
        let tokens = Matrix::zeros(vit.config().tokens, 8);
        let out = vit.forward(&mut tape, &store, &tokens);
        assert!(out.recon_loss.is_some());
        assert!(tape.scalar(out.recon_loss.unwrap()) >= 0.0);
        assert_eq!(tape.value(out.logits).shape(), (1, 4));
    }

    #[test]
    fn sparsity_plan_zeroes_pruned_probabilities() {
        let (mut vit, store) = tiny_model();
        let n = vit.config().tokens;
        // Keep only the diagonal plus the class-token column.
        let mut mask = Matrix::zeros(n, n);
        for i in 0..n {
            mask.set(i, i, 1.0);
            mask.set(i, 0, 1.0);
        }
        let plan: SparsityPlan = (0..vit.config().depth)
            .map(|_| {
                (0..vit.config().heads)
                    .map(|_| Some(mask.clone()))
                    .collect()
            })
            .collect();
        vit.set_sparsity_plan(plan);
        let mut tape = Tape::new();
        let tokens = vitcod_tensor::Initializer::Normal { std: 1.0 }.sample(n, 8, 11);
        let out = vit.forward(&mut tape, &store, &tokens);
        let p = tape.head_probs(out.attention_nodes[1], 0);
        for r in 0..n {
            for c in 0..n {
                if r != c && c != 0 {
                    assert_eq!(p.get(r, c), 0.0, "pruned ({r},{c}) must be zero");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "plan must cover all layers")]
    fn bad_plan_rejected() {
        let (mut vit, _) = tiny_model();
        vit.set_sparsity_plan(vec![]);
    }

    #[test]
    fn averaged_attention_maps_have_correct_shape_and_normalisation() {
        let (vit, store) = tiny_model();
        let task = crate::SyntheticTask::generate(crate::SyntheticTaskConfig {
            train_samples: 4,
            test_samples: 1,
            ..Default::default()
        });
        let maps = vit.averaged_attention_maps(&store, &task.train);
        assert_eq!(maps.len(), vit.config().depth);
        assert_eq!(maps[0].len(), vit.config().heads);
        let m = &maps[0][0];
        assert_eq!(m.shape(), (vit.config().tokens, vit.config().tokens));
        for r in 0..m.rows() {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-3, "averaged row {r} sums to {s}");
        }
    }

    #[test]
    fn forward_batch_matches_per_sample_forwards() {
        let (vit, store) = tiny_model();
        let n = vit.config().tokens;
        let samples: Vec<Matrix> = (0..3)
            .map(|i| vitcod_tensor::Initializer::Normal { std: 1.0 }.sample(n, 8, 40 + i))
            .collect();
        let refs: Vec<&Matrix> = samples.iter().collect();
        let mut batched = Tape::new();
        let out = vit.forward_batch(&mut batched, &store, &refs);
        let logits = batched.value(out.logits).clone();
        assert_eq!(logits.shape(), (3, 4));
        for (s, tokens) in samples.iter().enumerate() {
            let mut single = Tape::new();
            let o = vit.forward(&mut single, &store, tokens);
            let want = single.value(o.logits);
            let got = logits.submatrix(s, s + 1, 0, 4);
            assert!(
                got.max_abs_diff(want) < 1e-4,
                "sample {s} logits differ by {}",
                got.max_abs_diff(want)
            );
        }
    }

    #[test]
    fn forward_batch_with_ae_reports_mean_recon() {
        let (mut vit, mut store) = tiny_model();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        vit.insert_auto_encoder(
            AutoEncoderSpec::half(vit.config().heads),
            &mut store,
            &mut rng,
        );
        let n = vit.config().tokens;
        let samples: Vec<Matrix> = (0..2)
            .map(|i| vitcod_tensor::Initializer::Normal { std: 1.0 }.sample(n, 8, 50 + i))
            .collect();
        let refs: Vec<&Matrix> = samples.iter().collect();
        let mut batched = Tape::new();
        let out = vit.forward_batch(&mut batched, &store, &refs);
        let batched_recon = batched.scalar(out.recon_loss.expect("AE installed"));
        // Mean of the per-sample recon losses (each a mean over the same
        // number of token rows).
        let mut sum = 0.0;
        for tokens in &samples {
            let mut single = Tape::new();
            let o = vit.forward(&mut single, &store, tokens);
            sum += single.scalar(o.recon_loss.unwrap());
        }
        assert!((batched_recon - sum / 2.0).abs() < 1e-4);
    }

    #[test]
    fn frozen_sparse_routes_masked_heads_through_csc() {
        let (mut vit, store) = tiny_model();
        let n = vit.config().tokens;
        let mut mask = Matrix::zeros(n, n);
        for i in 0..n {
            mask.set(i, i, 1.0);
            mask.set(i, 0, 1.0);
        }
        let plan: SparsityPlan = (0..vit.config().depth)
            .map(|_| {
                (0..vit.config().heads)
                    .map(|_| Some(mask.clone()))
                    .collect()
            })
            .collect();
        vit.set_sparsity_plan(plan);

        // Masked (dense -inf) pass first, then freeze and rerun sparse.
        let tokens = vitcod_tensor::Initializer::Normal { std: 1.0 }.sample(n, 8, 60);
        let mut masked_tape = Tape::new();
        let masked_out = vit.forward(&mut masked_tape, &store, &tokens);
        let masked_logits = masked_tape.value(masked_out.logits).clone();

        let sparse_heads = vit.freeze_sparse_attention();
        assert!(vit.has_frozen_sparse());
        assert_eq!(sparse_heads, vit.config().depth * vit.config().heads);
        let mut sparse_tape = Tape::new();
        let sparse_out = vit.forward(&mut sparse_tape, &store, &tokens);
        let sparse_logits = sparse_tape.value(sparse_out.logits).clone();
        assert!(
            sparse_logits.max_abs_diff(&masked_logits) < 1e-4,
            "sparse logits differ from masked by {}",
            sparse_logits.max_abs_diff(&masked_logits)
        );
        // Pruned positions stay exactly zero in the sparse probabilities.
        let p = sparse_tape.head_probs_dense(sparse_out.attention_nodes[0], 0, 0);
        for r in 1..n {
            for c in 1..n {
                if r != c {
                    assert_eq!(p.get(r, c), 0.0, "pruned ({r},{c}) must be zero");
                }
            }
        }
        // Clearing the plan restores the dense path.
        vit.clear_sparsity_plan();
        assert!(!vit.has_frozen_sparse());
    }

    #[test]
    fn clear_sparsity_plan_restores_dense() {
        let (mut vit, _) = tiny_model();
        let n = vit.config().tokens;
        let plan: SparsityPlan = (0..vit.config().depth)
            .map(|_| {
                (0..vit.config().heads)
                    .map(|_| Some(Matrix::identity(n)))
                    .collect()
            })
            .collect();
        vit.set_sparsity_plan(plan);
        assert!(vit.has_masks());
        vit.clear_sparsity_plan();
        assert!(!vit.has_masks());
    }
}
