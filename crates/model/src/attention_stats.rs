//! Statistical generator of paper-scale averaged attention maps.
//!
//! Training a 12-layer, 768-dim DeiT-Base on ImageNet is outside this
//! reproduction's scope (no dataset, no GPU); what the *hardware*
//! experiments actually consume, however, is only the ensemble of
//! averaged per-head attention maps. Those have a well-documented
//! structure (paper Figs. 2 and 8, and ref. [20]): probability mass
//! concentrated (a) on a diagonal band — adjacent patches correlate —
//! (b) on a handful of *global token* columns — class token and a few
//! semantically salient patches — and (c) a thin uniform background.
//! This module synthesises such ensembles at full scale (e.g. 197 tokens
//! × 144 heads) with per-layer/per-head diversity, so the split-and-
//! conquer algorithm and the accelerator simulators run on workloads with
//! the same statistics the paper's do.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vitcod_tensor::Matrix;

use crate::config::ViTConfig;

/// Parameters of the attention-map ensemble generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttentionStatsConfig {
    /// Tokens per map (197 for DeiT).
    pub tokens: usize,
    /// Number of layers.
    pub layers: usize,
    /// Heads per layer.
    pub heads: usize,
    /// Base width (std-dev, in tokens) of the diagonal locality band.
    pub diagonal_width: f32,
    /// Mean number of global tokens per head (class token always
    /// included).
    pub global_tokens: f32,
    /// Fraction of each row's probability mass assigned to global-token
    /// columns (before per-head jitter).
    pub global_mass: f32,
    /// Fraction of mass spread uniformly as background.
    pub background_mass: f32,
    /// Master seed.
    pub seed: u64,
}

impl AttentionStatsConfig {
    /// Defaults matching the qualitative structure of DeiT-Base's maps.
    ///
    /// For multi-stage (LeViT) models the ensemble covers the *primary*
    /// stage — the stage whose attention dominates the core workload;
    /// the simulator scales the remaining stages analytically.
    pub fn for_model(cfg: &ViTConfig, seed: u64) -> Self {
        let primary = &cfg.stages[0];
        Self {
            tokens: primary.tokens,
            layers: primary.depth,
            heads: primary.heads,
            diagonal_width: (cfg.tokens as f32 / 60.0).max(1.0),
            global_tokens: 4.0,
            global_mass: 0.35,
            background_mass: 0.05,
            seed,
        }
    }
}

/// A generated ensemble of averaged attention maps.
///
/// # Example
///
/// ```
/// use vitcod_model::{AttentionStats, AttentionStatsConfig, ViTConfig};
///
/// let cfg = AttentionStatsConfig::for_model(&ViTConfig::deit_small(), 7);
/// let stats = AttentionStats::generate(cfg);
/// assert_eq!(stats.maps.len(), 12);
/// assert_eq!(stats.maps[0].len(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct AttentionStats {
    /// Generator configuration.
    pub config: AttentionStatsConfig,
    /// Averaged attention maps per `[layer][head]`, rows normalised to 1.
    pub maps: Vec<Vec<Matrix>>,
}

impl AttentionStats {
    /// Generates the ensemble deterministically from `config`.
    pub fn generate(config: AttentionStatsConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let maps = (0..config.layers)
            .map(|layer| {
                (0..config.heads)
                    .map(|_| gen_head_map(&config, layer, &mut rng))
                    .collect()
            })
            .collect();
        Self { config, maps }
    }

    /// Convenience: ensemble sized for `model` with the generator's
    /// default structure.
    pub fn for_model(model: &ViTConfig, seed: u64) -> Self {
        Self::generate(AttentionStatsConfig::for_model(model, seed))
    }

    /// Flat iterator over `(layer, head, map)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &Matrix)> {
        self.maps
            .iter()
            .enumerate()
            .flat_map(|(l, heads)| heads.iter().enumerate().map(move |(h, m)| (l, h, m)))
    }

    /// Total number of heads across all layers.
    pub fn num_heads_total(&self) -> usize {
        self.maps.iter().map(|l| l.len()).sum()
    }
}

fn gen_head_map(cfg: &AttentionStatsConfig, layer: usize, rng: &mut ChaCha8Rng) -> Matrix {
    let n = cfg.tokens;
    // Head personality: deeper layers attend more globally (documented in
    // the ViT attention-distance literature and visible in Fig. 8).
    let depth_frac = layer as f32 / cfg.layers.max(1) as f32;
    let width = cfg.diagonal_width * rng.gen_range(0.6..1.8) * (1.0 + depth_frac);
    let global_mass =
        (cfg.global_mass * rng.gen_range(0.5..1.5) * (0.7 + 0.8 * depth_frac)).min(0.85);
    let n_globals = 1 + rng.gen_range(0.0f32..cfg.global_tokens * 2.0).round() as usize;

    // Global token positions: token 0 (class token) always; the rest
    // uniformly random patches.
    let mut globals = vec![0usize];
    while globals.len() < n_globals.min(n) {
        let g = rng.gen_range(0..n);
        if !globals.contains(&g) {
            globals.push(g);
        }
    }
    // Per-global weights.
    let gw: Vec<f32> = globals.iter().map(|_| rng.gen_range(0.5f32..1.5)).collect();
    let gw_sum: f32 = gw.iter().sum();

    let bg = cfg.background_mass;
    let diag_mass = (1.0 - global_mass - bg).max(0.05);
    let inv_2w2 = 1.0 / (2.0 * width * width);

    let mut m = Matrix::zeros(n, n);
    for r in 0..n {
        // Diagonal band (unnormalised Gaussian around c = r).
        let mut row_sum = 0.0f32;
        for c in 0..n {
            let d = r as f32 - c as f32;
            let v = (-d * d * inv_2w2).exp();
            m.set(r, c, v);
            row_sum += v;
        }
        // Normalise the band to diag_mass, add globals and background.
        let band_scale = diag_mass / row_sum.max(1e-9);
        for c in 0..n {
            let mut v = m.get(r, c) * band_scale + bg / n as f32;
            m.set(r, c, v);
            // v updated below for globals
            let _ = &mut v;
        }
        for (gi, &g) in globals.iter().enumerate() {
            m.set(r, g, m.get(r, g) + global_mass * gw[gi] / gw_sum);
        }
        // Exact row normalisation.
        let s: f32 = m.row(r).iter().sum();
        let inv = 1.0 / s;
        for c in 0..n {
            m.set(r, c, m.get(r, c) * inv);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> AttentionStatsConfig {
        AttentionStatsConfig {
            tokens: 48,
            layers: 3,
            heads: 4,
            diagonal_width: 1.5,
            global_tokens: 3.0,
            global_mass: 0.35,
            background_mass: 0.05,
            seed: 11,
        }
    }

    #[test]
    fn rows_are_normalised() {
        let stats = AttentionStats::generate(small_cfg());
        for (_, _, m) in stats.iter() {
            for r in 0..m.rows() {
                let s: f32 = m.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-4, "row {r} sums to {s}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = AttentionStats::generate(small_cfg());
        let b = AttentionStats::generate(small_cfg());
        assert_eq!(a.maps[2][3], b.maps[2][3]);
    }

    #[test]
    fn diagonal_dominates_off_band() {
        let stats = AttentionStats::generate(small_cfg());
        let m = &stats.maps[0][0];
        let n = m.rows();
        // Average diagonal entry should far exceed average entry at
        // distance n/2 (excluding global columns which can be anywhere).
        let mut diag = 0.0;
        let mut far = 0.0;
        for r in 0..n {
            diag += m.get(r, r);
            far += m.get(r, (r + n / 2) % n);
        }
        assert!(diag > 2.0 * far, "diag {diag} vs far {far}");
    }

    #[test]
    fn class_token_column_is_global() {
        let stats = AttentionStats::generate(small_cfg());
        for (_, _, m) in stats.iter() {
            let n = m.rows();
            let col0: f32 = (0..n).map(|r| m.get(r, 0)).sum::<f32>() / n as f32;
            let mid: f32 = (0..n).map(|r| m.get(r, n / 3 + 1)).sum::<f32>() / n as f32;
            // Column 0 receives global mass in every head; an arbitrary
            // column only sometimes. Compare against uniform background.
            assert!(col0 > 1.0 / n as f32, "class-token column not global");
            let _ = mid;
        }
    }

    #[test]
    fn for_model_matches_architecture() {
        let stats = AttentionStats::for_model(&ViTConfig::deit_base(), 5);
        assert_eq!(stats.maps.len(), 12);
        assert_eq!(stats.maps[0].len(), 12);
        assert_eq!(stats.maps[0][0].shape(), (197, 197));
        assert_eq!(stats.num_heads_total(), 144);
    }

    #[test]
    fn deeper_layers_are_more_global() {
        // Average off-diagonal mass should grow with depth on average.
        let cfg = AttentionStatsConfig {
            layers: 6,
            ..small_cfg()
        };
        let stats = AttentionStats::generate(cfg);
        let off_diag_mass = |m: &Matrix| {
            let n = m.rows();
            let mut s = 0.0;
            for r in 0..n {
                for c in 0..n {
                    if (r as i64 - c as i64).abs() > 4 {
                        s += m.get(r, c);
                    }
                }
            }
            s / n as f32
        };
        let first: f32 = stats.maps[0].iter().map(&off_diag_mass).sum::<f32>() / 4.0;
        let last: f32 = stats.maps[5].iter().map(off_diag_mass).sum::<f32>() / 4.0;
        assert!(
            last > first * 0.8,
            "global mass should not shrink with depth: {first} -> {last}"
        );
    }
}
