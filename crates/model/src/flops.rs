//! FLOPs accounting behind the paper's Fig. 4 breakdown.

use crate::config::ViTConfig;

/// Per-component multiply-accumulate counts for one inference pass.
///
/// The categories mirror the paper's Fig. 4: the self-attention (SA)
/// module is further split into the linear Q/K/V/output projections and
/// the quadratic `Q·Kᵀ` / `S·V` matrix multiplications, which is the part
/// ViTCoD's sparsity attacks.
///
/// # Example
///
/// ```
/// use vitcod_model::ViTConfig;
/// let f = ViTConfig::deit_small().flops();
/// assert!(f.total() > 0);
/// assert!(f.attention_fraction() > 0.0 && f.attention_fraction() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlopsBreakdown {
    /// Q/K/V generation and attention output projections (MACs).
    pub qkv_proj_macs: u64,
    /// `S = Q·Kᵀ` score computation (MACs). SDDMM under sparsity.
    pub qk_macs: u64,
    /// `V′ = S·V` aggregation (MACs). SpMM under sparsity.
    pub sv_macs: u64,
    /// Softmax work, counted as one op per attention entry.
    pub softmax_ops: u64,
    /// MLP block MACs.
    pub mlp_macs: u64,
    /// Convolutional stem (LeViT) MACs.
    pub stem_macs: u64,
}

impl FlopsBreakdown {
    /// Total MAC-equivalent operations.
    pub fn total(&self) -> u64 {
        self.qkv_proj_macs
            + self.qk_macs
            + self.sv_macs
            + self.softmax_ops
            + self.mlp_macs
            + self.stem_macs
    }

    /// Everything inside the self-attention module (projections +
    /// score/aggregation matmuls + softmax).
    pub fn self_attention(&self) -> u64 {
        self.qkv_proj_macs + self.qk_macs + self.sv_macs + self.softmax_ops
    }

    /// The quadratic core (`Q·Kᵀ` and `S·V`) ViTCoD accelerates.
    pub fn attention_core(&self) -> u64 {
        self.qk_macs + self.sv_macs
    }

    /// Self-attention share of total FLOPs (the top bars of Fig. 4).
    pub fn attention_fraction(&self) -> f64 {
        self.self_attention() as f64 / self.total() as f64
    }

    /// Core `Q·Kᵀ`/`S·V` share *within* the self-attention module (the
    /// paper reports up to 53 % of SA latency for these matmuls).
    pub fn core_fraction_of_attention(&self) -> f64 {
        self.attention_core() as f64 / self.self_attention() as f64
    }
}

impl ViTConfig {
    /// Computes the dense-inference FLOPs breakdown for this model,
    /// summing over all pyramid stages.
    pub fn flops(&self) -> FlopsBreakdown {
        let mut out = FlopsBreakdown {
            stem_macs: self.stem_macs,
            ..FlopsBreakdown::default()
        };
        for st in &self.stages {
            let n = st.tokens as u64;
            let d = st.dim as u64;
            let per_block_qkv = 4 * n * d * d; // Q, K, V and output proj
            let per_block_qk = n * n * d; // all heads together: n·n·dk·h = n·n·d
            let per_block_sv = n * n * d;
            let per_block_softmax = st.heads as u64 * n * n;
            let per_block_mlp = 2 * n * d * d * self.mlp_ratio as u64;
            let blocks = st.depth as u64;
            out.qkv_proj_macs += blocks * per_block_qkv;
            out.qk_macs += blocks * per_block_qk;
            out.sv_macs += blocks * per_block_sv;
            out.softmax_ops += blocks * per_block_softmax;
            out.mlp_macs += blocks * per_block_mlp;
        }
        out
    }

    /// FLOPs of the attention core under an attention-map sparsity ratio
    /// `sparsity` ∈ [0, 1]: only `(1 − sparsity)` of the `Q·Kᵀ` and `S·V`
    /// work remains.
    ///
    /// # Panics
    ///
    /// Panics if `sparsity` is outside `[0, 1]`.
    pub fn sparse_attention_core_macs(&self, sparsity: f64) -> u64 {
        assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
        let dense = self.flops().attention_core();
        ((dense as f64) * (1.0 - sparsity)).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deit_base_flops_close_to_published() {
        // DeiT-Base is published as ~17.6 "GFLOPs" at 224x224, where the
        // vision literature counts one MAC as one FLOP.
        let f = ViTConfig::deit_base().flops();
        let gmacs = f.total() as f64 / 1e9;
        assert!(
            (15.0..20.0).contains(&gmacs),
            "DeiT-Base total {gmacs:.2} GMACs out of expected band"
        );
    }

    #[test]
    fn mlp_dominates_flops_but_attention_is_substantial() {
        // Fig. 4 top: for DeiT, MLP FLOPs > SA FLOPs, yet SA remains a
        // substantial share. LeViT's reduced MLP ratio (2 vs 4) makes its
        // SA share even larger.
        for cfg in ViTConfig::classification_models() {
            let f = cfg.flops();
            if cfg.family == crate::ModelFamily::DeiT {
                assert!(f.mlp_macs > f.self_attention(), "{}", cfg.name);
            }
            assert!(f.attention_fraction() > 0.15, "{}", cfg.name);
        }
    }

    #[test]
    fn qk_and_sv_are_symmetric() {
        let f = ViTConfig::deit_small().flops();
        assert_eq!(f.qk_macs, f.sv_macs);
    }

    #[test]
    fn sparsity_scales_core_macs_linearly() {
        let cfg = ViTConfig::deit_tiny();
        let dense = cfg.sparse_attention_core_macs(0.0);
        let ninety = cfg.sparse_attention_core_macs(0.9);
        assert_eq!(dense, cfg.flops().attention_core());
        let ratio = ninety as f64 / dense as f64;
        assert!((ratio - 0.1).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "sparsity")]
    fn sparsity_out_of_range_panics() {
        ViTConfig::deit_tiny().sparse_attention_core_macs(1.5);
    }

    #[test]
    fn levit_stem_is_small_fraction() {
        // Paper: early convolutions account for < 7 % of FLOPs.
        for cfg in [ViTConfig::levit_128(), ViTConfig::levit_256()] {
            let f = cfg.flops();
            let frac = f.stem_macs as f64 / f.total() as f64;
            assert!(frac < 0.30, "{}: stem fraction {frac:.3}", cfg.name);
            assert!(frac > 0.0);
        }
    }

    #[test]
    fn strided_attention_heavier_than_deit_tiny() {
        // 351 tokens vs 197 tokens: quadratic term grows.
        let strided = ViTConfig::strided_transformer().flops();
        assert!(
            strided.attention_fraction()
                > ViTConfig::deit_tiny().flops().attention_fraction() * 0.8
        );
    }
}
