//! Procedurally generated vision tasks — the documented substitution for
//! ImageNet / Human3.6M.
//!
//! Each sample is a grid of patch tokens in which the class is encoded by
//! one (or a few) *anchor* tokens carrying a class-prototype direction,
//! superimposed on a spatially smooth background field. Classifying a
//! sample therefore requires attending *globally* to the anchors, while
//! the smooth background induces strong *local* (neighbouring-token)
//! correlations. Trained ViTs consequently develop exactly the attention
//! structure the ViTCoD paper exploits (Fig. 2/8): diagonal locality plus
//! a small set of global tokens.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vitcod_tensor::Matrix;

/// One labelled sample.
///
/// `tokens` has `1 + grid²` rows: row 0 is an all-zero slot reserved for
/// the class token (its embedding is learned positionally by the model),
/// and rows `1..` are the patch features.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Token features, `(1 + grid²) × in_dim`.
    pub tokens: Matrix,
    /// Class label in `0..num_classes`.
    pub label: usize,
}

/// Configuration of a synthetic task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticTaskConfig {
    /// Patch grid side; token count is `grid² + 1`.
    pub grid: usize,
    /// Raw feature dimension of each patch.
    pub in_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Number of anchor tokens carrying the class prototype.
    pub num_anchors: usize,
    /// Size of the fixed *salient-position* set anchors are drawn from.
    /// Real image datasets have input-averaged-stable salient regions
    /// (which is why the paper's fixed masks work); the task mirrors
    /// that: anchors land on a small set of positions that is fixed for
    /// the whole dataset, so averaged attention maps develop global
    /// tokens there.
    pub anchor_positions: usize,
    /// Scale of the class prototype inside anchor tokens.
    pub anchor_strength: f32,
    /// Scale of the spatially smooth background field.
    pub background_strength: f32,
    /// i.i.d. noise standard deviation.
    pub noise_std: f32,
    /// Training-set size.
    pub train_samples: usize,
    /// Held-out test-set size.
    pub test_samples: usize,
    /// Master seed; the whole dataset is a pure function of the config.
    pub seed: u64,
}

impl Default for SyntheticTaskConfig {
    fn default() -> Self {
        Self {
            grid: 4,
            in_dim: 8,
            num_classes: 4,
            num_anchors: 2,
            anchor_positions: 3,
            anchor_strength: 2.5,
            background_strength: 1.0,
            noise_std: 0.3,
            train_samples: 192,
            test_samples: 96,
            seed: 0x5eed,
        }
    }
}

/// A fully materialised synthetic classification task.
///
/// # Example
///
/// ```
/// use vitcod_model::{SyntheticTask, SyntheticTaskConfig};
///
/// let task = SyntheticTask::generate(SyntheticTaskConfig::default());
/// assert_eq!(task.train.len(), 192);
/// assert_eq!(task.num_tokens(), 17);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticTask {
    /// Task configuration the data was generated from.
    pub config: SyntheticTaskConfig,
    /// Training samples.
    pub train: Vec<Sample>,
    /// Test samples.
    pub test: Vec<Sample>,
    prototypes: Vec<Vec<f32>>,
    salient: Vec<usize>,
}

impl SyntheticTask {
    /// Generates the task deterministically from `config`.
    pub fn generate(config: SyntheticTaskConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        // Class prototypes: random unit directions, mutually decorrelated
        // by construction for small class counts in in_dim >= classes.
        let prototypes: Vec<Vec<f32>> = (0..config.num_classes)
            .map(|_| {
                let mut v: Vec<f32> = (0..config.in_dim)
                    .map(|_| rng.gen_range(-1.0f32..1.0))
                    .collect();
                let n = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
                v.iter_mut().for_each(|x| *x /= n);
                v
            })
            .collect();
        // Fixed salient positions shared by the whole dataset.
        let n_patch = config.grid * config.grid;
        let mut salient = Vec::new();
        while salient.len() < config.anchor_positions.min(n_patch) {
            let p = rng.gen_range(0..n_patch);
            if !salient.contains(&p) {
                salient.push(p);
            }
        }
        let train = (0..config.train_samples)
            .map(|_| gen_sample(&config, &prototypes, &salient, &mut rng))
            .collect();
        let test = (0..config.test_samples)
            .map(|_| gen_sample(&config, &prototypes, &salient, &mut rng))
            .collect();
        Self {
            config,
            train,
            test,
            prototypes,
            salient,
        }
    }

    /// Token count per sample, including the class-token slot.
    pub fn num_tokens(&self) -> usize {
        self.config.grid * self.config.grid + 1
    }

    /// The class-prototype directions (for analysis/tests).
    pub fn prototypes(&self) -> &[Vec<f32>] {
        &self.prototypes
    }

    /// The fixed salient patch positions anchors are drawn from.
    pub fn salient_positions(&self) -> &[usize] {
        &self.salient
    }
}

fn gen_sample(
    cfg: &SyntheticTaskConfig,
    protos: &[Vec<f32>],
    salient: &[usize],
    rng: &mut ChaCha8Rng,
) -> Sample {
    let n_patch = cfg.grid * cfg.grid;
    let label = rng.gen_range(0..cfg.num_classes);
    let mut tokens = Matrix::zeros(n_patch + 1, cfg.in_dim);

    // Smooth background: a low-frequency 2D sinusoid field with a random
    // phase/direction per feature, so adjacent patches are correlated.
    let fx: Vec<f32> = (0..cfg.in_dim)
        .map(|_| rng.gen_range(0.3f32..1.2))
        .collect();
    let fy: Vec<f32> = (0..cfg.in_dim)
        .map(|_| rng.gen_range(0.3f32..1.2))
        .collect();
    let phase: Vec<f32> = (0..cfg.in_dim)
        .map(|_| rng.gen_range(0.0f32..std::f32::consts::TAU))
        .collect();
    for p in 0..n_patch {
        let (px, py) = ((p % cfg.grid) as f32, (p / cfg.grid) as f32);
        for f in 0..cfg.in_dim {
            let bg = cfg.background_strength * (fx[f] * px + fy[f] * py + phase[f]).sin();
            let noise = cfg.noise_std * gauss(rng);
            tokens.set(p + 1, f, bg + noise);
        }
    }

    // Anchors: a random subset of the fixed salient positions carrying
    // the class prototype.
    let mut anchors = Vec::with_capacity(cfg.num_anchors);
    while anchors.len() < cfg.num_anchors.min(salient.len()) {
        let a = salient[rng.gen_range(0..salient.len())];
        if !anchors.contains(&a) {
            anchors.push(a);
        }
    }
    for &a in &anchors {
        for (f, &proto) in protos[label].iter().enumerate() {
            let v = tokens.get(a + 1, f) + cfg.anchor_strength * proto;
            tokens.set(a + 1, f, v);
        }
    }

    Sample { tokens, label }
}

fn gauss(rng: &mut ChaCha8Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0f32..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticTask::generate(SyntheticTaskConfig::default());
        let b = SyntheticTask::generate(SyntheticTaskConfig::default());
        assert_eq!(a.train[0].label, b.train[0].label);
        assert_eq!(a.train[0].tokens, b.train[0].tokens);
        assert_eq!(a.test[5].tokens, b.test[5].tokens);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticTask::generate(SyntheticTaskConfig::default());
        let b = SyntheticTask::generate(SyntheticTaskConfig {
            seed: 999,
            ..SyntheticTaskConfig::default()
        });
        assert_ne!(a.train[0].tokens, b.train[0].tokens);
    }

    #[test]
    fn sample_shapes_and_labels_valid() {
        let cfg = SyntheticTaskConfig::default();
        let task = SyntheticTask::generate(cfg);
        for s in task.train.iter().chain(task.test.iter()) {
            assert_eq!(s.tokens.shape(), (17, cfg.in_dim));
            assert!(s.label < cfg.num_classes);
            // Class-token slot is zeroed.
            assert!(s.tokens.row(0).iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn labels_cover_all_classes() {
        let task = SyntheticTask::generate(SyntheticTaskConfig::default());
        for c in 0..task.config.num_classes {
            assert!(
                task.train.iter().any(|s| s.label == c),
                "class {c} missing from train set"
            );
        }
    }

    #[test]
    fn anchors_make_classes_linearly_separable_in_mean_projection() {
        // Projecting the token-sum onto each prototype should identify the
        // label more often than chance, confirming the signal exists.
        let task = SyntheticTask::generate(SyntheticTaskConfig::default());
        let mut correct = 0;
        for s in &task.test {
            // Max-over-tokens projection onto each prototype: the anchor
            // token should light up its class direction.
            let mut scores = vec![f32::NEG_INFINITY; task.config.num_classes];
            for (c, proto) in task.prototypes().iter().enumerate() {
                for r in 1..s.tokens.rows() {
                    let dot: f32 = s
                        .tokens
                        .row(r)
                        .iter()
                        .zip(proto.iter())
                        .map(|(t, p)| t * p)
                        .sum();
                    scores[c] = scores[c].max(dot);
                }
            }
            if vitcod_tensor::argmax(&scores) == Some(s.label) {
                correct += 1;
            }
        }
        let acc = correct as f64 / task.test.len() as f64;
        assert!(acc > 0.5, "linear probe accuracy only {acc}");
    }

    #[test]
    fn neighbouring_patches_correlate_more_than_distant_ones() {
        // The smooth background must induce locality; measure average
        // cosine similarity between horizontally adjacent vs. far patches.
        let task = SyntheticTask::generate(SyntheticTaskConfig {
            noise_std: 0.1,
            anchor_strength: 0.0,
            ..SyntheticTaskConfig::default()
        });
        let g = task.config.grid;
        let cos = |a: &[f32], b: &[f32]| {
            let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb).max(1e-6)
        };
        let mut near = 0.0;
        let mut far = 0.0;
        let mut count = 0;
        for s in task.train.iter().take(50) {
            for row in 0..g {
                let p0 = 1 + row * g;
                near += cos(s.tokens.row(p0), s.tokens.row(p0 + 1));
                // "Far" reference: first patch vs. the opposite corner.
                far += cos(s.tokens.row(p0), s.tokens.row(g * g));
                count += 1;
            }
        }
        let near = near / count as f32;
        let far = far / count as f32;
        assert!(
            near > far,
            "adjacent similarity {near} not higher than distant {far}"
        );
    }
}
