//! Training and finetuning loops plus the trajectory records behind the
//! paper's Fig. 9(b)/Fig. 18.

use vitcod_autograd::{cosine_lr, Adam, Optimizer, ParamStore, Tape};
use vitcod_tensor::argmax;

use crate::synthetic::{Sample, SyntheticTask};
use crate::vit::VisionTransformer;

/// Hyper-parameters of a (fine)tuning run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Base learning rate (cosine-decayed to `min_lr`).
    pub lr: f32,
    /// Final learning rate of the cosine schedule.
    pub min_lr: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Gradient-accumulation batch size.
    pub batch_size: usize,
    /// Weight of the AE reconstruction loss in the total loss (Eq. 2).
    pub recon_weight: f32,
    /// Global gradient-norm clip; `None` disables clipping.
    pub clip_norm: Option<f32>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 20,
            lr: 3e-3,
            min_lr: 1e-4,
            weight_decay: 1e-4,
            batch_size: 16,
            recon_weight: 1.0,
            clip_norm: Some(1.0),
        }
    }
}

/// One epoch's metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean task (cross-entropy) loss over the epoch.
    pub train_loss: f32,
    /// Mean AE reconstruction loss (0 when no AE is installed).
    pub recon_loss: f32,
    /// Held-out accuracy at the end of the epoch.
    pub test_accuracy: f32,
}

/// A full training trajectory — the data series of Fig. 9(b) / Fig. 18.
#[derive(Debug, Clone, Default)]
pub struct Trajectory {
    /// Per-epoch records in order.
    pub epochs: Vec<EpochRecord>,
}

impl Trajectory {
    /// Final test accuracy, or 0.0 if empty.
    pub fn final_accuracy(&self) -> f32 {
        self.epochs.last().map(|e| e.test_accuracy).unwrap_or(0.0)
    }

    /// Best test accuracy across the run.
    pub fn best_accuracy(&self) -> f32 {
        self.epochs
            .iter()
            .map(|e| e.test_accuracy)
            .fold(0.0, f32::max)
    }

    /// Final reconstruction loss, or 0.0 if empty.
    pub fn final_recon_loss(&self) -> f32 {
        self.epochs.last().map(|e| e.recon_loss).unwrap_or(0.0)
    }
}

/// Drives training of a [`VisionTransformer`] on a [`SyntheticTask`].
///
/// # Example
///
/// ```no_run
/// use rand::SeedableRng;
/// use vitcod_autograd::ParamStore;
/// use vitcod_model::{SyntheticTask, SyntheticTaskConfig, TrainConfig, Trainer,
///                    ViTConfig, VisionTransformer};
///
/// let task = SyntheticTask::generate(SyntheticTaskConfig::default());
/// let cfg = ViTConfig::deit_tiny().reduced_for_training();
/// let mut store = ParamStore::new();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let vit = VisionTransformer::new(&cfg, task.config.in_dim, task.config.num_classes,
///                                  &mut store, &mut rng);
/// let mut trainer = Trainer::new(vit, store);
/// let traj = trainer.train(&task, &TrainConfig::default());
/// assert!(traj.final_accuracy() > 0.25);
/// ```
#[derive(Clone)]
pub struct Trainer {
    model: VisionTransformer,
    store: ParamStore,
}

impl std::fmt::Debug for Trainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Trainer({:?})", self.model)
    }
}

impl Trainer {
    /// Wraps a model and its parameter store.
    pub fn new(model: VisionTransformer, store: ParamStore) -> Self {
        Self { model, store }
    }

    /// The wrapped model.
    pub fn model(&self) -> &VisionTransformer {
        &self.model
    }

    /// Mutable access to the wrapped model (to install masks/AE between
    /// pipeline steps).
    pub fn model_mut(&mut self) -> &mut VisionTransformer {
        &mut self.model
    }

    /// The parameter store.
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable access to the parameter store.
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Consumes the trainer, returning the model and store.
    pub fn into_parts(self) -> (VisionTransformer, ParamStore) {
        (self.model, self.store)
    }

    /// Installs ViTCoD auto-encoder modules into the wrapped model
    /// (borrow-splitting convenience over
    /// [`VisionTransformer::insert_auto_encoder`]).
    pub fn insert_auto_encoder<R: rand::Rng>(&mut self, spec: crate::AutoEncoderSpec, rng: &mut R) {
        self.model.insert_auto_encoder(spec, &mut self.store, rng);
    }

    /// Trains for `cfg.epochs` epochs, returning the trajectory.
    ///
    /// Each minibatch runs as **one batched tape**
    /// ([`VisionTransformer::forward_batch`]): the samples are stacked,
    /// weights are imported once per step instead of once per sample,
    /// and attention `(sample, head)` tasks fan out across worker
    /// threads. The cross-entropy (and AE reconstruction) losses average
    /// over the batch on the tape, so the flushed gradients are batch
    /// means directly — and because every kernel keeps a fixed
    /// per-element reduction order, the step's loss and gradients are
    /// bit-identical across backends and worker counts.
    ///
    /// Optimizer steps always consume batch-**mean** gradients. (The
    /// replaced per-sample loop only rescaled the summed gradients when
    /// `clip_norm` was set; with `clip_norm: None` it stepped on the
    /// batch *sum*, so learning rates tuned against that unclipped
    /// configuration are effectively multiplied by `batch_size` here.)
    pub fn train(&mut self, task: &SyntheticTask, cfg: &TrainConfig) -> Trajectory {
        let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
        let mut trajectory = Trajectory::default();
        let steps_per_epoch = task.train.len().div_ceil(cfg.batch_size).max(1);
        let total_steps = steps_per_epoch * cfg.epochs;
        let mut step = 0usize;
        for epoch in 0..cfg.epochs {
            let mut loss_sum = 0.0;
            let mut recon_sum = 0.0;
            let mut count = 0usize;
            for batch in task.train.chunks(cfg.batch_size) {
                opt.set_learning_rate(cosine_lr(cfg.lr, cfg.min_lr, step, total_steps));
                step += 1;
                self.store.zero_grads();
                let (task_loss, recon) = self.backward_batch(batch, cfg.recon_weight);
                loss_sum += task_loss * batch.len() as f32;
                recon_sum += recon * batch.len() as f32;
                count += batch.len();
                if let Some(clip) = cfg.clip_norm {
                    self.store.clip_grad_norm(clip);
                }
                opt.step(&mut self.store);
            }
            let test_accuracy = self.evaluate(&task.test);
            trajectory.epochs.push(EpochRecord {
                epoch,
                train_loss: loss_sum / count.max(1) as f32,
                recon_loss: recon_sum / count.max(1) as f32,
                test_accuracy,
            });
        }
        trajectory
    }

    /// Forward + backward of one minibatch on a single batched tape;
    /// returns (mean task loss, mean recon loss). Gradients flushed into
    /// the store are batch means (the batched losses average over
    /// samples on the tape).
    fn backward_batch(&mut self, batch: &[Sample], recon_weight: f32) -> (f32, f32) {
        let tokens: Vec<&vitcod_tensor::Matrix> = batch.iter().map(|s| &s.tokens).collect();
        let targets: Vec<usize> = batch.iter().map(|s| s.label).collect();
        let mut tape = Tape::new();
        let out = self.model.forward_batch(&mut tape, &self.store, &tokens);
        let ce = tape.cross_entropy(out.logits, &targets);
        let (loss_node, recon_value) = match out.recon_loss {
            Some(r) => (tape.weighted_sum(ce, r, 1.0, recon_weight), tape.scalar(r)),
            None => (ce, 0.0),
        };
        let ce_value = tape.scalar(ce);
        tape.backward(loss_node);
        tape.write_grads(&mut self.store);
        (ce_value, recon_value)
    }

    /// Top-1 accuracy over `samples`.
    ///
    /// Samples fan out across worker threads (each forward is
    /// independent), which puts every evaluation pass — one per training
    /// epoch — on the kernel layer's parallel path.
    pub fn evaluate(&self, samples: &[Sample]) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        // Rough per-sample forward cost: attention + projections + MLP
        // MACs, so the fan-out decision scales with the model size.
        let cfg = self.model.config();
        let per_sample = cfg.depth
            * (2 * cfg.tokens * cfg.tokens * cfg.dim
                + (4 + 2 * cfg.mlp_ratio) * cfg.tokens * cfg.dim * cfg.dim);
        let correct = vitcod_tensor::kernels::par_map_collect(samples.len(), per_sample, |i| {
            let s = &samples[i];
            let mut tape = Tape::new();
            let out = self.model.forward(&mut tape, &self.store, &s.tokens);
            let logits = tape.value(out.logits).row(0);
            argmax(logits) == Some(s.label)
        })
        .into_iter()
        .filter(|&c| c)
        .count();
        correct as f32 / samples.len() as f32
    }

    /// Averaged attention maps over the task's training set (the input to
    /// the split-and-conquer algorithm).
    pub fn averaged_attention_maps(&self, task: &SyntheticTask) -> Vec<Vec<vitcod_tensor::Matrix>> {
        self.model.averaged_attention_maps(&self.store, &task.train)
    }
}

#[cfg(test)]
// Exact float equality below asserts deterministic replay of seeded runs.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::{SyntheticTaskConfig, ViTConfig, VisionTransformer};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_task() -> SyntheticTask {
        SyntheticTask::generate(SyntheticTaskConfig {
            train_samples: 96,
            test_samples: 32,
            ..Default::default()
        })
    }

    fn make_trainer(task: &SyntheticTask, seed: u64) -> Trainer {
        let cfg = ViTConfig::deit_tiny().reduced_for_training();
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let vit = VisionTransformer::new(
            &cfg,
            task.config.in_dim,
            task.config.num_classes,
            &mut store,
            &mut rng,
        );
        Trainer::new(vit, store)
    }

    #[test]
    fn training_reduces_loss() {
        let task = small_task();
        let mut trainer = make_trainer(&task, 1);
        let traj = trainer.train(
            &task,
            &TrainConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        assert_eq!(traj.epochs.len(), 5);
        let first = traj.epochs.first().unwrap().train_loss;
        let last = traj.epochs.last().unwrap().train_loss;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn training_beats_chance_accuracy() {
        let task = small_task();
        let mut trainer = make_trainer(&task, 2);
        let traj = trainer.train(
            &task,
            &TrainConfig {
                epochs: 12,
                ..Default::default()
            },
        );
        // 4 classes => chance = 0.25.
        assert!(
            traj.best_accuracy() > 0.4,
            "best accuracy {} not above chance",
            traj.best_accuracy()
        );
    }

    #[test]
    fn evaluate_on_empty_returns_zero() {
        let task = small_task();
        let trainer = make_trainer(&task, 3);
        assert_eq!(trainer.evaluate(&[]), 0.0);
    }

    #[test]
    fn trajectory_helpers() {
        let t = Trajectory {
            epochs: vec![
                EpochRecord {
                    epoch: 0,
                    train_loss: 1.0,
                    recon_loss: 0.5,
                    test_accuracy: 0.3,
                },
                EpochRecord {
                    epoch: 1,
                    train_loss: 0.5,
                    recon_loss: 0.2,
                    test_accuracy: 0.6,
                },
            ],
        };
        assert_eq!(t.final_accuracy(), 0.6);
        assert_eq!(t.best_accuracy(), 0.6);
        assert_eq!(t.final_recon_loss(), 0.2);
        assert_eq!(Trajectory::default().final_accuracy(), 0.0);
    }
}
