//! ViT model zoo, FLOPs accounting and the training substrate for the
//! ViTCoD reproduction.
//!
//! The ViTCoD paper evaluates seven models (DeiT-Tiny/Small/Base,
//! LeViT-128/192/256 and Strided Transformer). This crate provides:
//!
//! * [`ViTConfig`] — architectural descriptions of all seven models at
//!   paper scale, used by the FLOPs counters, the attention-map generator
//!   and the hardware simulators;
//! * [`FlopsBreakdown`] — the per-component FLOPs accounting behind the
//!   paper's Fig. 4;
//! * [`VisionTransformer`] — a *trainable* ViT built on
//!   [`vitcod_autograd`], supporting fixed per-head sparse attention masks
//!   and the ViTCoD auto-encoder modules, used to reproduce the paper's
//!   algorithm experiments (Figs. 1, 9, 17, 18) on synthetic tasks;
//! * [`SyntheticTask`] — procedurally generated vision tasks whose
//!   attention maps exhibit the diagonal-plus-global-token structure the
//!   paper exploits (the documented substitution for ImageNet);
//! * [`AttentionStats`] — a statistical generator reproducing paper-scale
//!   (197-token, 12-layer × 12-head) averaged attention-map ensembles for
//!   hardware experiments without full-scale training.
//!
//! # Example
//!
//! ```
//! use vitcod_model::ViTConfig;
//!
//! let deit = ViTConfig::deit_base();
//! assert_eq!(deit.tokens, 197);
//! assert_eq!(deit.heads, 12);
//! let flops = deit.flops();
//! assert!(flops.attention_fraction() > 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attention_stats;
mod config;
mod flops;
mod synthetic;
mod trainer;
mod vit;

pub use attention_stats::{AttentionStats, AttentionStatsConfig};
pub use config::{ModelFamily, StageConfig, ViTConfig};
pub use flops::FlopsBreakdown;
pub use synthetic::{Sample, SyntheticTask, SyntheticTaskConfig};
pub use trainer::{EpochRecord, TrainConfig, Trainer, Trajectory};
pub use vit::{
    AeParamIds, AutoEncoderSpec, BlockModules, SparsityPlan, VisionTransformer, VitOutput,
};
