//! Architectural configurations for the seven evaluated models.

use std::fmt;

/// The family a configuration belongs to; decides the non-attention parts
/// of FLOPs accounting (LeViT carries early convolutions, Strided
/// Transformer processes pose sequences).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Plain ViT trained with distillation (DeiT-Tiny/Small/Base).
    DeiT,
    /// Multi-stage mobile ViT hybrid (LeViT-128/192/256).
    LeViT,
    /// Strided Transformer for 3D human-pose estimation.
    Strided,
}

impl fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelFamily::DeiT => write!(f, "DeiT"),
            ModelFamily::LeViT => write!(f, "LeViT"),
            ModelFamily::Strided => write!(f, "Strided Transformer"),
        }
    }
}

/// One pyramid stage of a multi-stage model (LeViT); plain ViTs have a
/// single stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageConfig {
    /// Tokens processed by this stage (including any class token).
    pub tokens: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Transformer blocks in this stage.
    pub depth: usize,
}

impl StageConfig {
    /// Per-head feature dimension `dim / heads`.
    pub fn head_dim(&self) -> usize {
        self.dim / self.heads
    }
}

/// Architectural description of an evaluated model.
///
/// The aggregate `tokens`/`dim`/`heads`/`depth` fields describe the first
/// (or only) stage — the stage ViTCoD's attention experiments target —
/// while `stages` carries the full pyramid for FLOPs accounting.
///
/// # Example
///
/// ```
/// let cfgs = vitcod_model::ViTConfig::all_paper_models();
/// assert_eq!(cfgs.len(), 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ViTConfig {
    /// Human-readable model name as used in the paper's figures.
    pub name: &'static str,
    /// Model family.
    pub family: ModelFamily,
    /// Input tokens of the primary stage (e.g. 197 for DeiT at 224²/16²).
    pub tokens: usize,
    /// Embedding dimension of the primary stage.
    pub dim: usize,
    /// Attention heads of the primary stage.
    pub heads: usize,
    /// Transformer blocks across all stages.
    pub depth: usize,
    /// MLP expansion ratio (4 for DeiT; 2 for LeViT's reduced MLPs).
    pub mlp_ratio: usize,
    /// All pyramid stages.
    pub stages: Vec<StageConfig>,
    /// FLOPs of non-transformer layers (LeViT's early convolutions), in
    /// multiply-accumulates.
    pub stem_macs: u64,
    /// Attention sparsity (fraction of pruned entries) at which the paper
    /// reports ≤1% accuracy drop for this model: 0.90 for DeiT, 0.80 for
    /// LeViT, 0.90 for Strided.
    pub paper_sparsity: f64,
}

impl ViTConfig {
    /// DeiT-Tiny: 192-dim, 3 heads, 12 blocks, 197 tokens.
    pub fn deit_tiny() -> Self {
        Self::deit("DeiT-Tiny", 192, 3)
    }

    /// DeiT-Small: 384-dim, 6 heads, 12 blocks, 197 tokens.
    pub fn deit_small() -> Self {
        Self::deit("DeiT-Small", 384, 6)
    }

    /// DeiT-Base: 768-dim, 12 heads, 12 blocks, 197 tokens.
    pub fn deit_base() -> Self {
        Self::deit("DeiT-Base", 768, 12)
    }

    fn deit(name: &'static str, dim: usize, heads: usize) -> Self {
        let stage = StageConfig {
            tokens: 197,
            dim,
            heads,
            depth: 12,
        };
        Self {
            name,
            family: ModelFamily::DeiT,
            tokens: stage.tokens,
            dim,
            heads,
            depth: 12,
            mlp_ratio: 4,
            stages: vec![stage],
            stem_macs: 0,
            paper_sparsity: 0.90,
        }
    }

    /// LeViT-128: stages (196, 128, 4, 4), (49, 256, 8, 4), (16, 384, 12, 4).
    pub fn levit_128() -> Self {
        Self::levit("LeViT-128", [128, 256, 384], [4, 8, 12])
    }

    /// LeViT-192: stages with dims 192/288/384 and heads 3/6/6 (head
    /// counts rounded from LeViT's fixed-key-dim scheme so that stage
    /// dims divide evenly).
    pub fn levit_192() -> Self {
        Self::levit("LeViT-192", [192, 288, 384], [3, 6, 6])
    }

    /// LeViT-256: stages with dims 256/384/512 and heads 4/6/8.
    pub fn levit_256() -> Self {
        Self::levit("LeViT-256", [256, 384, 512], [4, 6, 8])
    }

    fn levit(name: &'static str, dims: [usize; 3], heads: [usize; 3]) -> Self {
        let token_counts = [196, 49, 16];
        let stages: Vec<StageConfig> = (0..3)
            .map(|i| StageConfig {
                tokens: token_counts[i],
                dim: dims[i],
                heads: heads[i],
                depth: 4,
            })
            .collect();
        // LeViT's convolutional stem: 4 stride-2 3x3 convs from 3 channels
        // to dims[0], on a 224x224 input. < 7% of total FLOPs per the paper.
        let stem_macs = levit_stem_macs(dims[0]);
        Self {
            name,
            family: ModelFamily::LeViT,
            tokens: token_counts[0],
            dim: dims[0],
            heads: heads[0],
            depth: 12,
            mlp_ratio: 2,
            stages,
            stem_macs,
            paper_sparsity: 0.80,
        }
    }

    /// Strided Transformer (3D human pose, Human3.6M): 351 input frames,
    /// 256-dim, 8 heads, 3 encoder + 3 strided blocks.
    pub fn strided_transformer() -> Self {
        let stage = StageConfig {
            tokens: 351,
            dim: 256,
            heads: 8,
            depth: 6,
        };
        Self {
            name: "StridedTrans.",
            family: ModelFamily::Strided,
            tokens: stage.tokens,
            dim: stage.dim,
            heads: stage.heads,
            depth: stage.depth,
            mlp_ratio: 4,
            stages: vec![stage],
            stem_macs: 0,
            paper_sparsity: 0.90,
        }
    }

    /// All seven models in the paper's Fig. 15 order.
    pub fn all_paper_models() -> Vec<ViTConfig> {
        vec![
            Self::strided_transformer(),
            Self::deit_tiny(),
            Self::deit_small(),
            Self::deit_base(),
            Self::levit_128(),
            Self::levit_192(),
            Self::levit_256(),
        ]
    }

    /// The six DeiT + LeViT classification models (the paper's "six ViT
    /// models" used for averaged speedups).
    pub fn classification_models() -> Vec<ViTConfig> {
        vec![
            Self::deit_tiny(),
            Self::deit_small(),
            Self::deit_base(),
            Self::levit_128(),
            Self::levit_192(),
            Self::levit_256(),
        ]
    }

    /// Per-head feature dimension of the primary stage.
    pub fn head_dim(&self) -> usize {
        self.dim / self.heads
    }

    /// A reduced, trainable twin of this configuration for the synthetic
    /// training substrate: same head count and depth *shape* but shrunk
    /// dims/tokens so the from-scratch training experiments finish in
    /// seconds. Downscaling preserves the ratios the algorithm cares
    /// about (heads, tokens-per-global-token, mlp ratio).
    pub fn reduced_for_training(&self) -> ViTConfig {
        let heads = (self.heads / 2).clamp(2, 6);
        let dim = heads * 8;
        let tokens = 17; // 4x4 patch grid + class token
        let depth = 2;
        let stage = StageConfig {
            tokens,
            dim,
            heads,
            depth,
        };
        ViTConfig {
            name: self.name,
            family: self.family,
            tokens,
            dim,
            heads,
            depth,
            mlp_ratio: self.mlp_ratio,
            stages: vec![stage],
            stem_macs: 0,
            paper_sparsity: self.paper_sparsity,
        }
    }
}

fn levit_stem_macs(out_dim: usize) -> u64 {
    // Four stride-2 3x3 convolutions: 224->112->56->28->14, channel
    // progression 3 -> d/8 -> d/4 -> d/2 -> d.
    let chans = [3, out_dim / 8, out_dim / 4, out_dim / 2, out_dim];
    let sizes = [112u64, 56, 28, 14];
    let mut macs = 0u64;
    for i in 0..4 {
        macs += sizes[i] * sizes[i] * 9 * chans[i] as u64 * chans[i + 1] as u64;
    }
    macs
}

#[cfg(test)]
// Exact float equality below asserts deterministic replay of seeded runs.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn deit_configs_match_published_architecture() {
        let t = ViTConfig::deit_tiny();
        assert_eq!((t.dim, t.heads, t.depth, t.tokens), (192, 3, 12, 197));
        let s = ViTConfig::deit_small();
        assert_eq!((s.dim, s.heads), (384, 6));
        let b = ViTConfig::deit_base();
        assert_eq!((b.dim, b.heads), (768, 12));
        assert_eq!(b.head_dim(), 64);
    }

    #[test]
    fn levit_has_three_stages_with_decreasing_tokens() {
        for cfg in [
            ViTConfig::levit_128(),
            ViTConfig::levit_192(),
            ViTConfig::levit_256(),
        ] {
            assert_eq!(cfg.stages.len(), 3);
            assert!(cfg.stages.windows(2).all(|w| w[0].tokens > w[1].tokens));
            assert!(cfg.stem_macs > 0);
            assert_eq!(cfg.paper_sparsity, 0.80);
        }
    }

    #[test]
    fn all_paper_models_has_seven_entries() {
        let models = ViTConfig::all_paper_models();
        assert_eq!(models.len(), 7);
        let names: Vec<_> = models.iter().map(|m| m.name).collect();
        assert!(names.contains(&"DeiT-Base"));
        assert!(names.contains(&"LeViT-256"));
        assert!(names.contains(&"StridedTrans."));
    }

    #[test]
    fn head_dims_divide_evenly() {
        for cfg in ViTConfig::all_paper_models() {
            for st in &cfg.stages {
                assert_eq!(st.dim % st.heads, 0, "{}: stage dims", cfg.name);
                assert!(st.head_dim() >= 16);
            }
        }
    }

    #[test]
    fn reduced_config_is_small_and_consistent() {
        let r = ViTConfig::deit_base().reduced_for_training();
        assert!(r.tokens <= 32);
        assert_eq!(r.dim % r.heads, 0);
        assert_eq!(r.stages.len(), 1);
    }

    #[test]
    fn family_display_is_nonempty() {
        assert_eq!(ModelFamily::DeiT.to_string(), "DeiT");
        assert!(!ModelFamily::Strided.to_string().is_empty());
    }
}
