//! Property-based tests of the split-and-conquer algorithm invariants.

use proptest::prelude::*;
use vitcod_core::{
    prune_info, prune_to_sparsity, reorder_global_tokens, AttentionMask, CscMatrix, PruneCriterion,
    SplitConquer, SplitConquerConfig,
};
use vitcod_tensor::Matrix;

fn attention_map(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(0.0f32..1.0, n * n)
        .prop_map(move |v| Matrix::from_vec(n, n, v).softmax_rows())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn prune_info_retains_requested_mass(map in attention_map(20), theta in 0.2f64..0.95) {
        let mask = prune_info(&map, theta);
        prop_assert!(
            mask.retained_information(&map) >= theta - 1e-4,
            "retained {} < theta {theta}",
            mask.retained_information(&map)
        );
    }

    #[test]
    fn prune_info_is_monotone(map in attention_map(16)) {
        let low = prune_info(&map, 0.3);
        let high = prune_info(&map, 0.8);
        // Everything kept at theta=0.3 is kept at theta=0.8 (per-row
        // prefix property of the descending sort).
        for (q, k) in low.iter_kept() {
            prop_assert!(high.is_kept(q, k), "({q},{k}) lost when raising theta");
        }
    }

    #[test]
    fn prune_masks_never_leave_empty_rows(map in attention_map(14), s in 0.1f64..0.95) {
        let by_sparsity = prune_to_sparsity(&map, s);
        prop_assert!(by_sparsity.row_nnz().iter().all(|&c| c >= 1));
        let by_info = prune_info(&map, 1.0 - s);
        prop_assert!(by_info.row_nnz().iter().all(|&c| c >= 1));
    }

    #[test]
    fn reorder_polarization_is_non_negative(map in attention_map(24), s in 0.6f64..0.95) {
        let mask = prune_to_sparsity(&map, s);
        let r = reorder_global_tokens(&mask, None);
        if r.num_global > 0 && r.num_global < 24 {
            prop_assert!(
                r.polarization() >= 0.0,
                "denser block must be at least as dense as the residue"
            );
        }
    }

    #[test]
    fn reorder_then_inverse_restores_mask(map in attention_map(16), s in 0.5f64..0.9) {
        let mask = prune_to_sparsity(&map, s);
        let r = reorder_global_tokens(&mask, None);
        let mut inv = vec![0usize; 16];
        for (i, &p) in r.perm.iter().enumerate() {
            inv[p] = i;
        }
        prop_assert_eq!(r.mask.permute_symmetric(&inv), mask);
    }

    #[test]
    fn sparser_csc_plus_denser_block_cover_polarized_mask(
        map in attention_map(20), s in 0.6f64..0.95
    ) {
        let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(s));
        let ph = sc.apply_one(0, 0, &map);
        let csc = ph.sparser_csc();
        let w = ph.workload();
        // CSC covers exactly the residue.
        prop_assert_eq!(csc.nnz(), w.sparser_nnz);
        // Denser block + residue = everything.
        prop_assert_eq!(w.denser_nnz + w.sparser_nnz, ph.polarized_mask().nnz());
        // And the original pruned mask has the same kept count.
        prop_assert_eq!(ph.pruned.nnz(), ph.polarized_mask().nnz());
    }

    #[test]
    fn csc_col_walk_is_row_sorted(mask_bits in proptest::collection::vec(any::<bool>(), 144)) {
        let mut mask = AttentionMask::empty(12);
        for (i, b) in mask_bits.iter().enumerate() {
            if *b {
                mask.keep(i / 12, i % 12);
            }
        }
        let csc = CscMatrix::from_mask(&mask);
        for k in 0..12 {
            let rows = csc.col_rows(k);
            prop_assert!(rows.windows(2).all(|w| w[0] < w[1]));
        }
        prop_assert_eq!(AttentionMask::from_csc(&csc), mask);
    }

    #[test]
    fn both_criteria_agree_on_structure(map in attention_map(18)) {
        // Info-threshold and sparsity-target pruning at matched budgets
        // keep strongly overlapping sets (the same heavy entries).
        let by_info = prune_info(&map, 0.7);
        let s = by_info.sparsity();
        if s > 0.05 && s < 0.95 {
            let by_sparsity = prune_to_sparsity(&map, s);
            let overlap = by_info
                .iter_kept()
                .filter(|&(q, k)| by_sparsity.is_kept(q, k))
                .count();
            let frac = overlap as f64 / by_info.nnz() as f64;
            prop_assert!(frac > 0.5, "criteria overlap only {frac:.2}");
        }
    }

    #[test]
    fn compile_conserves_macs(map in attention_map(22), s in 0.6f64..0.9) {
        use vitcod_core::compile_model;
        use vitcod_model::{StageConfig, ViTConfig, ModelFamily};
        let stage = StageConfig { tokens: 22, dim: 44, heads: 2, depth: 1 };
        let cfg = ViTConfig {
            name: "prop", family: ModelFamily::DeiT, tokens: 22, dim: 44,
            heads: 2, depth: 1, mlp_ratio: 4, stages: vec![stage],
            stem_macs: 0, paper_sparsity: s,
        };
        let crit = SplitConquerConfig {
            criterion: PruneCriterion::TargetSparsity(s),
            theta_d: None,
        };
        let sc = SplitConquer::new(crit);
        let heads = sc.apply(&[vec![map.clone(), map.clone()]]);
        let program = compile_model(&cfg, &heads, None);
        // SpMM MACs = nnz * dk for every head.
        for layer in &program.layers {
            for h in &layer.heads {
                prop_assert_eq!(
                    h.spmm_denser_macs() + h.spmm_sparser_macs(),
                    ((h.denser_nnz + h.sparser_nnz) * h.head_dim) as u64
                );
            }
        }
    }
}
