//! Table I: the taxonomy of representative sparse accelerators.
//!
//! This module encodes the paper's comparison table as data so the
//! benchmark harness can regenerate it verbatim.

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaxonomyRow {
    /// Accelerator name.
    pub name: &'static str,
    /// Application field.
    pub field: &'static str,
    /// Workloads handled.
    pub workloads: &'static str,
    /// Dataflow.
    pub dataflow: &'static str,
    /// Sparsity pattern (static vs dynamic).
    pub sparsity_pattern: &'static str,
    /// Pattern regularity.
    pub regularity: &'static str,
    /// Off-chip traffic level.
    pub offchip_traffic: &'static str,
    /// Bandwidth requirement.
    pub bandwidth: &'static str,
    /// Supported sparsity level.
    pub sparsity: &'static str,
    /// Whether it is an algorithm & hardware co-design.
    pub codesign: bool,
}

/// The seven accelerators of Table I, in paper order.
pub fn rows() -> Vec<TaxonomyRow> {
    vec![
        TaxonomyRow {
            name: "OuterSpace",
            field: "Tensor Algebra",
            workloads: "SpGEMM",
            dataflow: "Outer-product (Input-stationary)",
            sparsity_pattern: "Static",
            regularity: "Unstructured",
            offchip_traffic: "High",
            bandwidth: "Medium",
            sparsity: "High~Ultra High",
            codesign: true,
        },
        TaxonomyRow {
            name: "ExTensor",
            field: "Tensor Algebra",
            workloads: "SpGEMM",
            dataflow: "Hybrid Outer & Inner-product (Input- & Output-stationary)",
            sparsity_pattern: "Static",
            regularity: "Unstructured",
            offchip_traffic: "Low~Medium",
            bandwidth: "Medium~High",
            sparsity: "High~Ultra High",
            codesign: false,
        },
        TaxonomyRow {
            name: "SpArch",
            field: "Tensor Algebra",
            workloads: "SpGEMM",
            dataflow: "Condensed Outer-product (Input-stationary)",
            sparsity_pattern: "Static",
            regularity: "Unstructured",
            offchip_traffic: "Low~Medium",
            bandwidth: "Low",
            sparsity: "High~Ultra High",
            codesign: false,
        },
        TaxonomyRow {
            name: "Gamma",
            field: "Tensor Algebra",
            workloads: "SpGEMM",
            dataflow: "Gustavson(Row)-stationary",
            sparsity_pattern: "Static",
            regularity: "Unstructured",
            offchip_traffic: "Low",
            bandwidth: "Low",
            sparsity: "High~Ultra High",
            codesign: false,
        },
        TaxonomyRow {
            name: "SpAtten",
            field: "NLP Transformer",
            workloads: "Sparse Attention: SDDMM; SpMM",
            dataflow: "Top-k Selection",
            sparsity_pattern: "Dynamic & Input-dependent",
            regularity: "Coarse-grained & Structured",
            offchip_traffic: "Medium",
            bandwidth: "Medium~High",
            sparsity: "Low",
            codesign: true,
        },
        TaxonomyRow {
            name: "Sanger",
            field: "NLP Transformer",
            workloads: "Sparse Attention: SDDMM; SpMM",
            dataflow: "S-stationary",
            sparsity_pattern: "Dynamic & Input-dependent",
            regularity: "Fine-grained & Structured",
            offchip_traffic: "High",
            bandwidth: "Medium~High",
            sparsity: "Medium",
            codesign: true,
        },
        TaxonomyRow {
            name: "ViTCoD (Ours)",
            field: "ViT",
            workloads: "Sparse Attention: SDDMM; SpMM",
            dataflow: "K-stationary; Output-stationary",
            sparsity_pattern: "Static",
            regularity: "Denser & Sparser",
            offchip_traffic: "Low",
            bandwidth: "Low",
            sparsity: "High",
            codesign: true,
        },
    ]
}

/// Renders the table as aligned plain text (the harness's Table I
/// output).
pub fn render() -> String {
    let rows = rows();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<16} {:<32} {:<28} {:<26} {:<28} {:<12} {:<13} {:<16} {}\n",
        "Accelerator",
        "Field",
        "Workloads",
        "Dataflow",
        "Sparsity Pattern",
        "Regularity",
        "Traffic",
        "Bandwidth",
        "Sparsity",
        "Co-design"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:<16} {:<32} {:<28} {:<26} {:<28} {:<12} {:<13} {:<16} {}\n",
            r.name,
            r.field,
            r.workloads,
            truncate(r.dataflow, 28),
            r.sparsity_pattern,
            r.regularity,
            r.offchip_traffic,
            r.bandwidth,
            r.sparsity,
            if r.codesign { "yes" } else { "no" }
        ));
    }
    out
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}…", &s[..max.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_seven_rows_ending_with_vitcod() {
        let r = rows();
        assert_eq!(r.len(), 7);
        assert_eq!(r.last().unwrap().name, "ViTCoD (Ours)");
    }

    #[test]
    fn vitcod_row_matches_paper_claims() {
        let r = rows();
        let v = r.last().unwrap();
        assert_eq!(v.sparsity_pattern, "Static");
        assert_eq!(v.offchip_traffic, "Low");
        assert_eq!(v.bandwidth, "Low");
        assert!(v.codesign);
        assert!(v.dataflow.contains("K-stationary"));
    }

    #[test]
    fn only_attention_accelerators_handle_sddmm() {
        for r in rows() {
            let is_attention = r.workloads.contains("SDDMM");
            let is_transformer_or_vit = r.field.contains("Transformer") || r.field == "ViT";
            assert_eq!(is_attention, is_transformer_or_vit, "{}", r.name);
        }
    }

    #[test]
    fn render_contains_all_names() {
        let s = render();
        for r in rows() {
            assert!(s.contains(r.name), "{} missing from render", r.name);
        }
        assert!(s.lines().count() >= 8);
    }
}
