//! The ViTCoD algorithm — the paper's primary contribution.
//!
//! ViTCoD (HPCA 2023) co-designs a sparse-ViT *algorithm* with a dedicated
//! *accelerator*. This crate implements the algorithm side and the
//! algorithm→hardware interface:
//!
//! * [`AttentionMask`] — fixed binary attention masks and their workload
//!   statistics;
//! * [`prune_info`] / [`prune_to_sparsity`] — pruning with fixed masks
//!   (Alg. 1, lines 1–6): keep the highest attention scores until a
//!   cumulative information-quantity threshold `θp` is reached;
//! * [`reorder_global_tokens`] — attention-map reordering (Alg. 1, lines
//!   7–14): move *global tokens* (columns with more than `θd` non-zeros)
//!   to the front, polarising each map into a **denser** block plus a
//!   **sparser** residue;
//! * [`SplitConquer`] — the combined split-and-conquer transform applied
//!   across a model's full attention-map ensemble;
//! * [`CscMatrix`] / [`CooMatrix`] — the sparse index formats the
//!   accelerator's sparser engine pre-loads;
//! * [`AutoEncoderConfig`] — the data-movement accounting of the
//!   learnable Q/K auto-encoder (Sec. IV-C);
//! * [`ViTCoDPipeline`] — the unified two-step pipeline (Fig. 10): insert
//!   AE modules → finetune → split-and-conquer → finetune, driving the
//!   trainable substrate from [`vitcod_model`];
//! * [`compile_model`] — the network-parser + hardware-compiler interface
//!   (Fig. 14) that lowers a sparsified model into the per-layer
//!   [`AcceleratorProgram`] consumed by the simulator;
//! * [`taxonomy`] — the Table I comparison data.
//!
//! # Example: split-and-conquer on one head
//!
//! ```
//! use vitcod_core::{prune_to_sparsity, reorder_global_tokens};
//! use vitcod_model::{AttentionStats, ViTConfig};
//!
//! let stats = AttentionStats::for_model(&ViTConfig::deit_small(), 0);
//! let mask = prune_to_sparsity(&stats.maps[0][0], 0.9);
//! assert!((mask.sparsity() - 0.9).abs() < 0.01);
//! let reordered = reorder_global_tokens(&mask, None);
//! assert!(reordered.num_global <= mask.size());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod autoencoder;
mod formats;
mod interface;
mod mask;
mod pipeline;
mod prune;
mod render;
mod reorder;
mod split_conquer;
pub mod taxonomy;

pub use artifact::{
    load_compiled, load_masks, load_program, save_compiled, save_masks, save_program,
    CompiledModelArtifact, HeadPlanRecord, NamedTensor, ParseArtifactError, TensorPayload,
};
pub use autoencoder::AutoEncoderConfig;
pub use formats::{CooMatrix, CscMatrix, SparsityPattern};
pub use interface::{compile_model, AcceleratorProgram, LayerProgram, PhaseWorkload};
pub use mask::AttentionMask;
pub use pipeline::{PipelineConfig, PipelineReport, ViTCoDPipeline};
pub use prune::{prune_info, prune_to_sparsity};
pub use render::{mask_grid_to_pgm, mask_to_pgm, matrix_to_pgm};
pub use reorder::{reorder_global_tokens, ReorderResult};
pub use split_conquer::{
    PolarizedHead, PruneCriterion, SplitConquer, SplitConquerConfig, WorkloadSplit,
};
