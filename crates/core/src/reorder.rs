//! Attention-map reordering (Alg. 1, lines 7–14).

use crate::mask::AttentionMask;

/// Result of the global-token reordering step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReorderResult {
    /// Token permutation: output position `i` holds input token
    /// `perm[i]`. Global tokens occupy positions `0..num_global`.
    pub perm: Vec<usize>,
    /// Number of global tokens `N_gt` moved to the front.
    pub num_global: usize,
    /// The mask after symmetric (row and column) permutation.
    pub mask: AttentionMask,
    /// The column-count threshold `θd` actually used.
    pub theta_d: usize,
}

impl ReorderResult {
    /// Density inside the denser block (the first `num_global` columns).
    pub fn denser_density(&self) -> f64 {
        let n = self.mask.size();
        if self.num_global == 0 || n == 0 {
            return 0.0;
        }
        self.mask.nnz_in_cols(0, self.num_global) as f64 / (n * self.num_global) as f64
    }

    /// Density of the sparser residue (columns `num_global..n`).
    pub fn sparser_density(&self) -> f64 {
        let n = self.mask.size();
        let rest = n - self.num_global;
        if rest == 0 || n == 0 {
            return 0.0;
        }
        self.mask.nnz_in_cols(self.num_global, n) as f64 / (n * rest) as f64
    }

    /// Polarization gap: denser density minus sparser density. The split
    /// and conquer algorithm exists to make this large.
    pub fn polarization(&self) -> f64 {
        self.denser_density() - self.sparser_density()
    }
}

/// Identifies *global tokens* — columns whose kept count exceeds `θd` —
/// and permutes them to the front (Alg. 1: `SWAP`/`PERMUTE`), polarising
/// the mask into a denser block and a sparser residue.
///
/// When `theta_d` is `None` the threshold defaults to
/// `min(2 × n̄, n/2)` — twice the mean column occupancy, capped at half
/// the token count — which adapts to the mask's overall sparsity the way
/// the paper's per-model tuned constant does while still classifying the
/// columns of dense/low-sparsity maps as global (a dense map *is* one
/// big global block and belongs on the denser engine).
///
/// The permutation is *symmetric* (applied to queries and keys alike)
/// because reordering renames tokens, and it is *stable*: global tokens
/// keep their relative order, as do the rest — matching Alg. 1's
/// in-order SWAP loop.
///
/// # Example
///
/// ```
/// use vitcod_core::{reorder_global_tokens, AttentionMask};
///
/// // Token 5 of 8 is global (attended by everyone).
/// let mut m = AttentionMask::empty(8);
/// for q in 0..8 {
///     m.keep(q, 5);
///     m.keep(q, q);
/// }
/// let r = reorder_global_tokens(&m, None);
/// assert_eq!(r.num_global, 1);
/// assert_eq!(r.perm[0], 5);
/// ```
pub fn reorder_global_tokens(mask: &AttentionMask, theta_d: Option<usize>) -> ReorderResult {
    let n = mask.size();
    let col_counts = mask.col_nnz();
    let theta_d = theta_d.unwrap_or_else(|| {
        let mean = col_counts.iter().sum::<usize>() as f64 / n.max(1) as f64;
        ((2.0 * mean).ceil() as usize).min(n / 2)
    });

    // Stable partition: global tokens first (Alg. 1 lines 8-13).
    let mut perm = Vec::with_capacity(n);
    let mut rest = Vec::new();
    for (i, &c) in col_counts.iter().enumerate() {
        if c > theta_d {
            perm.push(i);
        } else {
            rest.push(i);
        }
    }
    let num_global = perm.len();
    perm.extend(rest);

    let permuted = mask.permute_symmetric(&perm);
    ReorderResult {
        perm,
        num_global,
        mask: permuted,
        theta_d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mask with a diagonal plus `g` global columns at chosen positions.
    fn diag_plus_globals(n: usize, globals: &[usize]) -> AttentionMask {
        let mut m = AttentionMask::empty(n);
        for q in 0..n {
            m.keep(q, q);
            for &g in globals {
                m.keep(q, g);
            }
        }
        m
    }

    #[test]
    fn detects_and_fronts_global_tokens() {
        let m = diag_plus_globals(16, &[3, 11]);
        let r = reorder_global_tokens(&m, None);
        assert_eq!(r.num_global, 2);
        assert_eq!(&r.perm[..2], &[3, 11]);
        // After reordering, the first two columns are (nearly) full.
        let cols = r.mask.col_nnz();
        assert_eq!(cols[0], 16);
        assert_eq!(cols[1], 16);
    }

    #[test]
    fn no_globals_identity_permutation() {
        let mut m = AttentionMask::empty(8);
        for q in 0..8 {
            m.keep(q, q);
        }
        let r = reorder_global_tokens(&m, None);
        assert_eq!(r.num_global, 0);
        assert_eq!(r.perm, (0..8).collect::<Vec<_>>());
        assert_eq!(r.mask, m);
    }

    #[test]
    fn explicit_theta_d_is_respected() {
        let m = diag_plus_globals(10, &[4]);
        // Column 4 has 10 entries; diagonal columns have 1-2. With
        // theta_d = 10, nothing qualifies (strict >).
        let r = reorder_global_tokens(&m, Some(10));
        assert_eq!(r.num_global, 0);
        let r2 = reorder_global_tokens(&m, Some(5));
        assert_eq!(r2.num_global, 1);
        assert_eq!(r2.theta_d, 5);
    }

    #[test]
    fn polarization_improves_with_reordering() {
        let m = diag_plus_globals(32, &[7, 15, 23]);
        let r = reorder_global_tokens(&m, None);
        assert!(r.denser_density() > 0.9);
        assert!(r.sparser_density() < 0.15);
        assert!(r.polarization() > 0.75);
    }

    #[test]
    fn permutation_is_a_bijection() {
        let m = diag_plus_globals(20, &[1, 19, 10]);
        let r = reorder_global_tokens(&m, None);
        let mut seen = [false; 20];
        for &p in &r.perm {
            assert!(!seen[p], "duplicate index {p}");
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn nnz_is_preserved_by_reordering() {
        let m = diag_plus_globals(24, &[2, 13]);
        let r = reorder_global_tokens(&m, None);
        assert_eq!(r.mask.nnz(), m.nnz());
    }

    #[test]
    fn stable_order_within_groups() {
        let m = diag_plus_globals(12, &[8, 2, 5]); // globals at 2, 5, 8
        let r = reorder_global_tokens(&m, None);
        assert_eq!(&r.perm[..3], &[2, 5, 8], "globals keep ascending order");
        // Non-globals also ascend.
        let rest = &r.perm[3..];
        assert!(rest.windows(2).all(|w| w[0] < w[1]));
    }
}
