//! Pruning with fixed masks (Alg. 1, lines 1–6).

use vitcod_tensor::Matrix;

use crate::mask::AttentionMask;

/// Prunes an averaged, row-normalised attention map with the paper's
/// information-quantity criterion: per query row, keep the largest
/// attention scores (descending) until their cumulative sum reaches
/// `theta_p`, pruning the rest.
///
/// `theta_p` close to `1.0` keeps almost everything; lower values prune
/// more aggressively. Each row always keeps at least one position so no
/// query is left with an empty attention set.
///
/// # Panics
///
/// Panics if `a` is not square or `theta_p` is outside `(0, 1]`.
///
/// # Example
///
/// ```
/// use vitcod_core::prune_info;
/// use vitcod_tensor::Matrix;
///
/// // One dominant entry per row -> theta_p = 0.5 keeps only it.
/// let a = Matrix::from_rows(&[&[0.7, 0.2, 0.1], &[0.1, 0.8, 0.1], &[0.2, 0.1, 0.7]]);
/// let mask = prune_info(&a, 0.5);
/// assert_eq!(mask.nnz(), 3);
/// assert!(mask.is_kept(1, 1));
/// ```
pub fn prune_info(a: &Matrix, theta_p: f64) -> AttentionMask {
    assert_eq!(a.rows(), a.cols(), "attention maps are square");
    assert!(
        theta_p > 0.0 && theta_p <= 1.0,
        "theta_p must be in (0, 1], got {theta_p}"
    );
    let n = a.rows();
    let mut mask = AttentionMask::empty(n);
    for q in 0..n {
        let row = a.row(q);
        let total: f64 = row.iter().map(|&v| v as f64).sum();
        if total <= 0.0 {
            // Degenerate row: keep the diagonal so softmax stays defined.
            mask.keep(q, q);
            continue;
        }
        // Argsort(A) in descending order (Alg. 1, line 1).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| {
            row[j]
                .partial_cmp(&row[i])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut cum = 0.0f64;
        for (rank, &k) in order.iter().enumerate() {
            mask.keep(q, k);
            cum += row[k] as f64 / total;
            if cum >= theta_p && rank + 1 >= 1 {
                break;
            }
        }
    }
    mask
}

/// Prunes to an exact target sparsity ratio by keeping the globally
/// largest `(1 − sparsity) · n²` attention scores.
///
/// This is the controlled-sweep variant used for the paper's
/// {60, 70, 80, 90, 95}% sparsity experiments, where the independent
/// variable is the sparsity ratio itself rather than `θp`. Each row is
/// still guaranteed at least one kept position (the row maximum), so the
/// achieved sparsity can be marginally below the target for extreme
/// ratios.
///
/// # Panics
///
/// Panics if `a` is not square or `sparsity` is outside `[0, 1)`.
///
/// # Example
///
/// ```
/// use vitcod_core::prune_to_sparsity;
/// use vitcod_tensor::Matrix;
///
/// let a = Matrix::from_fn(10, 10, |r, c| if r == c { 1.0 } else { 0.01 });
/// let mask = prune_to_sparsity(&a, 0.9);
/// assert_eq!(mask.nnz(), 10); // exactly the diagonal survives
/// ```
pub fn prune_to_sparsity(a: &Matrix, sparsity: f64) -> AttentionMask {
    assert_eq!(a.rows(), a.cols(), "attention maps are square");
    assert!(
        (0.0..1.0).contains(&sparsity),
        "sparsity must be in [0, 1), got {sparsity}"
    );
    let n = a.rows();
    let keep_budget = (((n * n) as f64) * (1.0 - sparsity)).round().max(n as f64) as usize;

    // Global descending argsort of all entries.
    let mut order: Vec<(usize, usize)> = (0..n).flat_map(|q| (0..n).map(move |k| (q, k))).collect();
    order.sort_by(|&(q1, k1), &(q2, k2)| {
        a.get(q2, k2)
            .partial_cmp(&a.get(q1, k1))
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut mask = AttentionMask::empty(n);
    // Guarantee each row its maximum first.
    for q in 0..n {
        let row = a.row(q);
        let best = vitcod_tensor::argmax(row).unwrap_or(q);
        mask.keep(q, best);
    }
    let mut kept = mask.nnz();
    for &(q, k) in &order {
        if kept >= keep_budget {
            break;
        }
        if !mask.is_kept(q, k) {
            mask.keep(q, k);
            kept += 1;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diagonal_heavy(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |r, c| {
            let d = (r as f32 - c as f32).abs();
            (-d * d / 2.0).exp()
        })
        .softmax_rows()
    }

    #[test]
    fn prune_info_theta_one_keeps_everything_nonzero() {
        let a = diagonal_heavy(8);
        let mask = prune_info(&a, 1.0);
        assert_eq!(mask.nnz(), 64);
    }

    #[test]
    fn prune_info_monotone_in_theta() {
        let a = diagonal_heavy(16);
        let mut prev = 0;
        for theta in [0.2, 0.4, 0.6, 0.8, 0.95] {
            let nnz = prune_info(&a, theta).nnz();
            assert!(nnz >= prev, "nnz must grow with theta_p");
            prev = nnz;
        }
    }

    #[test]
    fn prune_info_keeps_at_least_one_per_row() {
        let a = diagonal_heavy(12);
        let mask = prune_info(&a, 0.05);
        assert!(mask.row_nnz().iter().all(|&c| c >= 1));
    }

    #[test]
    fn prune_info_retains_requested_information() {
        let a = diagonal_heavy(20);
        for theta in [0.3f64, 0.6, 0.9] {
            let mask = prune_info(&a, theta);
            // Per-row cumulative mass >= theta, so global retention too.
            assert!(
                mask.retained_information(&a) >= theta - 1e-5,
                "theta {theta}: retained {}",
                mask.retained_information(&a)
            );
        }
    }

    #[test]
    fn prune_info_handles_zero_rows() {
        let mut a = diagonal_heavy(4);
        for c in 0..4 {
            a.set(2, c, 0.0);
        }
        let mask = prune_info(&a, 0.9);
        assert!(mask.is_kept(2, 2), "zero row falls back to diagonal");
    }

    #[test]
    fn prune_to_sparsity_hits_target() {
        let a = diagonal_heavy(32);
        for s in [0.5, 0.7, 0.9] {
            let mask = prune_to_sparsity(&a, s);
            assert!(
                (mask.sparsity() - s).abs() < 0.02,
                "target {s} got {}",
                mask.sparsity()
            );
        }
    }

    #[test]
    fn prune_to_sparsity_prefers_large_entries() {
        let a = diagonal_heavy(16);
        let mask = prune_to_sparsity(&a, 0.9);
        // Diagonal is the largest entry of each row; it must survive.
        for i in 0..16 {
            assert!(mask.is_kept(i, i), "diagonal ({i},{i}) pruned");
        }
    }

    #[test]
    fn prune_to_sparsity_zero_keeps_all() {
        let a = diagonal_heavy(6);
        assert_eq!(prune_to_sparsity(&a, 0.0).nnz(), 36);
    }

    #[test]
    #[should_panic(expected = "sparsity")]
    fn prune_to_sparsity_rejects_one() {
        prune_to_sparsity(&diagonal_heavy(4), 1.0);
    }

    #[test]
    #[should_panic(expected = "theta_p")]
    fn prune_info_rejects_zero_theta() {
        prune_info(&diagonal_heavy(4), 0.0);
    }
}
