//! Sparse index formats for the accelerator's sparser engine.
//!
//! The ViTCoD accelerator pre-loads the fixed sparse attention indexes in
//! **CSC** (compressed sparse column) form, which matches its
//! K-stationary dataflow: the SDDMM produces attention scores column by
//! column, so walking one CSC column enumerates exactly the Q rows that
//! pair with the currently-resident K vector (paper Sec. V-B).
//!
//! The [`CscMatrix`] structure itself (and the SDDMM/SpMM kernels that
//! execute over it) lives in [`vitcod_tensor::sparse`], the workspace's
//! sparse kernel layer; this module binds it to [`AttentionMask`] via
//! the [`SparsityPattern`] trait so `CscMatrix::from_mask(&mask)` works
//! on the algorithm side, and keeps the COO comparison format.
//!
//! ```
//! use vitcod_core::{AttentionMask, CscMatrix};
//!
//! let mut m = AttentionMask::empty(3);
//! m.keep(0, 1);
//! m.keep(2, 1);
//! let csc = CscMatrix::from_mask(&m);
//! assert_eq!(csc.col_rows(1), &[0, 2]);
//! assert_eq!(csc.nnz(), 2);
//! ```

pub use vitcod_tensor::sparse::{CscMatrix, SparsityPattern};

use crate::mask::AttentionMask;

impl SparsityPattern for AttentionMask {
    fn size(&self) -> usize {
        AttentionMask::size(self)
    }

    fn is_kept(&self, q: usize, k: usize) -> bool {
        AttentionMask::is_kept(self, q, k)
    }
}

/// Coordinate-format index (the rejected design alternative; kept for the
/// paper's CSC-vs-COO storage comparison).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CooMatrix {
    n: usize,
    /// `(row, col)` coordinates of non-zeros.
    coords: Vec<(u32, u32)>,
}

impl CooMatrix {
    /// Builds the COO index of `mask` in row-major order.
    pub fn from_mask(mask: &AttentionMask) -> Self {
        let coords = mask
            .iter_kept()
            .map(|(q, k)| (q as u32, k as u32))
            .collect();
        Self {
            n: mask.size(),
            coords,
        }
    }

    /// Token count `n`.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.coords.len()
    }

    /// `(row, col)` coordinate list.
    pub fn coords(&self) -> &[(u32, u32)] {
        &self.coords
    }

    /// Bytes needed: two 4-byte coordinates per non-zero — always at
    /// least as large as CSC for the same mask once `nnz ≥ n + 1`.
    pub fn index_bytes(&self) -> usize {
        self.coords.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mask() -> AttentionMask {
        let mut m = AttentionMask::empty(5);
        for q in 0..5 {
            m.keep(q, q);
            m.keep(q, 0);
        }
        m.keep(1, 4);
        m
    }

    #[test]
    fn csc_round_trip() {
        let m = sample_mask();
        let csc = CscMatrix::from_mask(&m);
        assert_eq!(AttentionMask::from_csc(&csc), m);
        assert_eq!(csc.nnz(), m.nnz());
    }

    #[test]
    fn csc_columns_ascending() {
        let csc = CscMatrix::from_mask(&sample_mask());
        for k in 0..5 {
            let rows = csc.col_rows(k);
            assert!(
                rows.windows(2).all(|w| w[0] < w[1]),
                "column {k} not sorted"
            );
        }
    }

    #[test]
    fn csc_column_zero_is_global() {
        let csc = CscMatrix::from_mask(&sample_mask());
        assert_eq!(csc.col_nnz(0), 5);
        assert_eq!(csc.col_rows(0), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_and_dense_extremes() {
        let e = CscMatrix::from_mask(&AttentionMask::empty(4));
        assert_eq!(e.nnz(), 0);
        for k in 0..4 {
            assert!(e.col_rows(k).is_empty());
        }
        let d = CscMatrix::from_mask(&AttentionMask::dense(4));
        assert_eq!(d.nnz(), 16);
    }

    #[test]
    fn coo_matches_mask_iteration() {
        let m = sample_mask();
        let coo = CooMatrix::from_mask(&m);
        assert_eq!(coo.nnz(), m.nnz());
        for &(q, k) in coo.coords() {
            assert!(m.is_kept(q as usize, k as usize));
        }
    }

    #[test]
    fn csc_beats_coo_storage_on_sparse_masks() {
        // 90 % sparse 64-token mask.
        let mut m = AttentionMask::empty(64);
        for q in 0..64 {
            m.keep(q, q);
            m.keep(q, 0);
            m.keep(q, (q + 1) % 64);
            m.keep(q, (q + 63) % 64);
            m.keep(q, 32);
            m.keep(q, 17);
        }
        let csc = CscMatrix::from_mask(&m);
        let coo = CooMatrix::from_mask(&m);
        assert!(
            csc.index_bytes() < coo.index_bytes(),
            "csc {} vs coo {}",
            csc.index_bytes(),
            coo.index_bytes()
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn csc_col_out_of_bounds_panics() {
        CscMatrix::from_mask(&AttentionMask::empty(2)).col_rows(2);
    }
}
