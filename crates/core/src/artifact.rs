//! Serialization of compiled accelerator programs.
//!
//! The paper's interface pipeline (Fig. 14) compiles a sparse ViT once
//! and amortizes the cost "across the execution lifetime of each task".
//! That implies a durable artifact: this module defines a versioned,
//! line-oriented text format for [`AcceleratorProgram`]s so a compiled
//! model can be written to disk and reloaded without re-running the
//! split-and-conquer pass.
//!
//! The format is deliberately plain text (diff-able, inspectable, no
//! external dependencies):
//!
//! ```text
//! vitcod-program v1
//! model DeiT-Base
//! tokens 197
//! head_dim 64
//! heads 12
//! ae 12 6
//! layer 0 12
//! head 5 985 2891 0,3,1,...   # num_global denser_nnz sparser_nnz col_nnz
//! ...
//! end
//! ```

use std::error::Error;
use std::fmt;

use crate::autoencoder::AutoEncoderConfig;
use crate::interface::{AcceleratorProgram, LayerProgram, PhaseWorkload};

/// Error produced when parsing a serialized program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArtifactError {
    line: usize,
    message: String,
}

impl ParseArtifactError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number where parsing failed.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid program artifact at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseArtifactError {}

/// Serializes a compiled program to the versioned text format.
///
/// # Example
///
/// ```
/// use vitcod_core::{compile_model, load_program, save_program,
///                   SplitConquer, SplitConquerConfig};
/// use vitcod_model::{AttentionStats, ViTConfig};
///
/// let cfg = ViTConfig::deit_tiny();
/// let stats = AttentionStats::for_model(&cfg, 1);
/// let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
/// let program = compile_model(&cfg, &sc.apply(&stats.maps), None);
/// let text = save_program(&program);
/// let restored = load_program(&text).unwrap();
/// assert_eq!(restored.total_macs(), program.total_macs());
/// ```
pub fn save_program(program: &AcceleratorProgram) -> String {
    let mut out = String::new();
    out.push_str("vitcod-program v1\n");
    out.push_str(&format!("model {}\n", program.model));
    out.push_str(&format!("tokens {}\n", program.tokens));
    out.push_str(&format!("head_dim {}\n", program.head_dim));
    out.push_str(&format!("heads {}\n", program.heads));
    if let Some(ae) = program.auto_encoder {
        out.push_str(&format!("ae {} {}\n", ae.heads(), ae.compressed_heads()));
    }
    for layer in &program.layers {
        out.push_str(&format!("layer {} {}\n", layer.layer, layer.heads.len()));
        for h in &layer.heads {
            let cols: Vec<String> = h.sparser_col_nnz.iter().map(|c| c.to_string()).collect();
            out.push_str(&format!(
                "head {} {} {} {}\n",
                h.num_global,
                h.denser_nnz,
                h.sparser_nnz,
                cols.join(",")
            ));
        }
    }
    out.push_str("end\n");
    out
}

/// Parses a program previously written by [`save_program`].
///
/// # Errors
///
/// Returns [`ParseArtifactError`] on version mismatch, truncation, or
/// malformed fields; the error carries the offending line number.
pub fn load_program(text: &str) -> Result<AcceleratorProgram, ParseArtifactError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let err = |line: usize, msg: &str| ParseArtifactError::new(line, msg);

    let (ln, header) = lines.next().ok_or_else(|| err(1, "empty artifact"))?;
    if header != "vitcod-program v1" {
        return Err(err(ln, "unsupported header (expected 'vitcod-program v1')"));
    }

    let mut model = None;
    let mut tokens = None;
    let mut head_dim = None;
    let mut heads = None;
    let mut ae = None;
    let mut layers: Vec<LayerProgram> = Vec::new();
    let mut pending_heads: usize = 0;
    let mut saw_end = false;

    for (ln, line) in lines {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().unwrap_or("");
        match tag {
            "model" => {
                model = Some(parts.collect::<Vec<_>>().join(" "));
            }
            "tokens" => tokens = Some(parse_usize(&mut parts, ln, "tokens")?),
            "head_dim" => head_dim = Some(parse_usize(&mut parts, ln, "head_dim")?),
            "heads" => heads = Some(parse_usize(&mut parts, ln, "heads")?),
            "ae" => {
                let h = parse_usize(&mut parts, ln, "ae heads")?;
                let c = parse_usize(&mut parts, ln, "ae compressed")?;
                if c == 0 || c > h {
                    return Err(err(ln, "ae compressed heads out of range"));
                }
                ae = Some(AutoEncoderConfig::new(h, c));
            }
            "layer" => {
                if pending_heads != 0 {
                    return Err(err(ln, "previous layer is missing head records"));
                }
                let idx = parse_usize(&mut parts, ln, "layer index")?;
                pending_heads = parse_usize(&mut parts, ln, "layer head count")?;
                layers.push(LayerProgram {
                    layer: idx,
                    heads: Vec::with_capacity(pending_heads),
                });
            }
            "head" => {
                let layer = layers
                    .last_mut()
                    .ok_or_else(|| err(ln, "head record before any layer"))?;
                if pending_heads == 0 {
                    return Err(err(ln, "more head records than declared"));
                }
                let num_global = parse_usize(&mut parts, ln, "num_global")?;
                let denser_nnz = parse_usize(&mut parts, ln, "denser_nnz")?;
                let sparser_nnz = parse_usize(&mut parts, ln, "sparser_nnz")?;
                let cols_field = parts.next().unwrap_or("");
                let sparser_col_nnz: Vec<usize> = if cols_field.is_empty() {
                    Vec::new()
                } else {
                    cols_field
                        .split(',')
                        .map(|c| {
                            c.parse::<usize>()
                                .map_err(|_| err(ln, "malformed col_nnz list"))
                        })
                        .collect::<Result<_, _>>()?
                };
                let n = tokens.ok_or_else(|| err(ln, "head record before tokens"))?;
                let dk = head_dim.ok_or_else(|| err(ln, "head record before head_dim"))?;
                if sparser_col_nnz.iter().sum::<usize>() != sparser_nnz {
                    return Err(err(ln, "col_nnz sum disagrees with sparser_nnz"));
                }
                layer.heads.push(PhaseWorkload {
                    tokens: n,
                    head_dim: dk,
                    num_global,
                    denser_nnz,
                    sparser_nnz,
                    sparser_col_nnz,
                });
                pending_heads -= 1;
            }
            "end" => {
                saw_end = true;
                break;
            }
            other => return Err(err(ln, &format!("unknown record '{other}'"))),
        }
    }
    if !saw_end {
        return Err(ParseArtifactError::new(
            text.lines().count(),
            "missing 'end' terminator (truncated artifact?)",
        ));
    }
    if pending_heads != 0 {
        return Err(ParseArtifactError::new(
            text.lines().count(),
            "last layer is missing head records",
        ));
    }
    Ok(AcceleratorProgram {
        model: model.ok_or_else(|| err(0, "missing 'model'"))?,
        tokens: tokens.ok_or_else(|| err(0, "missing 'tokens'"))?,
        head_dim: head_dim.ok_or_else(|| err(0, "missing 'head_dim'"))?,
        heads: heads.ok_or_else(|| err(0, "missing 'heads'"))?,
        layers,
        auto_encoder: ae,
    })
}

fn parse_usize<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    field: &str,
) -> Result<usize, ParseArtifactError> {
    parts
        .next()
        .ok_or_else(|| ParseArtifactError::new(line, format!("missing {field}")))?
        .parse::<usize>()
        .map_err(|_| ParseArtifactError::new(line, format!("malformed {field}")))
}

/// Serializes a set of fixed attention masks (the *training-side*
/// artifact: what finetuning and deployment share) as run-length-encoded
/// rows. Masks are `[layer][head]`, as produced by
/// [`crate::SplitConquer::apply`].
///
/// Format:
///
/// ```text
/// vitcod-masks v1
/// size 197
/// mask 0 0            # layer, head
/// 3k2p5k...           # per row: alternating keep/prune run lengths
/// ...
/// end
/// ```
pub fn save_masks(masks: &[Vec<crate::AttentionMask>]) -> String {
    let mut out = String::from("vitcod-masks v1\n");
    let n = masks
        .first()
        .and_then(|l| l.first())
        .map(|m| m.size())
        .unwrap_or(0);
    out.push_str(&format!("size {n}\n"));
    for (l, layer) in masks.iter().enumerate() {
        for (h, mask) in layer.iter().enumerate() {
            out.push_str(&format!("mask {l} {h}\n"));
            for q in 0..n {
                let mut row = String::new();
                let mut run_kept = true; // rows start with a (possibly 0) keep run
                let mut run_len = 0usize;
                for k in 0..n {
                    let kept = mask.is_kept(q, k);
                    if kept == run_kept {
                        run_len += 1;
                    } else {
                        row.push_str(&format!("{run_len}{}", if run_kept { 'k' } else { 'p' }));
                        run_kept = kept;
                        run_len = 1;
                    }
                }
                row.push_str(&format!("{run_len}{}", if run_kept { 'k' } else { 'p' }));
                out.push_str(&row);
                out.push('\n');
            }
        }
    }
    out.push_str("end\n");
    out
}

/// Parses masks written by [`save_masks`].
///
/// # Errors
///
/// Returns [`ParseArtifactError`] on malformed input, wrong row lengths
/// or a missing terminator.
pub fn load_masks(text: &str) -> Result<Vec<Vec<crate::AttentionMask>>, ParseArtifactError> {
    use crate::AttentionMask;
    let err = ParseArtifactError::new;
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let (ln, header) = lines
        .next()
        .ok_or_else(|| err(1, "empty artifact".into()))?;
    if header != "vitcod-masks v1" {
        return Err(err(ln, "unsupported header".into()));
    }
    let (ln, size_line) = lines.next().ok_or_else(|| err(2, "missing size".into()))?;
    let n: usize = size_line
        .strip_prefix("size ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(ln, "malformed size".into()))?;

    let mut out: Vec<Vec<AttentionMask>> = Vec::new();
    let mut current: Option<(usize, AttentionMask, usize)> = None; // (layer, mask, next row)
    let mut saw_end = false;
    for (ln, line) in lines {
        if line.is_empty() {
            continue;
        }
        if line == "end" {
            saw_end = true;
            break;
        }
        if let Some(rest) = line.strip_prefix("mask ") {
            if let Some((_, mask, rows)) = current.take() {
                if rows != n {
                    return Err(err(ln, "previous mask has missing rows".into()));
                }
                out.last_mut().expect("layer exists").push(mask);
            }
            let mut parts = rest.split_whitespace();
            let layer: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(ln, "malformed mask layer".into()))?;
            let _head: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(ln, "malformed mask head".into()))?;
            while out.len() <= layer {
                out.push(Vec::new());
            }
            current = Some((layer, AttentionMask::empty(n), 0));
            continue;
        }
        // RLE row.
        let (_, mask, row) = current
            .as_mut()
            .ok_or_else(|| err(ln, "row data before any mask record".into()))?;
        if *row >= n {
            return Err(err(ln, "too many rows for mask".into()));
        }
        let mut col = 0usize;
        let mut num = 0usize;
        for ch in line.chars() {
            match ch {
                '0'..='9' => num = num * 10 + (ch as usize - '0' as usize),
                'k' | 'p' => {
                    if col + num > n {
                        return Err(err(ln, "run exceeds row width".into()));
                    }
                    if ch == 'k' {
                        for k in col..col + num {
                            mask.keep(*row, k);
                        }
                    }
                    col += num;
                    num = 0;
                }
                other => {
                    return Err(err(
                        ln,
                        format!("unexpected character '{other}' in RLE row"),
                    ))
                }
            }
        }
        if col != n {
            return Err(err(ln, "row runs do not cover the full width".into()));
        }
        *row += 1;
    }
    if let Some((_, mask, rows)) = current.take() {
        if rows != n {
            return Err(ParseArtifactError::new(0, "last mask truncated"));
        }
        out.last_mut().expect("layer exists").push(mask);
    }
    if !saw_end {
        return Err(ParseArtifactError::new(
            text.lines().count(),
            "missing 'end' terminator",
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile_model, SplitConquer, SplitConquerConfig};
    use vitcod_model::{AttentionStats, ViTConfig};

    fn sample_program(ae: bool) -> AcceleratorProgram {
        let cfg = ViTConfig::deit_tiny();
        let stats = AttentionStats::for_model(&cfg, 77);
        let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
        let ae_cfg = ae.then(|| AutoEncoderConfig::half(cfg.heads));
        compile_model(&cfg, &sc.apply(&stats.maps), ae_cfg)
    }

    #[test]
    fn round_trip_preserves_everything() {
        for ae in [false, true] {
            let p = sample_program(ae);
            let restored = load_program(&save_program(&p)).unwrap();
            assert_eq!(restored.model, p.model);
            assert_eq!(restored.tokens, p.tokens);
            assert_eq!(restored.head_dim, p.head_dim);
            assert_eq!(restored.heads, p.heads);
            assert_eq!(restored.auto_encoder, p.auto_encoder);
            assert_eq!(restored.layers.len(), p.layers.len());
            assert_eq!(restored.total_macs(), p.total_macs());
            assert_eq!(restored.overall_sparsity(), p.overall_sparsity());
            for (la, lb) in restored.layers.iter().zip(p.layers.iter()) {
                assert_eq!(la.layer, lb.layer);
                for (ha, hb) in la.heads.iter().zip(lb.heads.iter()) {
                    assert_eq!(ha.num_global, hb.num_global);
                    assert_eq!(ha.sparser_col_nnz, hb.sparser_col_nnz);
                }
            }
        }
    }

    #[test]
    fn rejects_wrong_header() {
        let e = load_program("vitcod-program v9\nend\n").unwrap_err();
        assert_eq!(e.line(), 1);
        assert!(e.to_string().contains("unsupported header"));
    }

    #[test]
    fn rejects_truncation() {
        let p = sample_program(false);
        let text = save_program(&p);
        let truncated = &text[..text.len() / 2];
        // Truncation must be rejected — either as a missing terminator
        // or because the cut line fails a consistency check.
        assert!(load_program(truncated).is_err());
        // Clean truncation at a line boundary reports the terminator.
        let lines: Vec<&str> = text.lines().collect();
        let clean_cut = lines[..lines.len() / 2].join("\n");
        let e = load_program(&clean_cut).unwrap_err();
        let msg = e.to_string();
        assert!(
            msg.contains("truncated") || msg.contains("missing"),
            "unexpected message: {msg}"
        );
    }

    #[test]
    fn rejects_inconsistent_col_nnz() {
        let text = "vitcod-program v1\nmodel X\ntokens 4\nhead_dim 2\nheads 1\nlayer 0 1\nhead 1 4 5 1,1\nend\n";
        let e = load_program(text).unwrap_err();
        assert!(e.to_string().contains("col_nnz sum"));
    }

    #[test]
    fn rejects_unknown_record() {
        let text = "vitcod-program v1\nbogus 1\nend\n";
        let e = load_program(text).unwrap_err();
        assert!(e.to_string().contains("unknown record"));
        assert_eq!(e.line(), 2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = sample_program(false);
        let text = save_program(&p).replace("layer 0", "# a comment\n\nlayer 0");
        assert!(load_program(&text).is_ok());
    }

    #[test]
    fn masks_round_trip_through_rle() {
        let cfg = ViTConfig::deit_tiny();
        let stats = AttentionStats::for_model(&cfg, 5);
        let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
        let heads = sc.apply(&stats.maps);
        let masks: Vec<Vec<crate::AttentionMask>> = heads
            .iter()
            .map(|l| l.iter().map(|h| h.pruned.clone()).collect())
            .collect();
        let text = save_masks(&masks);
        let restored = load_masks(&text).unwrap();
        assert_eq!(restored.len(), masks.len());
        for (la, lb) in restored.iter().zip(masks.iter()) {
            assert_eq!(la.len(), lb.len());
            for (a, b) in la.iter().zip(lb.iter()) {
                assert_eq!(a, b);
            }
        }
        // RLE should compress the 90%-sparse masks well below one byte
        // per position.
        let positions = 12 * 3 * 197 * 197;
        assert!(text.len() < positions / 2, "RLE too large: {}", text.len());
    }

    #[test]
    fn mask_artifact_rejects_bad_rows() {
        let text = "vitcod-masks v1\nsize 4\nmask 0 0\n2k2p\n2k2p\n2k2p\n3k\nend\n";
        let e = load_masks(text).unwrap_err();
        assert!(e.to_string().contains("cover the full width"));
        let text2 = "vitcod-masks v1\nsize 2\nmask 0 0\n2k\n1k1x\nend\n";
        assert!(load_masks(text2).is_err());
    }

    #[test]
    fn mask_artifact_requires_terminator() {
        let text = "vitcod-masks v1\nsize 2\nmask 0 0\n2k\n2p\n";
        let e = load_masks(text).unwrap_err();
        assert!(e.to_string().contains("terminator"));
    }

    #[test]
    fn empty_mask_set_round_trips() {
        let text = save_masks(&[]);
        let restored = load_masks(&text).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn simulates_identically_after_round_trip() {
        let p = sample_program(true);
        let restored = load_program(&save_program(&p)).unwrap();
        // Structural identity implies identical simulation; verify the
        // workload numbers the simulator keys on.
        for (la, lb) in restored.layers.iter().zip(p.layers.iter()) {
            assert_eq!(la.total_macs(), lb.total_macs());
            assert_eq!(la.mean_global_tokens(), lb.mean_global_tokens());
        }
    }
}
