//! Serialization of compiled accelerator programs.
//!
//! The paper's interface pipeline (Fig. 14) compiles a sparse ViT once
//! and amortizes the cost "across the execution lifetime of each task".
//! That implies a durable artifact: this module defines a versioned,
//! line-oriented text format for [`AcceleratorProgram`]s so a compiled
//! model can be written to disk and reloaded without re-running the
//! split-and-conquer pass.
//!
//! The format is deliberately plain text (diff-able, inspectable, no
//! external dependencies):
//!
//! ```text
//! vitcod-program v1
//! model DeiT-Base
//! tokens 197
//! head_dim 64
//! heads 12
//! ae 12 6
//! layer 0 12
//! head 5 985 2891 0,3,1,...   # num_global denser_nnz sparser_nnz col_nnz
//! ...
//! end
//! ```

use std::error::Error;
use std::fmt;

use vitcod_tensor::Matrix;

use crate::autoencoder::AutoEncoderConfig;
use crate::formats::CscMatrix;
use crate::interface::{AcceleratorProgram, LayerProgram, PhaseWorkload};

/// Error produced when parsing a serialized program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArtifactError {
    line: usize,
    message: String,
}

impl ParseArtifactError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number where parsing failed.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid program artifact at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseArtifactError {}

/// Serializes a compiled program to the versioned text format.
///
/// # Example
///
/// ```
/// use vitcod_core::{compile_model, load_program, save_program,
///                   SplitConquer, SplitConquerConfig};
/// use vitcod_model::{AttentionStats, ViTConfig};
///
/// let cfg = ViTConfig::deit_tiny();
/// let stats = AttentionStats::for_model(&cfg, 1);
/// let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
/// let program = compile_model(&cfg, &sc.apply(&stats.maps), None);
/// let text = save_program(&program);
/// let restored = load_program(&text).unwrap();
/// assert_eq!(restored.total_macs(), program.total_macs());
/// ```
pub fn save_program(program: &AcceleratorProgram) -> String {
    let mut out = String::new();
    out.push_str("vitcod-program v1\n");
    out.push_str(&format!("model {}\n", program.model));
    out.push_str(&format!("tokens {}\n", program.tokens));
    out.push_str(&format!("head_dim {}\n", program.head_dim));
    out.push_str(&format!("heads {}\n", program.heads));
    if let Some(ae) = program.auto_encoder {
        out.push_str(&format!("ae {} {}\n", ae.heads(), ae.compressed_heads()));
    }
    for layer in &program.layers {
        out.push_str(&format!("layer {} {}\n", layer.layer, layer.heads.len()));
        for h in &layer.heads {
            let cols: Vec<String> = h.sparser_col_nnz.iter().map(|c| c.to_string()).collect();
            out.push_str(&format!(
                "head {} {} {} {}\n",
                h.num_global,
                h.denser_nnz,
                h.sparser_nnz,
                cols.join(",")
            ));
        }
    }
    out.push_str("end\n");
    out
}

/// Parses a program previously written by [`save_program`].
///
/// # Errors
///
/// Returns [`ParseArtifactError`] on version mismatch, truncation, or
/// malformed fields; the error carries the offending line number.
pub fn load_program(text: &str) -> Result<AcceleratorProgram, ParseArtifactError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let err = |line: usize, msg: &str| ParseArtifactError::new(line, msg);

    let (ln, header) = lines.next().ok_or_else(|| err(1, "empty artifact"))?;
    if header != "vitcod-program v1" {
        return Err(err(ln, "unsupported header (expected 'vitcod-program v1')"));
    }

    let mut model = None;
    let mut tokens = None;
    let mut head_dim = None;
    let mut heads = None;
    let mut ae = None;
    let mut layers: Vec<LayerProgram> = Vec::new();
    let mut pending_heads: usize = 0;
    let mut saw_end = false;

    for (ln, line) in lines {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().unwrap_or("");
        match tag {
            "model" => {
                model = Some(parts.collect::<Vec<_>>().join(" "));
            }
            "tokens" => tokens = Some(parse_usize(&mut parts, ln, "tokens")?),
            "head_dim" => head_dim = Some(parse_usize(&mut parts, ln, "head_dim")?),
            "heads" => heads = Some(parse_usize(&mut parts, ln, "heads")?),
            "ae" => {
                let h = parse_usize(&mut parts, ln, "ae heads")?;
                let c = parse_usize(&mut parts, ln, "ae compressed")?;
                if c == 0 || c > h {
                    return Err(err(ln, "ae compressed heads out of range"));
                }
                ae = Some(AutoEncoderConfig::new(h, c));
            }
            "layer" => {
                if pending_heads != 0 {
                    return Err(err(ln, "previous layer is missing head records"));
                }
                let idx = parse_usize(&mut parts, ln, "layer index")?;
                pending_heads = parse_usize(&mut parts, ln, "layer head count")?;
                layers.push(LayerProgram {
                    layer: idx,
                    heads: Vec::with_capacity(pending_heads),
                });
            }
            "head" => {
                let layer = layers
                    .last_mut()
                    .ok_or_else(|| err(ln, "head record before any layer"))?;
                if pending_heads == 0 {
                    return Err(err(ln, "more head records than declared"));
                }
                let num_global = parse_usize(&mut parts, ln, "num_global")?;
                let denser_nnz = parse_usize(&mut parts, ln, "denser_nnz")?;
                let sparser_nnz = parse_usize(&mut parts, ln, "sparser_nnz")?;
                let cols_field = parts.next().unwrap_or("");
                let sparser_col_nnz: Vec<usize> = if cols_field.is_empty() {
                    Vec::new()
                } else {
                    cols_field
                        .split(',')
                        .map(|c| {
                            c.parse::<usize>()
                                .map_err(|_| err(ln, "malformed col_nnz list"))
                        })
                        .collect::<Result<_, _>>()?
                };
                let n = tokens.ok_or_else(|| err(ln, "head record before tokens"))?;
                let dk = head_dim.ok_or_else(|| err(ln, "head record before head_dim"))?;
                if sparser_col_nnz.iter().sum::<usize>() != sparser_nnz {
                    return Err(err(ln, "col_nnz sum disagrees with sparser_nnz"));
                }
                layer.heads.push(PhaseWorkload {
                    tokens: n,
                    head_dim: dk,
                    num_global,
                    denser_nnz,
                    sparser_nnz,
                    sparser_col_nnz,
                });
                pending_heads -= 1;
            }
            "end" => {
                saw_end = true;
                break;
            }
            other => return Err(err(ln, &format!("unknown record '{other}'"))),
        }
    }
    if !saw_end {
        return Err(ParseArtifactError::new(
            text.lines().count(),
            "missing 'end' terminator (truncated artifact?)",
        ));
    }
    if pending_heads != 0 {
        return Err(ParseArtifactError::new(
            text.lines().count(),
            "last layer is missing head records",
        ));
    }
    Ok(AcceleratorProgram {
        model: model.ok_or_else(|| err(0, "missing 'model'"))?,
        tokens: tokens.ok_or_else(|| err(0, "missing 'tokens'"))?,
        head_dim: head_dim.ok_or_else(|| err(0, "missing 'head_dim'"))?,
        heads: heads.ok_or_else(|| err(0, "missing 'heads'"))?,
        layers,
        auto_encoder: ae,
    })
}

fn parse_usize<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    field: &str,
) -> Result<usize, ParseArtifactError> {
    parts
        .next()
        .ok_or_else(|| ParseArtifactError::new(line, format!("missing {field}")))?
        .parse::<usize>()
        .map_err(|_| ParseArtifactError::new(line, format!("malformed {field}")))
}

/// Serializes a set of fixed attention masks (the *training-side*
/// artifact: what finetuning and deployment share) as run-length-encoded
/// rows. Masks are `[layer][head]`, as produced by
/// [`crate::SplitConquer::apply`].
///
/// Format:
///
/// ```text
/// vitcod-masks v1
/// size 197
/// mask 0 0            # layer, head
/// 3k2p5k...           # per row: alternating keep/prune run lengths
/// ...
/// end
/// ```
pub fn save_masks(masks: &[Vec<crate::AttentionMask>]) -> String {
    let mut out = String::from("vitcod-masks v1\n");
    let n = masks
        .first()
        .and_then(|l| l.first())
        .map(|m| m.size())
        .unwrap_or(0);
    out.push_str(&format!("size {n}\n"));
    for (l, layer) in masks.iter().enumerate() {
        for (h, mask) in layer.iter().enumerate() {
            out.push_str(&format!("mask {l} {h}\n"));
            for q in 0..n {
                let mut row = String::new();
                let mut run_kept = true; // rows start with a (possibly 0) keep run
                let mut run_len = 0usize;
                for k in 0..n {
                    let kept = mask.is_kept(q, k);
                    if kept == run_kept {
                        run_len += 1;
                    } else {
                        row.push_str(&format!("{run_len}{}", if run_kept { 'k' } else { 'p' }));
                        run_kept = kept;
                        run_len = 1;
                    }
                }
                row.push_str(&format!("{run_len}{}", if run_kept { 'k' } else { 'p' }));
                out.push_str(&row);
                out.push('\n');
            }
        }
    }
    out.push_str("end\n");
    out
}

/// Parses masks written by [`save_masks`].
///
/// # Errors
///
/// Returns [`ParseArtifactError`] on malformed input, wrong row lengths
/// or a missing terminator.
pub fn load_masks(text: &str) -> Result<Vec<Vec<crate::AttentionMask>>, ParseArtifactError> {
    use crate::AttentionMask;
    let err = ParseArtifactError::new;
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let (ln, header) = lines
        .next()
        .ok_or_else(|| err(1, "empty artifact".into()))?;
    if header != "vitcod-masks v1" {
        return Err(err(ln, "unsupported header".into()));
    }
    let (ln, size_line) = lines.next().ok_or_else(|| err(2, "missing size".into()))?;
    let n: usize = size_line
        .strip_prefix("size ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(ln, "malformed size".into()))?;

    let mut out: Vec<Vec<AttentionMask>> = Vec::new();
    let mut current: Option<(usize, AttentionMask, usize)> = None; // (layer, mask, next row)
    let mut saw_end = false;
    for (ln, line) in lines {
        if line.is_empty() {
            continue;
        }
        if line == "end" {
            saw_end = true;
            break;
        }
        if let Some(rest) = line.strip_prefix("mask ") {
            if let Some((_, mask, rows)) = current.take() {
                if rows != n {
                    return Err(err(ln, "previous mask has missing rows".into()));
                }
                out.last_mut().expect("layer exists").push(mask);
            }
            let mut parts = rest.split_whitespace();
            let layer: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(ln, "malformed mask layer".into()))?;
            let _head: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(ln, "malformed mask head".into()))?;
            while out.len() <= layer {
                out.push(Vec::new());
            }
            current = Some((layer, AttentionMask::empty(n), 0));
            continue;
        }
        // RLE row.
        let (_, mask, row) = current
            .as_mut()
            .ok_or_else(|| err(ln, "row data before any mask record".into()))?;
        if *row >= n {
            return Err(err(ln, "too many rows for mask".into()));
        }
        let mut col = 0usize;
        let mut num = 0usize;
        for ch in line.chars() {
            match ch {
                '0'..='9' => num = num * 10 + (ch as usize - '0' as usize),
                'k' | 'p' => {
                    if col + num > n {
                        return Err(err(ln, "run exceeds row width".into()));
                    }
                    if ch == 'k' {
                        for k in col..col + num {
                            mask.keep(*row, k);
                        }
                    }
                    col += num;
                    num = 0;
                }
                other => {
                    return Err(err(
                        ln,
                        format!("unexpected character '{other}' in RLE row"),
                    ))
                }
            }
        }
        if col != n {
            return Err(err(ln, "row runs do not cover the full width".into()));
        }
        *row += 1;
    }
    if let Some((_, mask, rows)) = current.take() {
        if rows != n {
            return Err(ParseArtifactError::new(0, "last mask truncated"));
        }
        out.last_mut().expect("layer exists").push(mask);
    }
    if !saw_end {
        return Err(ParseArtifactError::new(
            text.lines().count(),
            "missing 'end' terminator",
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Compiled-model artifacts: the serving-side counterpart of
// `save_program`/`save_masks`. A `CompiledModelArtifact` is the
// format-level view of a frozen inference model — named weight tensors,
// configuration metadata, and one execution plan per attention head —
// that a `vitcod_engine::CompiledVit` lowers into and reconstructs from,
// so a compiled ViT can outlive its process.
// ---------------------------------------------------------------------------

/// One tensor's stored values.
///
/// fp32 payloads are written as the hexadecimal IEEE-754 bit patterns of
/// their elements, so a save → load round trip is **bit-exact** (NaN
/// payloads and signed zeros included). int8 payloads carry the raw i8
/// bytes plus their symmetric quantization scale (itself bit-exact), the
/// 1-byte-per-weight artifact the accelerator streams.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorPayload {
    /// Full-precision values, serialized bit-exactly.
    F32(Matrix),
    /// Symmetric 8-bit quantized values: `x ≈ scale · q`.
    I8 {
        /// Shape as `(rows, cols)`.
        shape: (usize, usize),
        /// Real value represented by one integer step (stored bit-exact).
        scale: f32,
        /// Row-major i8 payload, `rows · cols` long.
        data: Vec<i8>,
    },
}

impl TensorPayload {
    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            TensorPayload::F32(m) => m.shape(),
            TensorPayload::I8 { shape, .. } => *shape,
        }
    }

    /// The stored values as a dense fp32 matrix (int8 payloads are
    /// dequantized — exactly the values the serialized bytes represent).
    pub fn to_matrix(&self) -> Matrix {
        match self {
            TensorPayload::F32(m) => m.clone(),
            TensorPayload::I8 { shape, scale, data } => Matrix::from_vec(
                shape.0,
                shape.1,
                data.iter().map(|&q| q as f32 * scale).collect(),
            ),
        }
    }
}

/// A named tensor of a compiled model.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedTensor {
    /// Dotted-path name, e.g. `layer3.w_qkv`.
    pub name: String,
    /// Stored values.
    pub payload: TensorPayload,
}

/// One attention head's execution plan, as stored on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeadPlanRecord {
    /// Full dense attention.
    Dense,
    /// Fixed sparse attention over the stored CSC index.
    Sparse(CscMatrix),
}

/// The format-level record of a compiled inference model: ordered
/// configuration metadata, named weight tensors, and per-`[layer][head]`
/// execution plans.
///
/// This type is deliberately schema-free — the *engine* decides which
/// meta keys and tensor names a `CompiledVit` needs; the format only
/// guarantees lossless transport. Serialize with [`save_compiled`],
/// parse with [`load_compiled`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledModelArtifact {
    /// Ordered `(key, value)` configuration metadata.
    pub meta: Vec<(String, String)>,
    /// Named weight tensors.
    pub tensors: Vec<NamedTensor>,
    /// Per-layer, per-head execution plans.
    pub plans: Vec<Vec<HeadPlanRecord>>,
}

impl CompiledModelArtifact {
    /// Value of meta key `key`, if present.
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The tensor named `name`, if present.
    pub fn tensor(&self, name: &str) -> Option<&NamedTensor> {
        self.tensors.iter().find(|t| t.name == name)
    }

    /// Whether any tensor is stored as an int8 payload (i.e. the
    /// artifact was saved from a quantized serving plan).
    pub fn has_int8_tensors(&self) -> bool {
        self.tensors
            .iter()
            .any(|t| matches!(t.payload, TensorPayload::I8 { .. }))
    }
}

/// Serializes a compiled model to the versioned text format.
///
/// Layout (one record per line; tensor payloads span one line per row):
///
/// ```text
/// vitcod-compiled v1
/// meta model DeiT-Tiny
/// tensor f32 patch_w 8 16
/// 3f800000 40000000 ...          # one row: IEEE-754 bit patterns
/// tensor i8 layer0.w_qkv 16 48 3b23d70a
/// 127,-4,0,...                   # one row: raw i8 bytes
/// plans 2
/// layer 0 4                      # layer index, head count
/// head dense
/// head sparse 17 0,1;1,2;...     # CscMatrix::to_index_string
/// end
/// ```
///
/// fp32 values round-trip **bit-exactly** (hex bit patterns), which is
/// what lets a reloaded model reproduce its logits bit for bit. Meta
/// values round-trip verbatim (backslashes and line breaks are
/// escaped); meta *keys* must not contain whitespace.
///
/// # Panics
///
/// Panics if a meta key is empty or contains whitespace — the loader
/// could not split such a record back losslessly, so writing it would
/// silently corrupt the artifact.
pub fn save_compiled(artifact: &CompiledModelArtifact) -> String {
    let mut out = String::from("vitcod-compiled v1\n");
    for (k, v) in &artifact.meta {
        assert!(
            !k.is_empty() && !k.chars().any(char::is_whitespace),
            "meta key {k:?} must be non-empty and whitespace-free"
        );
        out.push_str(&format!("meta {k} {}\n", escape_meta(v)));
    }
    for t in &artifact.tensors {
        match &t.payload {
            TensorPayload::F32(m) => {
                out.push_str(&format!(
                    "tensor f32 {} {} {}\n",
                    t.name,
                    m.rows(),
                    m.cols()
                ));
                for r in 0..m.rows() {
                    let row: Vec<String> = m
                        .row(r)
                        .iter()
                        .map(|v| format!("{:08x}", v.to_bits()))
                        .collect();
                    out.push_str(&row.join(" "));
                    out.push('\n');
                }
            }
            TensorPayload::I8 { shape, scale, data } => {
                out.push_str(&format!(
                    "tensor i8 {} {} {} {:08x}\n",
                    t.name,
                    shape.0,
                    shape.1,
                    scale.to_bits()
                ));
                for r in 0..shape.0 {
                    let row: Vec<String> = data[r * shape.1..(r + 1) * shape.1]
                        .iter()
                        .map(|b| b.to_string())
                        .collect();
                    out.push_str(&row.join(","));
                    out.push('\n');
                }
            }
        }
    }
    out.push_str(&format!("plans {}\n", artifact.plans.len()));
    for (l, layer) in artifact.plans.iter().enumerate() {
        // Head counts are declared per layer, so ragged plan sets
        // transport losslessly too.
        out.push_str(&format!("layer {l} {}\n", layer.len()));
        for head in layer {
            match head {
                HeadPlanRecord::Dense => out.push_str("head dense\n"),
                HeadPlanRecord::Sparse(csc) => {
                    out.push_str(&format!(
                        "head sparse {} {}\n",
                        csc.size(),
                        csc.to_index_string()
                    ));
                }
            }
        }
    }
    out.push_str("end\n");
    out
}

/// Parses a compiled model written by [`save_compiled`].
///
/// # Errors
///
/// Returns [`ParseArtifactError`] — carrying the offending 1-based line
/// number — on version mismatch, truncation, malformed numbers, wrong
/// payload widths, or inconsistent plan counts.
pub fn load_compiled(text: &str) -> Result<CompiledModelArtifact, ParseArtifactError> {
    let err = |line: usize, msg: String| ParseArtifactError::new(line, msg);
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l)).peekable();

    let (ln, header) = lines
        .next()
        .ok_or_else(|| err(1, "empty artifact".into()))?;
    if header.trim() != "vitcod-compiled v1" {
        return Err(err(
            ln,
            "unsupported header (expected 'vitcod-compiled v1')".into(),
        ));
    }

    let mut artifact = CompiledModelArtifact::default();
    let mut declared_layers: Option<usize> = None;
    let mut declared_heads: Vec<usize> = Vec::new();
    let mut saw_end = false;
    let mut last_line = 1;

    while let Some((ln, raw)) = lines.next() {
        last_line = ln;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next().unwrap_or("") {
            "meta" => {
                // Values are taken verbatim from the raw line (not the
                // whitespace-split parts) so interior spacing survives;
                // escape_meta keeps them single-line.
                let rest = raw
                    .trim_start()
                    .trim_end_matches('\r')
                    .strip_prefix("meta ")
                    .ok_or_else(|| err(ln, "meta record missing key".into()))?;
                let (key, value) = rest.split_once(' ').unwrap_or((rest, ""));
                if key.is_empty() {
                    return Err(err(ln, "meta record missing key".into()));
                }
                artifact.meta.push((key.to_string(), unescape_meta(value)));
            }
            "tensor" => {
                let kind = parts
                    .next()
                    .ok_or_else(|| err(ln, "tensor record missing kind".into()))?;
                let name = parts
                    .next()
                    .ok_or_else(|| err(ln, "tensor record missing name".into()))?
                    .to_string();
                let rows = parse_usize(&mut parts, ln, "tensor rows")?;
                let cols = parse_usize(&mut parts, ln, "tensor cols")?;
                // Sizes come from untrusted input: reject overflow and
                // cap the pre-reservation so a corrupt header yields a
                // parse error, never a capacity panic or huge alloc.
                let elems = rows
                    .checked_mul(cols)
                    .ok_or_else(|| err(ln, format!("tensor '{name}' size overflows")))?;
                const MAX_PREALLOC: usize = 1 << 22;
                let payload = match kind {
                    "f32" => {
                        let mut data = Vec::with_capacity(elems.min(MAX_PREALLOC));
                        for r in 0..rows {
                            let (rln, row) = lines
                                .next()
                                .ok_or_else(|| err(ln, format!("tensor '{name}' truncated")))?;
                            last_line = rln;
                            let mut count = 0usize;
                            for v in row.split_whitespace() {
                                let bits = u32::from_str_radix(v, 16).map_err(|_| {
                                    err(rln, format!("malformed f32 bit pattern '{v}'"))
                                })?;
                                data.push(f32::from_bits(bits));
                                count += 1;
                            }
                            if count != cols {
                                return Err(err(
                                    rln,
                                    format!("row {r} has {count} values, expected {cols}"),
                                ));
                            }
                        }
                        TensorPayload::F32(Matrix::from_vec(rows, cols, data))
                    }
                    "i8" => {
                        let scale_hex = parts
                            .next()
                            .ok_or_else(|| err(ln, "i8 tensor missing scale".into()))?;
                        let scale =
                            f32::from_bits(u32::from_str_radix(scale_hex, 16).map_err(|_| {
                                err(ln, format!("malformed scale bit pattern '{scale_hex}'"))
                            })?);
                        let mut data = Vec::with_capacity(elems.min(MAX_PREALLOC));
                        for r in 0..rows {
                            let (rln, row) = lines
                                .next()
                                .ok_or_else(|| err(ln, format!("tensor '{name}' truncated")))?;
                            last_line = rln;
                            let mut count = 0usize;
                            for v in row.trim().split(',') {
                                data.push(
                                    v.parse::<i8>().map_err(|_| {
                                        err(rln, format!("malformed i8 value '{v}'"))
                                    })?,
                                );
                                count += 1;
                            }
                            if count != cols {
                                return Err(err(
                                    rln,
                                    format!("row {r} has {count} values, expected {cols}"),
                                ));
                            }
                        }
                        TensorPayload::I8 {
                            shape: (rows, cols),
                            scale,
                            data,
                        }
                    }
                    other => return Err(err(ln, format!("unknown tensor kind '{other}'"))),
                };
                artifact.tensors.push(NamedTensor { name, payload });
            }
            "plans" => {
                declared_layers = Some(parse_usize(&mut parts, ln, "plan layer count")?);
            }
            "layer" => {
                let idx = parse_usize(&mut parts, ln, "layer index")?;
                if idx != artifact.plans.len() {
                    return Err(err(
                        ln,
                        format!(
                            "layer {idx} out of order (expected {})",
                            artifact.plans.len()
                        ),
                    ));
                }
                declared_heads.push(parse_usize(&mut parts, ln, "layer head count")?);
                artifact.plans.push(Vec::new());
            }
            "head" => {
                let layer = artifact
                    .plans
                    .last_mut()
                    .ok_or_else(|| err(ln, "head record before any layer".into()))?;
                match parts.next() {
                    Some("dense") => layer.push(HeadPlanRecord::Dense),
                    Some("sparse") => {
                        let n = parse_usize(&mut parts, ln, "sparse head size")?;
                        let index = parts.next().unwrap_or("");
                        let csc = CscMatrix::from_index_string(n, index)
                            .map_err(|m| err(ln, format!("malformed CSC index: {m}")))?;
                        layer.push(HeadPlanRecord::Sparse(csc));
                    }
                    other => {
                        return Err(err(
                            ln,
                            format!("unknown head plan '{}'", other.unwrap_or("")),
                        ))
                    }
                }
            }
            "end" => {
                saw_end = true;
                break;
            }
            other => return Err(err(ln, format!("unknown record '{other}'"))),
        }
    }
    if !saw_end {
        return Err(err(
            last_line,
            "missing 'end' terminator (truncated artifact?)".into(),
        ));
    }
    if let Some(layers) = declared_layers {
        if artifact.plans.len() != layers {
            return Err(err(
                last_line,
                format!(
                    "declared {layers} plan layers but found {}",
                    artifact.plans.len()
                ),
            ));
        }
        for (l, (plan, &heads)) in artifact.plans.iter().zip(&declared_heads).enumerate() {
            if plan.len() != heads {
                return Err(err(
                    last_line,
                    format!("layer {l} has {} head plans, declared {heads}", plan.len()),
                ));
            }
        }
    } else if !artifact.plans.is_empty() {
        return Err(err(
            last_line,
            "layer records without a 'plans' header".into(),
        ));
    }
    Ok(artifact)
}

/// Escapes a meta value onto one line: backslashes, newlines and
/// carriage returns become two-character sequences.
fn escape_meta(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

/// Inverse of [`escape_meta`]; unknown escapes pass through verbatim.
fn unescape_meta(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
// Exact float equality below asserts bit-identical artifact replay.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::{compile_model, SplitConquer, SplitConquerConfig};
    use vitcod_model::{AttentionStats, ViTConfig};

    fn sample_program(ae: bool) -> AcceleratorProgram {
        let cfg = ViTConfig::deit_tiny();
        let stats = AttentionStats::for_model(&cfg, 77);
        let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
        let ae_cfg = ae.then(|| AutoEncoderConfig::half(cfg.heads));
        compile_model(&cfg, &sc.apply(&stats.maps), ae_cfg)
    }

    #[test]
    fn round_trip_preserves_everything() {
        for ae in [false, true] {
            let p = sample_program(ae);
            let restored = load_program(&save_program(&p)).unwrap();
            assert_eq!(restored.model, p.model);
            assert_eq!(restored.tokens, p.tokens);
            assert_eq!(restored.head_dim, p.head_dim);
            assert_eq!(restored.heads, p.heads);
            assert_eq!(restored.auto_encoder, p.auto_encoder);
            assert_eq!(restored.layers.len(), p.layers.len());
            assert_eq!(restored.total_macs(), p.total_macs());
            assert_eq!(restored.overall_sparsity(), p.overall_sparsity());
            for (la, lb) in restored.layers.iter().zip(p.layers.iter()) {
                assert_eq!(la.layer, lb.layer);
                for (ha, hb) in la.heads.iter().zip(lb.heads.iter()) {
                    assert_eq!(ha.num_global, hb.num_global);
                    assert_eq!(ha.sparser_col_nnz, hb.sparser_col_nnz);
                }
            }
        }
    }

    #[test]
    fn rejects_wrong_header() {
        let e = load_program("vitcod-program v9\nend\n").unwrap_err();
        assert_eq!(e.line(), 1);
        assert!(e.to_string().contains("unsupported header"));
    }

    #[test]
    fn rejects_truncation() {
        let p = sample_program(false);
        let text = save_program(&p);
        let truncated = &text[..text.len() / 2];
        // Truncation must be rejected — either as a missing terminator
        // or because the cut line fails a consistency check.
        assert!(load_program(truncated).is_err());
        // Clean truncation at a line boundary reports the terminator.
        let lines: Vec<&str> = text.lines().collect();
        let clean_cut = lines[..lines.len() / 2].join("\n");
        let e = load_program(&clean_cut).unwrap_err();
        let msg = e.to_string();
        assert!(
            msg.contains("truncated") || msg.contains("missing"),
            "unexpected message: {msg}"
        );
    }

    #[test]
    fn rejects_inconsistent_col_nnz() {
        let text = "vitcod-program v1\nmodel X\ntokens 4\nhead_dim 2\nheads 1\nlayer 0 1\nhead 1 4 5 1,1\nend\n";
        let e = load_program(text).unwrap_err();
        assert!(e.to_string().contains("col_nnz sum"));
    }

    #[test]
    fn rejects_unknown_record() {
        let text = "vitcod-program v1\nbogus 1\nend\n";
        let e = load_program(text).unwrap_err();
        assert!(e.to_string().contains("unknown record"));
        assert_eq!(e.line(), 2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = sample_program(false);
        let text = save_program(&p).replace("layer 0", "# a comment\n\nlayer 0");
        assert!(load_program(&text).is_ok());
    }

    #[test]
    fn masks_round_trip_through_rle() {
        let cfg = ViTConfig::deit_tiny();
        let stats = AttentionStats::for_model(&cfg, 5);
        let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
        let heads = sc.apply(&stats.maps);
        let masks: Vec<Vec<crate::AttentionMask>> = heads
            .iter()
            .map(|l| l.iter().map(|h| h.pruned.clone()).collect())
            .collect();
        let text = save_masks(&masks);
        let restored = load_masks(&text).unwrap();
        assert_eq!(restored.len(), masks.len());
        for (la, lb) in restored.iter().zip(masks.iter()) {
            assert_eq!(la.len(), lb.len());
            for (a, b) in la.iter().zip(lb.iter()) {
                assert_eq!(a, b);
            }
        }
        // RLE should compress the 90%-sparse masks well below one byte
        // per position.
        let positions = 12 * 3 * 197 * 197;
        assert!(text.len() < positions / 2, "RLE too large: {}", text.len());
    }

    #[test]
    fn mask_artifact_rejects_bad_rows() {
        let text = "vitcod-masks v1\nsize 4\nmask 0 0\n2k2p\n2k2p\n2k2p\n3k\nend\n";
        let e = load_masks(text).unwrap_err();
        assert!(e.to_string().contains("cover the full width"));
        let text2 = "vitcod-masks v1\nsize 2\nmask 0 0\n2k\n1k1x\nend\n";
        assert!(load_masks(text2).is_err());
    }

    #[test]
    fn mask_artifact_requires_terminator() {
        let text = "vitcod-masks v1\nsize 2\nmask 0 0\n2k\n2p\n";
        let e = load_masks(text).unwrap_err();
        assert!(e.to_string().contains("terminator"));
    }

    #[test]
    fn empty_mask_set_round_trips() {
        let text = save_masks(&[]);
        let restored = load_masks(&text).unwrap();
        assert!(restored.is_empty());
    }

    fn sample_compiled() -> CompiledModelArtifact {
        CompiledModelArtifact {
            meta: vec![
                ("model".into(), "DeiT-Tiny".into()),
                ("note".into(), "value with spaces".into()),
            ],
            tensors: vec![
                NamedTensor {
                    name: "w".into(),
                    payload: TensorPayload::F32(Matrix::from_rows(&[
                        &[1.0, -0.0, f32::MIN_POSITIVE],
                        &[0.5, 3.25e-7, -17.0],
                    ])),
                },
                NamedTensor {
                    name: "layer0.w_qkv".into(),
                    payload: TensorPayload::I8 {
                        shape: (2, 3),
                        scale: 0.007_843_138,
                        data: vec![127, -127, 0, 1, -1, 64],
                    },
                },
            ],
            plans: vec![
                vec![
                    HeadPlanRecord::Dense,
                    HeadPlanRecord::Sparse(CscMatrix::from_indicator(4, |q, k| q == k || k == 0)),
                ],
                vec![HeadPlanRecord::Dense, HeadPlanRecord::Dense],
            ],
        }
    }

    #[test]
    fn compiled_round_trip_is_exact() {
        let a = sample_compiled();
        let text = save_compiled(&a);
        let restored = load_compiled(&text).unwrap();
        assert_eq!(restored, a);
        // Bit-exactness: -0.0 and subnormals survive, and re-saving is
        // byte-identical.
        assert_eq!(save_compiled(&restored), text);
        assert!(restored.has_int8_tensors());
        assert_eq!(restored.meta_value("note"), Some("value with spaces"));
        assert_eq!(restored.tensor("w").unwrap().payload.shape(), (2, 3));
    }

    #[test]
    fn compiled_f32_nan_bits_survive() {
        let weird = f32::from_bits(0x7fc0_1234); // NaN with payload
        let a = CompiledModelArtifact {
            meta: vec![],
            tensors: vec![NamedTensor {
                name: "t".into(),
                payload: TensorPayload::F32(Matrix::from_vec(1, 1, vec![weird])),
            }],
            plans: vec![],
        };
        let restored = load_compiled(&save_compiled(&a)).unwrap();
        match &restored.tensors[0].payload {
            TensorPayload::F32(m) => assert_eq!(m.get(0, 0).to_bits(), weird.to_bits()),
            other => panic!("wrong payload {other:?}"),
        }
    }

    #[test]
    fn compiled_rejects_malformed_with_line_numbers() {
        let e = load_compiled("vitcod-compiled v9\nend\n").unwrap_err();
        assert_eq!(e.line(), 1);

        // Wrong row width inside a tensor payload.
        let text = "vitcod-compiled v1\ntensor f32 w 1 3\n3f800000 3f800000\nend\n";
        let e = load_compiled(text).unwrap_err();
        assert_eq!(e.line(), 3);
        assert!(e.to_string().contains("expected 3"));

        // Malformed hex.
        let text = "vitcod-compiled v1\ntensor f32 w 1 1\nzz\nend\n";
        let e = load_compiled(text).unwrap_err();
        assert_eq!(e.line(), 3);

        // Malformed i8 byte.
        let text = "vitcod-compiled v1\ntensor i8 w 1 2 3f800000\n1,999\nend\n";
        let e = load_compiled(text).unwrap_err();
        assert_eq!(e.line(), 3);

        // Head plan before any layer.
        let text = "vitcod-compiled v1\nplans 1 1\nhead dense\nend\n";
        let e = load_compiled(text).unwrap_err();
        assert_eq!(e.line(), 3);

        // Truncation: payload rows missing entirely.
        let full = save_compiled(&sample_compiled());
        let lines: Vec<&str> = full.lines().collect();
        let cut = lines[..lines.len() - 2].join("\n");
        assert!(load_compiled(&cut).is_err());
        let no_end: String = lines[..lines.len() - 1].join("\n");
        let e = load_compiled(&no_end).unwrap_err();
        assert!(e.to_string().contains("truncated"));
    }

    #[test]
    fn compiled_rejects_inconsistent_plan_counts() {
        let text = "vitcod-compiled v1\nplans 2\nlayer 0 1\nhead dense\nend\n";
        let e = load_compiled(text).unwrap_err();
        assert!(e.to_string().contains("declared 2"));
        let text = "vitcod-compiled v1\nplans 1\nlayer 0 2\nhead dense\nend\n";
        let e = load_compiled(text).unwrap_err();
        assert!(e.to_string().contains("declared 2"));
        let text = "vitcod-compiled v1\nlayer 0 1\nhead dense\nend\n";
        assert!(load_compiled(text).is_err());
        let text = "vitcod-compiled v1\nplans 1\nlayer 0\nhead dense\nend\n";
        let e = load_compiled(text).unwrap_err();
        assert!(e.to_string().contains("layer head count"));
    }

    #[test]
    fn compiled_rejects_huge_tensor_headers_gracefully() {
        // Corrupt size fields must produce a parse error, not a
        // capacity panic or a giant allocation.
        for text in [
            "vitcod-compiled v1\ntensor f32 w 4000000000000000000 4000000000000000000\nend\n",
            "vitcod-compiled v1\ntensor i8 w 999999999 999999999 3f800000\nend\n",
        ] {
            let e = load_compiled(text).unwrap_err();
            assert!(e.line() > 0, "error must carry a line number: {e}");
        }
    }

    #[test]
    #[should_panic(expected = "whitespace-free")]
    fn compiled_save_rejects_unsplittable_meta_keys() {
        save_compiled(&CompiledModelArtifact {
            meta: vec![("my key".into(), "v".into())],
            tensors: vec![],
            plans: vec![],
        });
    }

    #[test]
    fn compiled_ragged_plans_and_hostile_meta_values_round_trip() {
        let a = CompiledModelArtifact {
            meta: vec![
                ("double".into(), "a  b".into()),
                ("newline".into(), "line1\nline2\\more\r".into()),
                ("empty".into(), String::new()),
            ],
            tensors: vec![],
            // Ragged: per-layer head counts differ.
            plans: vec![
                vec![HeadPlanRecord::Dense],
                vec![HeadPlanRecord::Dense, HeadPlanRecord::Dense],
            ],
        };
        let text = save_compiled(&a);
        let restored = load_compiled(&text).unwrap();
        assert_eq!(restored, a);
        assert_eq!(save_compiled(&restored), text);
    }

    #[test]
    fn simulates_identically_after_round_trip() {
        let p = sample_program(true);
        let restored = load_program(&save_program(&p)).unwrap();
        // Structural identity implies identical simulation; verify the
        // workload numbers the simulator keys on.
        for (la, lb) in restored.layers.iter().zip(p.layers.iter()) {
            assert_eq!(la.total_macs(), lb.total_macs());
            assert_eq!(la.mean_global_tokens(), lb.mean_global_tokens());
        }
    }
}
