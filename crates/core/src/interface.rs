//! The algorithm→hardware interface pipeline (paper Fig. 14): a network
//! parser plus hardware compiler that lowers a sparsified ViT into the
//! per-layer programs the accelerator executes.

use vitcod_model::ViTConfig;

use crate::autoencoder::AutoEncoderConfig;
use crate::split_conquer::PolarizedHead;

/// Work description of one attention head for one phase pair
/// (SDDMM `Q·Kᵀ` then SpMM `S·V`).
#[derive(Debug, Clone)]
pub struct PhaseWorkload {
    /// Tokens `n`.
    pub tokens: usize,
    /// Per-head feature dimension `dk`.
    pub head_dim: usize,
    /// Global-token (denser) columns `N_gt`.
    pub num_global: usize,
    /// Kept positions inside the denser block.
    pub denser_nnz: usize,
    /// Kept positions in the sparser residue.
    pub sparser_nnz: usize,
    /// Per-column kept counts of the sparser residue (columns
    /// `N_gt..n`), used for load-balance modelling.
    pub sparser_col_nnz: Vec<usize>,
}

impl PhaseWorkload {
    /// SDDMM MACs on the denser engine: the block is computed densely,
    /// `n · N_gt · dk`.
    pub fn sddmm_denser_macs(&self) -> u64 {
        (self.tokens * self.num_global * self.head_dim) as u64
    }

    /// SDDMM MACs on the sparser engine: one `dk`-length dot product per
    /// kept position.
    pub fn sddmm_sparser_macs(&self) -> u64 {
        (self.sparser_nnz * self.head_dim) as u64
    }

    /// SpMM MACs on the denser engine: each kept score inside the denser
    /// block multiplies a `dk`-length V row.
    pub fn spmm_denser_macs(&self) -> u64 {
        (self.denser_nnz * self.head_dim) as u64
    }

    /// SpMM MACs on the sparser engine.
    pub fn spmm_sparser_macs(&self) -> u64 {
        (self.sparser_nnz * self.head_dim) as u64
    }

    /// All attention-core MACs of this head.
    pub fn total_macs(&self) -> u64 {
        self.sddmm_denser_macs()
            + self.sddmm_sparser_macs()
            + self.spmm_denser_macs()
            + self.spmm_sparser_macs()
    }

    /// Load imbalance of the sparser residue: max column occupancy over
    /// mean (1.0 = perfectly balanced). Diagonal patterns without
    /// reordering score high; polarized residues score low.
    pub fn sparser_imbalance(&self) -> f64 {
        if self.sparser_col_nnz.is_empty() {
            return 1.0;
        }
        let max = *self.sparser_col_nnz.iter().max().unwrap() as f64;
        let mean =
            self.sparser_col_nnz.iter().sum::<usize>() as f64 / self.sparser_col_nnz.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// One layer's compiled attention program: a [`PhaseWorkload`] per head.
#[derive(Debug, Clone)]
pub struct LayerProgram {
    /// Layer index.
    pub layer: usize,
    /// Per-head workloads.
    pub heads: Vec<PhaseWorkload>,
}

impl LayerProgram {
    /// Sum of all heads' attention-core MACs.
    pub fn total_macs(&self) -> u64 {
        self.heads.iter().map(PhaseWorkload::total_macs).sum()
    }

    /// Mean global-token count across heads (the statistic the paper's
    /// dynamic PE allocation keys on, which "varies in terms of the
    /// number of global tokens among different layers/heads").
    pub fn mean_global_tokens(&self) -> f64 {
        if self.heads.is_empty() {
            return 0.0;
        }
        self.heads.iter().map(|h| h.num_global as f64).sum::<f64>() / self.heads.len() as f64
    }
}

/// A complete compiled model: the artifact the hardware compiler hands to
/// the accelerator (Fig. 14's "instructions").
#[derive(Debug, Clone)]
pub struct AcceleratorProgram {
    /// Model name, e.g. `"DeiT-Base"`.
    pub model: String,
    /// Tokens `n` of the compiled (primary) stage.
    pub tokens: usize,
    /// Per-head feature dimension.
    pub head_dim: usize,
    /// Heads per layer.
    pub heads: usize,
    /// Per-layer programs.
    pub layers: Vec<LayerProgram>,
    /// Auto-encoder configuration, if AE modules are compiled in.
    pub auto_encoder: Option<AutoEncoderConfig>,
}

impl AcceleratorProgram {
    /// Total attention-core MACs across the model.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerProgram::total_macs).sum()
    }

    /// Overall achieved sparsity of the compiled attention maps.
    pub fn overall_sparsity(&self) -> f64 {
        let mut kept = 0u64;
        let mut total = 0u64;
        for layer in &self.layers {
            for h in &layer.heads {
                kept += (h.denser_nnz + h.sparser_nnz) as u64;
                total += (h.tokens * h.tokens) as u64;
            }
        }
        if total == 0 {
            return 0.0;
        }
        1.0 - kept as f64 / total as f64
    }
}

/// The network parser + hardware compiler: lowers a model configuration
/// and its split-and-conquer output into an [`AcceleratorProgram`].
///
/// # Panics
///
/// Panics if `polarized` has no layers or mask sizes disagree with
/// `cfg.tokens`.
///
/// # Example
///
/// ```
/// use vitcod_core::{compile_model, SplitConquer, SplitConquerConfig};
/// use vitcod_model::{AttentionStats, ViTConfig};
///
/// let cfg = ViTConfig::deit_tiny();
/// let stats = AttentionStats::for_model(&cfg, 9);
/// let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
/// let prog = compile_model(&cfg, &sc.apply(&stats.maps), None);
/// assert_eq!(prog.layers.len(), 12);
/// assert!(prog.overall_sparsity() > 0.85);
/// ```
pub fn compile_model(
    cfg: &ViTConfig,
    polarized: &[Vec<PolarizedHead>],
    auto_encoder: Option<AutoEncoderConfig>,
) -> AcceleratorProgram {
    assert!(!polarized.is_empty(), "no layers to compile");
    let dk = cfg.head_dim();
    let layers = polarized
        .iter()
        .enumerate()
        .map(|(l, heads)| LayerProgram {
            layer: l,
            heads: heads
                .iter()
                .map(|ph| {
                    let mask = ph.polarized_mask();
                    assert_eq!(
                        mask.size(),
                        cfg.tokens,
                        "mask size disagrees with model config"
                    );
                    let w = ph.workload();
                    let col_nnz = mask.col_nnz();
                    PhaseWorkload {
                        tokens: w.tokens,
                        head_dim: dk,
                        num_global: w.denser_cols,
                        denser_nnz: w.denser_nnz,
                        sparser_nnz: w.sparser_nnz,
                        sparser_col_nnz: col_nnz[w.denser_cols..].to_vec(),
                    }
                })
                .collect(),
        })
        .collect();
    AcceleratorProgram {
        model: cfg.name.to_string(),
        tokens: cfg.tokens,
        head_dim: dk,
        heads: cfg.heads,
        layers,
        auto_encoder,
    }
}

#[cfg(test)]
// Exact float equality below asserts bit-identical artifact replay.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::split_conquer::{SplitConquer, SplitConquerConfig};
    use vitcod_model::{AttentionStats, ViTConfig};

    fn compiled(sparsity: f64) -> AcceleratorProgram {
        let cfg = ViTConfig::deit_tiny();
        let stats = AttentionStats::for_model(&cfg, 33);
        let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(sparsity));
        compile_model(&cfg, &sc.apply(&stats.maps), None)
    }

    #[test]
    fn program_shape_matches_model() {
        let p = compiled(0.9);
        assert_eq!(p.layers.len(), 12);
        assert!(p.layers.iter().all(|l| l.heads.len() == 3));
        assert_eq!(p.tokens, 197);
        assert_eq!(p.head_dim, 64);
    }

    #[test]
    fn sparsity_survives_compilation() {
        let p = compiled(0.9);
        assert!((p.overall_sparsity() - 0.9).abs() < 0.03);
    }

    #[test]
    fn macs_scale_with_density() {
        let dense = compiled(0.6);
        let sparse = compiled(0.9);
        assert!(dense.total_macs() > sparse.total_macs());
    }

    #[test]
    fn phase_workload_macs_consistent() {
        let w = PhaseWorkload {
            tokens: 10,
            head_dim: 4,
            num_global: 2,
            denser_nnz: 15,
            sparser_nnz: 5,
            sparser_col_nnz: vec![1, 1, 1, 1, 1, 0, 0, 0],
        };
        assert_eq!(w.sddmm_denser_macs(), 10 * 2 * 4);
        assert_eq!(w.sddmm_sparser_macs(), 5 * 4);
        assert_eq!(w.spmm_denser_macs(), 15 * 4);
        assert_eq!(w.spmm_sparser_macs(), 5 * 4);
        assert_eq!(
            w.total_macs(),
            w.sddmm_denser_macs()
                + w.sddmm_sparser_macs()
                + w.spmm_denser_macs()
                + w.spmm_sparser_macs()
        );
    }

    #[test]
    fn imbalance_detects_skew() {
        let balanced = PhaseWorkload {
            tokens: 4,
            head_dim: 2,
            num_global: 0,
            denser_nnz: 0,
            sparser_nnz: 8,
            sparser_col_nnz: vec![2, 2, 2, 2],
        };
        assert!((balanced.sparser_imbalance() - 1.0).abs() < 1e-9);
        let skewed = PhaseWorkload {
            sparser_col_nnz: vec![8, 0, 0, 0],
            ..balanced
        };
        assert_eq!(skewed.sparser_imbalance(), 4.0);
    }

    #[test]
    fn mean_global_tokens_positive_for_global_heavy_maps() {
        let p = compiled(0.9);
        let any_globals = p.layers.iter().any(|l| l.mean_global_tokens() > 0.0);
        assert!(any_globals, "no layer found any global tokens");
    }

    #[test]
    fn ae_config_carried_through() {
        let cfg = ViTConfig::deit_small();
        let stats = AttentionStats::for_model(&cfg, 34);
        let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
        let p = compile_model(
            &cfg,
            &sc.apply(&stats.maps),
            Some(AutoEncoderConfig::half(cfg.heads)),
        );
        assert_eq!(p.auto_encoder.unwrap().compressed_heads(), 3);
    }
}
