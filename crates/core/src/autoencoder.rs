//! Data-movement accounting of the learnable Q/K auto-encoder
//! (paper Sec. IV-C and the roofline analysis of Fig. 3).

use vitcod_model::AutoEncoderSpec;

/// Algorithm-level description of the auto-encoder: how many heads are
/// mixed down to how many, and the traffic/compute consequences.
///
/// The trainable weights themselves live in
/// [`vitcod_model::VisionTransformer`]; this type carries what the
/// *hardware* needs — the compression ratio that shrinks Q/K off-chip
/// traffic and the extra encode/decode MACs it costs.
///
/// # Example
///
/// ```
/// use vitcod_core::AutoEncoderConfig;
///
/// let ae = AutoEncoderConfig::new(12, 6);
/// assert_eq!(ae.ratio(), 0.5);
/// // Moving 197x64 Q and K per head at 1 byte: AE halves it.
/// let dense = ae.qk_traffic_bytes_dense(197, 64, 1);
/// assert_eq!(ae.qk_traffic_bytes_compressed(197, 64, 1), dense / 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoEncoderConfig {
    heads: usize,
    compressed_heads: usize,
}

impl AutoEncoderConfig {
    /// Creates a config compressing `heads` down to `compressed_heads`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= compressed_heads <= heads`.
    pub fn new(heads: usize, compressed_heads: usize) -> Self {
        assert!(
            (1..=heads).contains(&compressed_heads),
            "compressed heads must be in 1..=heads"
        );
        Self {
            heads,
            compressed_heads,
        }
    }

    /// The paper's default 50 % compression.
    pub fn half(heads: usize) -> Self {
        Self::new(heads, (heads / 2).max(1))
    }

    /// Builds from the model-side spec.
    pub fn from_spec(spec: AutoEncoderSpec, heads: usize) -> Self {
        Self::new(heads, spec.compressed_heads)
    }

    /// Original head count.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Compressed head count.
    pub fn compressed_heads(&self) -> usize {
        self.compressed_heads
    }

    /// Compression ratio `compressed / original` (0.5 in the paper).
    pub fn ratio(&self) -> f64 {
        self.compressed_heads as f64 / self.heads as f64
    }

    /// Off-chip bytes to move Q *and* K for all heads without the AE:
    /// `2 · n · heads · dk · bytes`.
    pub fn qk_traffic_bytes_dense(&self, tokens: usize, head_dim: usize, bytes: usize) -> u64 {
        2 * (tokens as u64) * (self.heads as u64) * (head_dim as u64) * (bytes as u64)
    }

    /// Off-chip bytes with the AE: only the compressed heads travel.
    pub fn qk_traffic_bytes_compressed(&self, tokens: usize, head_dim: usize, bytes: usize) -> u64 {
        2 * (tokens as u64) * (self.compressed_heads as u64) * (head_dim as u64) * (bytes as u64)
    }

    /// Bytes saved per layer by the AE.
    pub fn traffic_saved_bytes(&self, tokens: usize, head_dim: usize, bytes: usize) -> u64 {
        self.qk_traffic_bytes_dense(tokens, head_dim, bytes)
            - self.qk_traffic_bytes_compressed(tokens, head_dim, bytes)
    }

    /// Extra MACs for encoding *and* decoding Q and K once each:
    /// encode is `n · dk · heads · compressed`, decode mirrors it, and
    /// both Q and K pass through — `4 · n · dk · h · h_c` total.
    pub fn codec_macs(&self, tokens: usize, head_dim: usize) -> u64 {
        4 * (tokens as u64)
            * (head_dim as u64)
            * (self.heads as u64)
            * (self.compressed_heads as u64)
    }

    /// On-chip weight footprint of the encoder+decoder for Q and K, in
    /// parameters: `4 · h · h_c` (tiny — e.g. 288 for 12→6 — which is why
    /// the accelerator pins them on chip).
    pub fn codec_params(&self) -> usize {
        4 * self.heads * self.compressed_heads
    }

    /// The paper's headline trade: MACs added per byte of traffic saved.
    /// Low values mean the trade is profitable on bandwidth-bound
    /// workloads.
    pub fn macs_per_byte_saved(&self, tokens: usize, head_dim: usize, bytes: usize) -> f64 {
        let saved = self.traffic_saved_bytes(tokens, head_dim, bytes);
        if saved == 0 {
            return f64::INFINITY;
        }
        self.codec_macs(tokens, head_dim) as f64 / saved as f64
    }
}

#[cfg(test)]
// Exact float equality below asserts bit-identical artifact replay.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn half_compression_ratio() {
        let ae = AutoEncoderConfig::half(12);
        assert_eq!(ae.compressed_heads(), 6);
        assert_eq!(ae.ratio(), 0.5);
        // Odd head count rounds down but never to zero.
        assert_eq!(AutoEncoderConfig::half(3).compressed_heads(), 1);
        assert_eq!(AutoEncoderConfig::half(1).compressed_heads(), 1);
    }

    #[test]
    fn traffic_accounting_consistent() {
        let ae = AutoEncoderConfig::new(12, 6);
        let dense = ae.qk_traffic_bytes_dense(197, 64, 1);
        let comp = ae.qk_traffic_bytes_compressed(197, 64, 1);
        assert_eq!(dense, 2 * 197 * 12 * 64);
        assert_eq!(comp * 2, dense);
        assert_eq!(ae.traffic_saved_bytes(197, 64, 1), dense - comp);
    }

    #[test]
    fn codec_macs_scale_with_dims() {
        let ae = AutoEncoderConfig::new(12, 6);
        assert_eq!(ae.codec_macs(197, 64), 4 * 197 * 64 * 12 * 6);
        assert_eq!(ae.codec_params(), 4 * 12 * 6);
    }

    #[test]
    fn trade_is_profitable_for_vit_scale() {
        // For DeiT-Base-like dims, the AE should cost only a few MACs per
        // byte saved — far cheaper than DRAM access energy/latency.
        let ae = AutoEncoderConfig::half(12);
        let mpb = ae.macs_per_byte_saved(197, 64, 1);
        assert!(mpb < 50.0, "macs per byte saved: {mpb}");
    }

    #[test]
    fn from_spec_round_trips() {
        let spec = AutoEncoderSpec {
            compressed_heads: 4,
        };
        let ae = AutoEncoderConfig::from_spec(spec, 8);
        assert_eq!(ae.compressed_heads(), 4);
        assert_eq!(ae.heads(), 8);
    }

    #[test]
    #[should_panic(expected = "compressed heads")]
    fn zero_compression_rejected() {
        AutoEncoderConfig::new(8, 0);
    }

    #[test]
    fn no_compression_saves_nothing() {
        let ae = AutoEncoderConfig::new(8, 8);
        assert_eq!(ae.traffic_saved_bytes(100, 32, 1), 0);
        assert_eq!(ae.macs_per_byte_saved(100, 32, 1), f64::INFINITY);
    }
}
