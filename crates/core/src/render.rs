//! Image export of attention maps and masks.
//!
//! The paper's Fig. 8 is a grid of 144 attention-map images; this module
//! writes portable graymap (PGM, P2/ASCII) images of [`Matrix`] heat
//! maps and [`AttentionMask`]s so the reproduction can emit the same
//! visual artifacts without an image-library dependency. PGM opens in
//! any image viewer and converts losslessly to PNG.

use std::fmt::Write as _;

use vitcod_tensor::Matrix;

use crate::mask::AttentionMask;

/// Renders a matrix as an ASCII PGM heat map; values are min-max
/// normalised to `0..=255` (255 = largest value = darkest attention in
/// most viewers' inverted palettes).
///
/// # Example
///
/// ```
/// use vitcod_core::matrix_to_pgm;
/// use vitcod_tensor::Matrix;
///
/// let pgm = matrix_to_pgm(&Matrix::identity(2));
/// assert!(pgm.starts_with("P2\n2 2\n255\n"));
/// ```
pub fn matrix_to_pgm(m: &Matrix) -> String {
    let (lo, hi) = m
        .as_slice()
        .iter()
        .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = (hi - lo).max(f32::EPSILON);
    let mut out = String::with_capacity(m.len() * 4 + 32);
    let _ = writeln!(out, "P2\n{} {}\n255", m.cols(), m.rows());
    for r in 0..m.rows() {
        let row: Vec<String> = m
            .row(r)
            .iter()
            .map(|&v| (((v - lo) / span) * 255.0).round().to_string())
            .collect();
        let _ = writeln!(out, "{}", row.join(" "));
    }
    out
}

/// Renders a mask as a binary PGM (kept = 255, pruned = 0).
pub fn mask_to_pgm(mask: &AttentionMask) -> String {
    let n = mask.size();
    let mut out = String::with_capacity(n * n * 4 + 32);
    let _ = writeln!(out, "P2\n{n} {n}\n255");
    for q in 0..n {
        let row: Vec<&str> = (0..n)
            .map(|k| if mask.is_kept(q, k) { "255" } else { "0" })
            .collect();
        let _ = writeln!(out, "{}", row.join(" "));
    }
    out
}

/// Tiles many equally-sized masks into one mosaic PGM with a 1-pixel
/// separator (the Fig. 8 all-heads grid).
///
/// # Panics
///
/// Panics if `masks` is empty, `cols == 0`, or sizes differ.
pub fn mask_grid_to_pgm(masks: &[&AttentionMask], cols: usize) -> String {
    assert!(!masks.is_empty(), "need at least one mask");
    assert!(cols > 0, "need at least one column");
    let n = masks[0].size();
    assert!(
        masks.iter().all(|m| m.size() == n),
        "all masks must share a size"
    );
    let rows = masks.len().div_ceil(cols);
    let width = cols * n + cols - 1;
    let height = rows * n + rows - 1;
    let mut pixels = vec![128u8; width * height]; // separator gray
    for (idx, mask) in masks.iter().enumerate() {
        let gr = idx / cols;
        let gc = idx % cols;
        let y0 = gr * (n + 1);
        let x0 = gc * (n + 1);
        for q in 0..n {
            for k in 0..n {
                pixels[(y0 + q) * width + (x0 + k)] = if mask.is_kept(q, k) { 255 } else { 0 };
            }
        }
    }
    let mut out = String::with_capacity(pixels.len() * 4 + 32);
    let _ = writeln!(out, "P2\n{width} {height}\n255");
    for y in 0..height {
        let row: Vec<String> = (0..width)
            .map(|x| pixels[y * width + x].to_string())
            .collect();
        let _ = writeln!(out, "{}", row.join(" "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_header(pgm: &str) -> (usize, usize) {
        let mut lines = pgm.lines();
        assert_eq!(lines.next(), Some("P2"));
        let dims: Vec<usize> = lines
            .next()
            .unwrap()
            .split_whitespace()
            .map(|t| t.parse().unwrap())
            .collect();
        assert_eq!(lines.next(), Some("255"));
        (dims[0], dims[1])
    }

    #[test]
    fn matrix_pgm_normalises_to_full_range() {
        let m = Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 1.0]]);
        let pgm = matrix_to_pgm(&m);
        assert_eq!(parse_header(&pgm), (2, 2));
        let body: Vec<&str> = pgm.lines().skip(3).collect();
        assert_eq!(body[0], "0 255");
    }

    #[test]
    fn constant_matrix_does_not_divide_by_zero() {
        let pgm = matrix_to_pgm(&Matrix::filled(2, 2, 7.0));
        assert!(pgm.lines().skip(3).all(|l| l == "0 0"));
    }

    #[test]
    fn mask_pgm_is_binary() {
        let mut mask = AttentionMask::empty(3);
        mask.keep(0, 0);
        mask.keep(2, 1);
        let pgm = mask_to_pgm(&mask);
        assert_eq!(parse_header(&pgm), (3, 3));
        for line in pgm.lines().skip(3) {
            for tok in line.split_whitespace() {
                assert!(tok == "0" || tok == "255");
            }
        }
    }

    #[test]
    fn grid_dimensions_include_separators() {
        let a = AttentionMask::dense(4);
        let b = AttentionMask::empty(4);
        let pgm = mask_grid_to_pgm(&[&a, &b, &a], 2);
        // 2 cols x 2 rows of 4px tiles + 1px separators: 9 x 9.
        assert_eq!(parse_header(&pgm), (9, 9));
        assert!(pgm.contains("128"), "separator gray missing");
    }

    #[test]
    #[should_panic(expected = "share a size")]
    fn grid_rejects_mixed_sizes() {
        let a = AttentionMask::dense(4);
        let b = AttentionMask::dense(5);
        mask_grid_to_pgm(&[&a, &b], 2);
    }

    #[test]
    fn pixel_count_matches_dimensions() {
        let mask = AttentionMask::dense(6);
        let pgm = mask_to_pgm(&mask);
        let pixels: usize = pgm
            .lines()
            .skip(3)
            .map(|l| l.split_whitespace().count())
            .sum();
        assert_eq!(pixels, 36);
    }
}
