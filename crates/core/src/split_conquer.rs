//! The combined split-and-conquer transform (Alg. 1) across a full model.

use vitcod_tensor::Matrix;

use crate::formats::CscMatrix;
use crate::mask::AttentionMask;
use crate::prune::{prune_info, prune_to_sparsity};
use crate::reorder::{reorder_global_tokens, ReorderResult};

/// Which pruning criterion drives the split (Alg. 1 uses `θp`; the
/// paper's sparsity sweeps fix the ratio directly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PruneCriterion {
    /// Keep scores until their cumulative normalised sum reaches `θp`.
    InfoThreshold(f64),
    /// Keep exactly the largest scores for a target sparsity ratio.
    TargetSparsity(f64),
}

/// Configuration of the split-and-conquer transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitConquerConfig {
    /// Pruning criterion.
    pub criterion: PruneCriterion,
    /// Global-token column threshold `θd`; `None` auto-derives it from
    /// the mean column occupancy.
    pub theta_d: Option<usize>,
}

impl SplitConquerConfig {
    /// Sweeps-style config pruning to `sparsity` with automatic `θd`.
    pub fn with_sparsity(sparsity: f64) -> Self {
        Self {
            criterion: PruneCriterion::TargetSparsity(sparsity),
            theta_d: None,
        }
    }

    /// Information-threshold config (`θp`) with automatic `θd`.
    pub fn with_info_threshold(theta_p: f64) -> Self {
        Self {
            criterion: PruneCriterion::InfoThreshold(theta_p),
            theta_d: None,
        }
    }
}

/// One attention head after split-and-conquer: its pruned mask in both
/// original and reordered token orders, the permutation, and the
/// denser/sparser partition the accelerator consumes.
#[derive(Debug, Clone)]
pub struct PolarizedHead {
    /// Layer index.
    pub layer: usize,
    /// Head index within the layer.
    pub head: usize,
    /// Pruned mask in the *original* token order (what finetuning uses).
    pub pruned: AttentionMask,
    /// Reordering outcome: permutation, `N_gt` and the polarized mask.
    pub reorder: ReorderResult,
}

impl PolarizedHead {
    /// Number of global tokens `N_gt`.
    pub fn num_global(&self) -> usize {
        self.reorder.num_global
    }

    /// The polarized (reordered) mask.
    pub fn polarized_mask(&self) -> &AttentionMask {
        &self.reorder.mask
    }

    /// CSC index of the sparser residue: the polarized mask restricted to
    /// columns `N_gt..n` (the denser block needs no index — it is
    /// processed densely).
    pub fn sparser_csc(&self) -> CscMatrix {
        let n = self.reorder.mask.size();
        let mut residue = AttentionMask::empty(n);
        for (q, k) in self.reorder.mask.iter_kept() {
            if k >= self.reorder.num_global {
                residue.keep(q, k);
            }
        }
        CscMatrix::from_mask(&residue)
    }

    /// Workload split between the two engines.
    pub fn workload(&self) -> WorkloadSplit {
        let n = self.reorder.mask.size();
        let ngt = self.reorder.num_global;
        let denser_nnz = self.reorder.mask.nnz_in_cols(0, ngt);
        let sparser_nnz = self.reorder.mask.nnz_in_cols(ngt, n);
        WorkloadSplit {
            tokens: n,
            denser_cols: ngt,
            denser_nnz,
            sparser_nnz,
        }
    }
}

/// The two-level workload split the accelerator's dynamic PE allocation
/// balances (paper Sec. V-B: "we allocate hardware resource to each
/// engine proportional to its assigned workload size").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSplit {
    /// Token count `n`.
    pub tokens: usize,
    /// Denser-block column count (`N_gt`).
    pub denser_cols: usize,
    /// Kept positions inside the denser block.
    pub denser_nnz: usize,
    /// Kept positions in the sparser residue.
    pub sparser_nnz: usize,
}

impl WorkloadSplit {
    /// Denser block treated as fully dense by the denser engine:
    /// `n × N_gt` positions.
    pub fn denser_dense_positions(&self) -> usize {
        self.tokens * self.denser_cols
    }

    /// Fraction of total kept work that lands on the denser engine.
    pub fn denser_fraction(&self) -> f64 {
        let total = self.denser_nnz + self.sparser_nnz;
        if total == 0 {
            return 0.0;
        }
        self.denser_nnz as f64 / total as f64
    }

    /// Suggested PE split: PEs given to the denser engine out of
    /// `total_pes`, proportional to its dense-computed workload versus
    /// the sparser engine's nnz workload, with both engines always
    /// receiving at least one PE when they have work.
    pub fn allocate_pes(&self, total_pes: usize) -> (usize, usize) {
        let dense_work = self.denser_dense_positions() as f64;
        let sparse_work = self.sparser_nnz as f64;
        let total = dense_work + sparse_work;
        if total == 0.0 || total_pes == 0 {
            return (total_pes, 0);
        }
        let mut denser = ((dense_work / total) * total_pes as f64).round() as usize;
        if dense_work > 0.0 {
            denser = denser.max(1);
        }
        if sparse_work > 0.0 {
            denser = denser.min(total_pes.saturating_sub(1));
        }
        (denser.min(total_pes), total_pes - denser.min(total_pes))
    }
}

/// Applies the split-and-conquer algorithm to each head of a model's
/// averaged attention-map ensemble.
///
/// # Example
///
/// ```
/// use vitcod_core::{SplitConquer, SplitConquerConfig};
/// use vitcod_model::{AttentionStats, ViTConfig};
///
/// let stats = AttentionStats::for_model(&ViTConfig::deit_tiny(), 3);
/// let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
/// let heads = sc.apply(&stats.maps);
/// assert_eq!(heads.len(), 12);
/// assert_eq!(heads[0].len(), 3);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SplitConquer {
    config: SplitConquerConfig,
}

impl SplitConquer {
    /// Creates the transform with `config`.
    pub fn new(config: SplitConquerConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> SplitConquerConfig {
        self.config
    }

    /// Transforms one averaged attention map.
    pub fn apply_one(&self, layer: usize, head: usize, map: &Matrix) -> PolarizedHead {
        let pruned = match self.config.criterion {
            PruneCriterion::InfoThreshold(theta_p) => prune_info(map, theta_p),
            PruneCriterion::TargetSparsity(s) => prune_to_sparsity(map, s),
        };
        let reorder = reorder_global_tokens(&pruned, self.config.theta_d);
        PolarizedHead {
            layer,
            head,
            pruned,
            reorder,
        }
    }

    /// Transforms a `[layer][head]` ensemble of averaged maps.
    pub fn apply(&self, maps: &[Vec<Matrix>]) -> Vec<Vec<PolarizedHead>> {
        maps.iter()
            .enumerate()
            .map(|(l, heads)| {
                heads
                    .iter()
                    .enumerate()
                    .map(|(h, m)| self.apply_one(l, h, m))
                    .collect()
            })
            .collect()
    }

    /// Builds the finetuning `SparsityPlan` (masks in original token
    /// order) from transformed heads.
    pub fn to_sparsity_plan(heads: &[Vec<PolarizedHead>]) -> vitcod_model::SparsityPlan {
        heads
            .iter()
            .map(|layer| layer.iter().map(|h| Some(h.pruned.to_matrix())).collect())
            .collect()
    }

    /// Mean achieved sparsity across all heads.
    pub fn mean_sparsity(heads: &[Vec<PolarizedHead>]) -> f64 {
        let all: Vec<f64> = heads
            .iter()
            .flatten()
            .map(|h| h.pruned.sparsity())
            .collect();
        if all.is_empty() {
            return 0.0;
        }
        all.iter().sum::<f64>() / all.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitcod_model::{AttentionStats, AttentionStatsConfig};

    fn small_stats() -> AttentionStats {
        AttentionStats::generate(AttentionStatsConfig {
            tokens: 64,
            layers: 2,
            heads: 3,
            diagonal_width: 1.5,
            global_tokens: 3.0,
            global_mass: 0.4,
            background_mass: 0.05,
            seed: 21,
        })
    }

    #[test]
    fn apply_covers_all_heads() {
        let stats = small_stats();
        let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
        let heads = sc.apply(&stats.maps);
        assert_eq!(heads.len(), 2);
        assert!(heads.iter().all(|l| l.len() == 3));
        for (l, layer) in heads.iter().enumerate() {
            for (h, ph) in layer.iter().enumerate() {
                assert_eq!((ph.layer, ph.head), (l, h));
            }
        }
    }

    #[test]
    fn polarization_separates_densities() {
        let stats = small_stats();
        let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
        for ph in sc.apply(&stats.maps).into_iter().flatten() {
            if ph.num_global() > 0 {
                assert!(
                    ph.reorder.denser_density() > ph.reorder.sparser_density(),
                    "layer {} head {}: denser {} <= sparser {}",
                    ph.layer,
                    ph.head,
                    ph.reorder.denser_density(),
                    ph.reorder.sparser_density()
                );
            }
        }
    }

    #[test]
    fn workload_split_accounts_for_all_nnz() {
        let stats = small_stats();
        let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.85));
        for ph in sc.apply(&stats.maps).into_iter().flatten() {
            let w = ph.workload();
            assert_eq!(w.denser_nnz + w.sparser_nnz, ph.polarized_mask().nnz());
            assert_eq!(w.tokens, 64);
        }
    }

    #[test]
    fn pe_allocation_sums_to_total() {
        let w = WorkloadSplit {
            tokens: 100,
            denser_cols: 10,
            denser_nnz: 900,
            sparser_nnz: 100,
        };
        for total in [1usize, 2, 64, 512] {
            let (d, s) = w.allocate_pes(total);
            assert_eq!(d + s, total, "total {total}");
            if total >= 2 {
                assert!(d >= 1 && s >= 1);
            }
        }
    }

    #[test]
    fn pe_allocation_tracks_workload_ratio() {
        let heavy_dense = WorkloadSplit {
            tokens: 100,
            denser_cols: 50,
            denser_nnz: 4000,
            sparser_nnz: 100,
        };
        let (d, s) = heavy_dense.allocate_pes(64);
        assert!(d > s, "dense-heavy split should favour the denser engine");
        let heavy_sparse = WorkloadSplit {
            tokens: 100,
            denser_cols: 1,
            denser_nnz: 100,
            sparser_nnz: 4000,
        };
        let (d2, s2) = heavy_sparse.allocate_pes(64);
        assert!(s2 > d2);
    }

    #[test]
    fn sparser_csc_excludes_denser_block() {
        let stats = small_stats();
        let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
        let ph = &sc.apply(&stats.maps)[0][0];
        let csc = ph.sparser_csc();
        for k in 0..ph.num_global() {
            assert_eq!(csc.col_nnz(k), 0, "denser column {k} leaked into CSC");
        }
        assert_eq!(csc.nnz(), ph.workload().sparser_nnz);
    }

    #[test]
    fn sparsity_plan_matches_model_shape() {
        let stats = small_stats();
        let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.8));
        let heads = sc.apply(&stats.maps);
        let plan = SplitConquer::to_sparsity_plan(&heads);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].len(), 3);
        let m = plan[0][0].as_ref().unwrap();
        assert_eq!(m.shape(), (64, 64));
    }

    #[test]
    fn mean_sparsity_close_to_target() {
        let stats = small_stats();
        for target in [0.6, 0.8, 0.9] {
            let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(target));
            let heads = sc.apply(&stats.maps);
            let mean = SplitConquer::mean_sparsity(&heads);
            assert!(
                (mean - target).abs() < 0.05,
                "target {target} achieved {mean}"
            );
        }
    }

    #[test]
    fn info_threshold_criterion_works_end_to_end() {
        let stats = small_stats();
        let sc = SplitConquer::new(SplitConquerConfig::with_info_threshold(0.6));
        let heads = sc.apply(&stats.maps);
        let mean = SplitConquer::mean_sparsity(&heads);
        assert!(mean > 0.3, "info pruning too weak: {mean}");
    }
}
