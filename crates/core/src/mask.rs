//! Fixed binary attention masks and their workload statistics.

use std::fmt;

use vitcod_tensor::Matrix;

/// A fixed binary attention mask over an `n × n` attention map.
///
/// `true` marks a *kept* (computed) attention position, `false` a pruned
/// one. ViTCoD's central premise is that ViTs tolerate such masks being
/// fixed for **all** inputs, which is what lets the accelerator pre-load
/// the sparse indexes instead of predicting them on the fly.
///
/// # Example
///
/// ```
/// use vitcod_core::AttentionMask;
///
/// let mut m = AttentionMask::dense(4);
/// m.prune(0, 3);
/// assert_eq!(m.nnz(), 15);
/// assert!((m.sparsity() - 1.0 / 16.0).abs() < 1e-9);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct AttentionMask {
    n: usize,
    // Row-major keep-bits.
    bits: Vec<bool>,
}

impl AttentionMask {
    /// All-kept (dense) `n × n` mask.
    pub fn dense(n: usize) -> Self {
        Self {
            n,
            bits: vec![true; n * n],
        }
    }

    /// All-pruned `n × n` mask.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            bits: vec![false; n * n],
        }
    }

    /// Builds a mask from a 0/1 matrix (`> 0.5` means keep).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn from_matrix(m: &Matrix) -> Self {
        assert_eq!(m.rows(), m.cols(), "attention masks are square");
        let n = m.rows();
        let bits = m.as_slice().iter().map(|&v| v > 0.5).collect();
        Self { n, bits }
    }

    /// Reconstructs the boolean mask of a CSC index (round-trip
    /// counterpart of `CscMatrix::from_mask`).
    pub fn from_csc(csc: &vitcod_tensor::sparse::CscMatrix) -> Self {
        let mut m = Self::empty(csc.size());
        for (q, k) in csc.iter_kept() {
            m.keep(q, k);
        }
        m
    }

    /// Token count `n` (the mask is `n × n`).
    pub fn size(&self) -> usize {
        self.n
    }

    /// Whether position `(q, k)` is kept.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn is_kept(&self, q: usize, k: usize) -> bool {
        assert!(q < self.n && k < self.n, "index out of bounds");
        self.bits[q * self.n + k]
    }

    /// Marks `(q, k)` as kept.
    #[inline]
    pub fn keep(&mut self, q: usize, k: usize) {
        assert!(q < self.n && k < self.n, "index out of bounds");
        self.bits[q * self.n + k] = true;
    }

    /// Marks `(q, k)` as pruned.
    #[inline]
    pub fn prune(&mut self, q: usize, k: usize) {
        assert!(q < self.n && k < self.n, "index out of bounds");
        self.bits[q * self.n + k] = false;
    }

    /// Number of kept positions.
    pub fn nnz(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Fraction of pruned positions (the paper's "sparsity ratio").
    pub fn sparsity(&self) -> f64 {
        1.0 - self.density()
    }

    /// Fraction of kept positions.
    pub fn density(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.n * self.n) as f64
    }

    /// Kept count per column — `‖(m ⊙ A)·,ᵢ‖₀` in Alg. 1, the statistic
    /// that identifies global tokens.
    pub fn col_nnz(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n];
        for q in 0..self.n {
            let row = &self.bits[q * self.n..(q + 1) * self.n];
            for (c, &bit) in counts.iter_mut().zip(row) {
                if bit {
                    *c += 1;
                }
            }
        }
        counts
    }

    /// Kept count per row.
    pub fn row_nnz(&self) -> Vec<usize> {
        (0..self.n)
            .map(|q| (0..self.n).filter(|&k| self.bits[q * self.n + k]).count())
            .collect()
    }

    /// Applies the same permutation to rows and columns (token
    /// reordering): output position `(i, j)` takes input
    /// `(perm[i], perm[j])`.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != self.size()`.
    pub fn permute_symmetric(&self, perm: &[usize]) -> AttentionMask {
        assert_eq!(perm.len(), self.n, "permutation length mismatch");
        let mut out = AttentionMask::empty(self.n);
        for i in 0..self.n {
            for j in 0..self.n {
                if self.is_kept(perm[i], perm[j]) {
                    out.keep(i, j);
                }
            }
        }
        out
    }

    /// Converts to a 0/1 matrix (for the trainable model's
    /// `SparsityPlan` and for element-wise application `m ⊙ A`).
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_fn(self.n, self.n, |r, c| {
            if self.bits[r * self.n + c] {
                1.0
            } else {
                0.0
            }
        })
    }

    /// Element-wise application `m ⊙ A`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not `n × n`.
    pub fn apply(&self, a: &Matrix) -> Matrix {
        assert_eq!(a.shape(), (self.n, self.n), "matrix shape mismatch");
        Matrix::from_fn(self.n, self.n, |r, c| {
            if self.bits[r * self.n + c] {
                a.get(r, c)
            } else {
                0.0
            }
        })
    }

    /// Fraction of the original attention mass retained under this mask,
    /// given the (row-normalised) averaged map `a` — the "information
    /// quantity" the pruning criterion preserves.
    pub fn retained_information(&self, a: &Matrix) -> f64 {
        let total: f64 = a.as_slice().iter().map(|&v| v as f64).sum();
        if total == 0.0 {
            return 0.0;
        }
        let kept: f64 = (0..self.n)
            .flat_map(|r| (0..self.n).map(move |c| (r, c)))
            .filter(|&(r, c)| self.is_kept(r, c))
            .map(|(r, c)| a.get(r, c) as f64)
            .sum();
        kept / total
    }

    /// Iterator over kept `(q, k)` coordinates in row-major order.
    pub fn iter_kept(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n)
            .flat_map(move |q| (0..self.n).map(move |k| (q, k)))
            .filter(move |&(q, k)| self.bits[q * self.n + k])
    }

    /// Counts kept positions inside the column block `k0..k1` (used to
    /// size the denser-engine workload).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the mask.
    pub fn nnz_in_cols(&self, k0: usize, k1: usize) -> usize {
        assert!(k0 <= k1 && k1 <= self.n, "column range out of bounds");
        (0..self.n)
            .map(|q| (k0..k1).filter(|&k| self.bits[q * self.n + k]).count())
            .sum()
    }
}

impl fmt::Debug for AttentionMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AttentionMask({}x{}, {:.1}% sparse)",
            self.n,
            self.n,
            self.sparsity() * 100.0
        )
    }
}

impl fmt::Display for AttentionMask {
    /// ASCII rendering: `█` kept, `·` pruned — the textual analogue of
    /// the paper's Fig. 8 visualisations.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for q in 0..self.n {
            for k in 0..self.n {
                write!(f, "{}", if self.is_kept(q, k) { '█' } else { '·' })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
// Exact float equality below asserts bit-identical artifact replay.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn dense_and_empty_extremes() {
        let d = AttentionMask::dense(3);
        assert_eq!(d.nnz(), 9);
        assert_eq!(d.sparsity(), 0.0);
        let e = AttentionMask::empty(3);
        assert_eq!(e.nnz(), 0);
        assert_eq!(e.sparsity(), 1.0);
    }

    #[test]
    fn keep_prune_round_trip() {
        let mut m = AttentionMask::empty(2);
        m.keep(0, 1);
        assert!(m.is_kept(0, 1));
        m.prune(0, 1);
        assert!(!m.is_kept(0, 1));
    }

    #[test]
    fn col_and_row_nnz() {
        let mut m = AttentionMask::empty(3);
        m.keep(0, 0);
        m.keep(1, 0);
        m.keep(2, 2);
        assert_eq!(m.col_nnz(), vec![2, 0, 1]);
        assert_eq!(m.row_nnz(), vec![1, 1, 1]);
    }

    #[test]
    fn permute_symmetric_moves_structure() {
        // Mask keeps only column 2; after moving token 2 to front, only
        // column 0 is kept.
        let mut m = AttentionMask::empty(3);
        for q in 0..3 {
            m.keep(q, 2);
        }
        let p = m.permute_symmetric(&[2, 0, 1]);
        assert_eq!(p.col_nnz(), vec![3, 0, 0]);
    }

    #[test]
    fn permute_identity_is_noop() {
        let mut m = AttentionMask::empty(4);
        m.keep(1, 2);
        m.keep(3, 0);
        let p = m.permute_symmetric(&[0, 1, 2, 3]);
        assert_eq!(p, m);
    }

    #[test]
    fn matrix_round_trip() {
        let mut m = AttentionMask::empty(3);
        m.keep(0, 1);
        m.keep(2, 2);
        assert_eq!(AttentionMask::from_matrix(&m.to_matrix()), m);
    }

    #[test]
    fn apply_zeroes_pruned_entries() {
        let mut m = AttentionMask::empty(2);
        m.keep(0, 0);
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let out = m.apply(&a);
        assert_eq!(out.get(0, 0), 1.0);
        assert_eq!(out.get(0, 1), 0.0);
        assert_eq!(out.get(1, 0), 0.0);
    }

    #[test]
    fn retained_information_bounds() {
        let a = Matrix::filled(4, 4, 0.25);
        assert_eq!(AttentionMask::dense(4).retained_information(&a), 1.0);
        assert_eq!(AttentionMask::empty(4).retained_information(&a), 0.0);
        let mut half = AttentionMask::empty(4);
        for q in 0..4 {
            for k in 0..2 {
                half.keep(q, k);
            }
        }
        assert!((half.retained_information(&a) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn nnz_in_cols_counts_block() {
        let mut m = AttentionMask::empty(4);
        for q in 0..4 {
            m.keep(q, 0);
            m.keep(q, 3);
        }
        assert_eq!(m.nnz_in_cols(0, 1), 4);
        assert_eq!(m.nnz_in_cols(1, 3), 0);
        assert_eq!(m.nnz_in_cols(0, 4), 8);
    }

    #[test]
    fn iter_kept_matches_nnz() {
        let mut m = AttentionMask::empty(5);
        m.keep(0, 4);
        m.keep(3, 3);
        let kept: Vec<_> = m.iter_kept().collect();
        assert_eq!(kept, vec![(0, 4), (3, 3)]);
        assert_eq!(kept.len(), m.nnz());
    }

    #[test]
    fn display_renders_grid() {
        let m = AttentionMask::dense(2);
        let s = m.to_string();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains('█'));
    }
}
