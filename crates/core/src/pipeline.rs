//! The unified ViTCoD algorithm pipeline (paper Fig. 10).
//!
//! Input: a pretrained ViT. Step 1: insert auto-encoder modules and
//! finetune. Step 2: run split-and-conquer on the averaged attention
//! maps, fix the resulting sparse masks, and finetune again to restore
//! accuracy. The pipeline here drives the trainable substrate from
//! [`vitcod_model`] on a synthetic task (the documented ImageNet
//! substitution) and reports every intermediate the paper's algorithm
//! figures need.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vitcod_autograd::ParamStore;
use vitcod_model::{
    AutoEncoderSpec, SyntheticTask, TrainConfig, Trainer, Trajectory, ViTConfig, VisionTransformer,
};

use crate::split_conquer::{PolarizedHead, SplitConquer, SplitConquerConfig};

/// Configuration of a full pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Model architecture (reduced configs train in seconds).
    pub model: ViTConfig,
    /// Pretraining epochs (the "pretrained ViT" input of Fig. 10).
    pub pretrain: TrainConfig,
    /// Step-1/2 finetuning epochs.
    pub finetune: TrainConfig,
    /// Auto-encoder spec; `None` skips Step 1 (ablation).
    pub auto_encoder: Option<AutoEncoderSpec>,
    /// Split-and-conquer settings; `None` skips Step 2 (ablation).
    pub split_conquer: Option<SplitConquerConfig>,
    /// Weight-init / data-order seed.
    pub seed: u64,
}

impl PipelineConfig {
    /// The paper's default pipeline: AE at 50 % compression plus
    /// split-and-conquer at the model's paper-reported sparsity.
    pub fn paper_default(model: ViTConfig) -> Self {
        let heads = model.heads;
        let sparsity = model.paper_sparsity;
        Self {
            model,
            pretrain: TrainConfig {
                epochs: 15,
                ..TrainConfig::default()
            },
            finetune: TrainConfig {
                epochs: 10,
                lr: 1e-3,
                ..TrainConfig::default()
            },
            auto_encoder: Some(AutoEncoderSpec::half(heads)),
            split_conquer: Some(SplitConquerConfig::with_sparsity(sparsity)),
            seed: 0xC0DE,
        }
    }
}

/// Everything a pipeline run produced.
#[derive(Debug)]
pub struct PipelineReport {
    /// Accuracy of the dense pretrained model (the Fig. 9/18 dashed
    /// "vanilla" line).
    pub dense_accuracy: f32,
    /// Pretraining trajectory.
    pub pretrain_trajectory: Trajectory,
    /// Step-1 (AE) finetuning trajectory, if AE was enabled.
    pub ae_trajectory: Option<Trajectory>,
    /// Step-2 (sparse) finetuning trajectory, if split-and-conquer ran.
    pub sparse_trajectory: Option<Trajectory>,
    /// Accuracy after the complete pipeline.
    pub final_accuracy: f32,
    /// Mean achieved attention sparsity (0 when Step 2 skipped).
    pub achieved_sparsity: f64,
    /// Split-and-conquer output per `[layer][head]` (empty when
    /// skipped).
    pub polarized: Vec<Vec<PolarizedHead>>,
    /// The finetuned model and parameters, for further analysis.
    pub trainer: Trainer,
}

impl PipelineReport {
    /// Accuracy drop (dense − final); the paper claims < 1 % at 90 %
    /// sparsity on DeiT (measured on our synthetic substitute task).
    pub fn accuracy_drop(&self) -> f32 {
        self.dense_accuracy - self.final_accuracy
    }
}

/// Runs the unified two-step ViTCoD pipeline end to end.
///
/// # Example
///
/// ```no_run
/// use vitcod_core::{PipelineConfig, ViTCoDPipeline};
/// use vitcod_model::{SyntheticTask, SyntheticTaskConfig, ViTConfig};
///
/// let task = SyntheticTask::generate(SyntheticTaskConfig::default());
/// let cfg = PipelineConfig::paper_default(
///     ViTConfig::deit_tiny().reduced_for_training());
/// let report = ViTCoDPipeline::new(cfg).run(&task);
/// assert!(report.achieved_sparsity > 0.5);
/// ```
#[derive(Debug)]
pub struct ViTCoDPipeline {
    config: PipelineConfig,
}

impl ViTCoDPipeline {
    /// Creates a pipeline with `config`.
    pub fn new(config: PipelineConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Executes: pretrain → (insert AE, finetune) → (split-and-conquer,
    /// finetune).
    pub fn run(&self, task: &SyntheticTask) -> PipelineReport {
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let vit = VisionTransformer::new(
            &cfg.model,
            task.config.in_dim,
            task.config.num_classes,
            &mut store,
            &mut rng,
        );
        let mut trainer = Trainer::new(vit, store);

        // "Pretrained ViTs" input.
        let pretrain_trajectory = trainer.train(task, &cfg.pretrain);
        let dense_accuracy = trainer.evaluate(&task.test);

        // Step 1: insert AE modules, finetune.
        let ae_trajectory = cfg.auto_encoder.map(|spec| {
            let mut rng_ae = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xAE);
            trainer.insert_auto_encoder(spec, &mut rng_ae);
            trainer.train(task, &cfg.finetune)
        });

        // Step 2: split-and-conquer on averaged maps, finetune.
        let mut polarized = Vec::new();
        let mut achieved_sparsity = 0.0;
        let sparse_trajectory = cfg.split_conquer.map(|sc_cfg| {
            let maps = trainer.averaged_attention_maps(task);
            let sc = SplitConquer::new(sc_cfg);
            polarized = sc.apply(&maps);
            achieved_sparsity = SplitConquer::mean_sparsity(&polarized);
            let plan = SplitConquer::to_sparsity_plan(&polarized);
            trainer.model_mut().set_sparsity_plan(plan);
            trainer.train(task, &cfg.finetune)
        });

        let final_accuracy = trainer.evaluate(&task.test);
        PipelineReport {
            dense_accuracy,
            pretrain_trajectory,
            ae_trajectory,
            sparse_trajectory,
            final_accuracy,
            achieved_sparsity,
            polarized,
            trainer,
        }
    }
}

#[cfg(test)]
// Exact float equality below asserts bit-identical artifact replay.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use vitcod_model::SyntheticTaskConfig;

    fn quick_task() -> SyntheticTask {
        SyntheticTask::generate(SyntheticTaskConfig {
            train_samples: 40,
            test_samples: 24,
            ..Default::default()
        })
    }

    fn quick_cfg(ae: bool, sc: bool) -> PipelineConfig {
        let model = ViTConfig::deit_tiny().reduced_for_training();
        PipelineConfig {
            auto_encoder: ae.then(|| AutoEncoderSpec::half(model.heads)),
            split_conquer: sc.then(|| SplitConquerConfig::with_sparsity(0.8)),
            pretrain: TrainConfig {
                epochs: 4,
                ..Default::default()
            },
            finetune: TrainConfig {
                epochs: 3,
                lr: 1e-3,
                ..Default::default()
            },
            model,
            seed: 7,
        }
    }

    #[test]
    fn full_pipeline_produces_sparse_model() {
        let task = quick_task();
        let report = ViTCoDPipeline::new(quick_cfg(true, true)).run(&task);
        assert!(report.ae_trajectory.is_some());
        assert!(report.sparse_trajectory.is_some());
        assert!(
            (report.achieved_sparsity - 0.8).abs() < 0.05,
            "sparsity {}",
            report.achieved_sparsity
        );
        assert!(!report.polarized.is_empty());
        assert!(report.trainer.model().has_masks());
        assert!(report.trainer.model().has_auto_encoder());
    }

    #[test]
    fn ablation_skips_steps() {
        let task = quick_task();
        let report = ViTCoDPipeline::new(quick_cfg(false, false)).run(&task);
        assert!(report.ae_trajectory.is_none());
        assert!(report.sparse_trajectory.is_none());
        assert_eq!(report.achieved_sparsity, 0.0);
        assert!(report.polarized.is_empty());
        assert_eq!(report.dense_accuracy, report.final_accuracy);
    }

    #[test]
    fn sparse_only_pipeline_installs_masks() {
        let task = quick_task();
        let report = ViTCoDPipeline::new(quick_cfg(false, true)).run(&task);
        assert!(report.trainer.model().has_masks());
        assert!(!report.trainer.model().has_auto_encoder());
        assert!(report.achieved_sparsity > 0.7);
    }
}
