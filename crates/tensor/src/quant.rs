//! 8-bit quantization substrate.
//!
//! The ViTCoD accelerator computes on 8-bit operands (512 MACs in
//! 3 mm²); this module provides the symmetric quantization scheme its
//! functional model uses — `x ≈ scale · q` with `q ∈ [-127, 127]`, i32
//! accumulation, dequantized read-out — at two granularities:
//!
//! * [`QuantizedMatrix`] — per-tensor scale; the storage format of
//!   int8 `*.vitcod` artifacts and the operand type of the sparse
//!   attention SDDMM.
//! * [`QuantizedRows`] — per-row scales for *activations*: each token
//!   row is quantized against its own max, which keeps projection error
//!   tight without calibration, and the row data is stored pre-widened
//!   to `i16` so every consuming GEMM skips the widening pass. An
//!   activation tensor is quantized **once** per layer and then feeds
//!   every projection / attention head that reads it (per-row scales
//!   survive column slicing, so per-head Q/K views reuse the same
//!   quantization).
//!
//! The serving-path projection product is [`int8_gemm`]: a blocked,
//! packed i8×i8→i32 GEMM over [`PackedGemmWeights`] (weights re-laid
//! out at compile time into interleaved `k`-pair lane panels, the shape
//! the autovectorizer turns into paired i16 multiply–accumulate
//! instructions) with a fused dequantize-and-bias epilogue. Integer
//! accumulation is exact in any order, so all [`Backend`]s produce
//! bit-identical results from identical operands.

use crate::kernels::{self, Backend, LANES};
use crate::Matrix;

/// Symmetric per-tensor quantization parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Real value represented by one integer step.
    pub scale: f32,
}

impl QuantParams {
    /// Derives the scale that maps the tensor's max magnitude to 127.
    ///
    /// Returns a scale of `1.0` for an all-zero tensor so quantization
    /// stays invertible.
    pub fn fit(m: &Matrix) -> Self {
        let max = m.as_slice().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        Self {
            scale: if max == 0.0 { 1.0 } else { max / 127.0 },
        }
    }
}

/// A quantized matrix: i8 payload plus its [`QuantParams`].
///
/// # Example
///
/// ```
/// use vitcod_tensor::{Matrix, QuantizedMatrix};
///
/// let m = Matrix::from_rows(&[&[1.0, -0.5], &[0.25, 0.0]]);
/// let q = QuantizedMatrix::quantize(&m);
/// let back = q.dequantize();
/// assert!(m.max_abs_diff(&back) < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    params: QuantParams,
}

impl QuantizedMatrix {
    /// Quantizes `m` with a fitted symmetric scale.
    pub fn quantize(m: &Matrix) -> Self {
        Self::quantize_with(m, QuantParams::fit(m))
    }

    /// Quantizes `m` with explicit parameters (saturating at ±127).
    pub fn quantize_with(m: &Matrix, params: QuantParams) -> Self {
        let data = m
            .as_slice()
            .iter()
            .map(|&v| (v / params.scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        Self {
            rows: m.rows(),
            cols: m.cols(),
            data,
            params,
        }
    }

    /// Reassembles a quantized matrix from an already-quantized payload
    /// (the artifact-load path — no requantization round-trip).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows · cols`.
    pub fn from_raw(rows: usize, cols: usize, data: Vec<i8>, params: QuantParams) -> Self {
        assert_eq!(data.len(), rows * cols, "payload length mismatch");
        Self {
            rows,
            cols,
            data,
            params,
        }
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Quantization parameters.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// The raw i8 element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get_raw(&self, r: usize, c: usize) -> i8 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Raw row slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_raw(&self, r: usize) -> &[i8] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Recovers the real-valued matrix.
    pub fn dequantize(&self) -> Matrix {
        let scale = self.params.scale;
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&q| q as f32 * scale).collect(),
        )
    }

    /// Integer matrix product with i32 accumulation,
    /// `self · rhsᵀ`, dequantized on read-out — the arithmetic the
    /// accelerator's MAC lines perform for `S = Q·Kᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions differ.
    pub fn matmul_nt_dequant(&self, rhs: &QuantizedMatrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "inner dimensions differ");
        let out_scale = self.params.scale * rhs.params.scale;
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a = self.row_raw(i);
            for j in 0..rhs.rows {
                let b = rhs.row_raw(j);
                let mut acc: i32 = 0;
                for (x, y) in a.iter().zip(b.iter()) {
                    acc += (*x as i32) * (*y as i32);
                }
                out.set(i, j, acc as f32 * out_scale);
            }
        }
        out
    }

    /// Memory footprint in bytes (1 byte per element).
    pub fn bytes(&self) -> usize {
        self.data.len()
    }
}

/// Largest shared dimension [`int8_gemm`] accepts: every `k`-pair
/// contributes at most `2 · 127 · 127` to an i32 accumulator, so `k`
/// this large is provably overflow-free (`⌊2³¹ / 127²⌋ − 1`, floored to
/// an even pair count). ViT shapes top out at `k = 3072`, five hundred
/// times below the line.
pub const MAX_INT8_GEMM_K: usize = 133_140;

/// Per-row symmetrically quantized activations, stored pre-widened.
///
/// Each row gets its own scale (`max|row| / 127`, `1.0` for an all-zero
/// row), fitted once when the activation tensor is produced; every
/// consumer — the fused-QKV / MLP projections via [`int8_gemm`], dense
/// attention scores via [`QuantizedRows::scores_nt`], the sparse SDDMM —
/// reads the same quantization. Values are stored as `i16` (the operand
/// width of the paired multiply–accumulate idiom) with rows padded to an
/// even length so `k`-pair kernels never special-case the last element;
/// the padding is zero and never contributes.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedRows {
    rows: usize,
    cols: usize,
    /// `cols` rounded up to even: the stored row stride.
    padded: usize,
    data: Vec<i16>,
    scales: Vec<f32>,
}

impl QuantizedRows {
    /// Quantizes `m` row-wise with fitted symmetric per-row scales.
    pub fn quantize(m: &Matrix) -> Self {
        let (rows, cols) = m.shape();
        let padded = cols + cols % 2;
        let mut data = vec![0i16; rows * padded];
        let mut scales = vec![1.0f32; rows];
        for r in 0..rows {
            let src = m.row(r);
            let max = src.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
            let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
            scales[r] = scale;
            let dst = &mut data[r * padded..r * padded + cols];
            for (d, &v) in dst.iter_mut().zip(src.iter()) {
                *d = (v / scale).round().clamp(-127.0, 127.0) as i16;
            }
        }
        Self {
            rows,
            cols,
            padded,
            data,
            scales,
        }
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Scale of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_scale(&self, r: usize) -> f32 {
        self.scales[r]
    }

    /// Widened row `r`, including the even-length zero pad.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_wide(&self, r: usize) -> &[i16] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.padded..(r + 1) * self.padded]
    }

    /// A column window of widened row `r` — how per-head attention
    /// slices a fused Q/K activation without requantizing.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the row.
    pub fn row_window_wide(&self, r: usize, cols: std::ops::Range<usize>) -> &[i16] {
        assert!(r < self.rows, "row out of bounds");
        assert!(cols.end <= self.cols, "column window out of bounds");
        &self.data[r * self.padded + cols.start..r * self.padded + cols.end]
    }

    /// Recovers the real-valued matrix (tests and audits).
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let scale = self.scales[r];
            let src = &self.data[r * self.padded..r * self.padded + self.cols];
            for (o, &q) in out.row_mut(r).iter_mut().zip(src.iter()) {
                *o = q as f32 * scale;
            }
        }
        out
    }

    /// Attention-score product `self · keysᵀ · scale` over the column
    /// window `cols` (one attention head's feature slice) with i32
    /// accumulation: `out[i][j]` dequantizes through
    /// `self.scale(i) · keys.scale(j) · scale`. The i16·i16→i32 inner
    /// loop is the paired multiply–accumulate shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes or the window disagree.
    pub fn scores_nt(
        &self,
        keys: &QuantizedRows,
        cols: std::ops::Range<usize>,
        scale: f32,
    ) -> Matrix {
        assert_eq!(self.cols, keys.cols, "q/k feature dims differ");
        assert!(cols.end <= self.cols, "column window out of bounds");
        let (m, n) = (self.rows, keys.rows);
        let mut out = Matrix::zeros(m, n);
        if cols.is_empty() {
            return out;
        }
        let dk = cols.len();
        kernels::for_each_row_chunk_weighted(out.as_mut_slice(), n, dk * n, |first_row, chunk| {
            for (ci, orow) in chunk.chunks_mut(n).enumerate() {
                let i = first_row + ci;
                let qrow = self.row_window_wide(i, cols.clone());
                let qfactor = self.row_scale(i) * scale;
                for (j, o) in orow.iter_mut().enumerate() {
                    let krow = keys.row_window_wide(j, cols.clone());
                    let mut acc: i32 = 0;
                    for (&x, &y) in qrow.iter().zip(krow.iter()) {
                        acc += x as i32 * y as i32;
                    }
                    *o = acc as f32 * (qfactor * keys.row_scale(j));
                }
            }
        });
        out
    }
}

/// Projection weights packed for [`int8_gemm`] at compile time.
///
/// The `k × n` weight is quantized per-tensor, then re-laid out into
/// panels of [`LANES`] output columns with consecutive `k`-pairs
/// interleaved per lane:
///
/// ```text
/// data[((panel · kp + pair) · LANES + lane) · 2 + s] = w[2·pair + s][panel·LANES + lane]
/// ```
///
/// so the inner loop reads one contiguous `2·LANES` block per `k`-pair
/// per panel — the layout the autovectorizer compiles to paired i16
/// multiply–accumulate. Ragged edges (odd `k`, `n` not a lane multiple)
/// are zero-padded and contribute nothing. Elements are stored widened
/// to `i16`; [`PackedGemmWeights::bytes`] still accounts one byte per
/// logical weight, matching what an accelerator (or the artifact)
/// actually stores.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedGemmWeights {
    k: usize,
    n: usize,
    /// `k.div_ceil(2)`: interleaved pair count per panel.
    kp: usize,
    panels: usize,
    scale: f32,
    data: Vec<i16>,
}

impl PackedGemmWeights {
    /// Quantizes and packs a real-valued `k × n` weight.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds [`MAX_INT8_GEMM_K`].
    pub fn pack(w: &Matrix) -> Self {
        Self::from_quantized(&QuantizedMatrix::quantize(w))
    }

    /// Packs an already-quantized weight (the artifact-load path:
    /// identical bytes and scale, no requantization).
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds [`MAX_INT8_GEMM_K`].
    pub fn from_quantized(w: &QuantizedMatrix) -> Self {
        let (k, n) = w.shape();
        assert!(
            k <= MAX_INT8_GEMM_K,
            "k={k} could overflow i32 accumulation"
        );
        let kp = k.div_ceil(2);
        let panels = n.div_ceil(LANES);
        let mut data = vec![0i16; panels * kp * 2 * LANES];
        for p in 0..panels {
            for pair in 0..kp {
                for l in 0..LANES {
                    let j = p * LANES + l;
                    if j >= n {
                        continue;
                    }
                    let base = ((p * kp + pair) * LANES + l) * 2;
                    data[base] = w.get_raw(2 * pair, j) as i16;
                    if 2 * pair + 1 < k {
                        data[base + 1] = w.get_raw(2 * pair + 1, j) as i16;
                    }
                }
            }
        }
        Self {
            k,
            n,
            kp,
            panels,
            scale: w.params().scale,
            data,
        }
    }

    /// Logical shape `(k, n)` of the packed weight.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.n)
    }

    /// Per-tensor quantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Logical footprint in bytes (one per weight, as stored on disk or
    /// in accelerator SRAM — the in-RAM i16 widening is an x86 detail).
    pub fn bytes(&self) -> usize {
        self.k * self.n
    }

    /// Packed element for logical position `(kk, j)` — the reference
    /// kernel and tests read through this.
    fn get_wide(&self, kk: usize, j: usize) -> i16 {
        let (p, l) = (j / LANES, j % LANES);
        self.data[((p * self.kp + kk / 2) * LANES + l) * 2 + (kk & 1)]
    }
}

/// Int8 projection GEMM on the ambient backend: `dequant(a · w) + bias`
/// with i8-precision operands, i32 accumulation and a fused epilogue
/// `out[i][j] = acc · (a.scale(i) · w.scale()) + bias[j]`.
///
/// All backends are bit-identical here by construction: integer
/// accumulation is order-exact and the epilogue expression is shared, so
/// backend choice affects speed only. [`Backend::Scalar`] runs a naive
/// reference walk of the packed layout; the other two run the lane-tiled
/// pair kernel, row-parallel across threads.
///
/// # Panics
///
/// Panics if `a.cols() != w.k` or `bias.len() != w.n`.
pub fn int8_gemm(a: &QuantizedRows, w: &PackedGemmWeights, bias: &[f32]) -> Matrix {
    int8_gemm_with(kernels::backend(), a, w, bias)
}

/// [`int8_gemm`] on an explicit backend.
pub fn int8_gemm_with(
    backend: Backend,
    a: &QuantizedRows,
    w: &PackedGemmWeights,
    bias: &[f32],
) -> Matrix {
    let (m, k) = a.shape();
    assert_eq!(k, w.k, "int8_gemm inner dimensions differ");
    assert_eq!(bias.len(), w.n, "bias length mismatch");
    let n = w.n;
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 {
        return out;
    }
    match backend {
        Backend::Scalar => int8_gemm_reference(a, w, bias, out.as_mut_slice(), 0),
        Backend::Blocked | Backend::Simd => {
            kernels::for_each_row_chunk_weighted(
                out.as_mut_slice(),
                n,
                k * n,
                |first_row, chunk| int8_gemm_panels(a, w, bias, chunk, first_row),
            );
        }
    }
    out
}

/// Reference arm of [`int8_gemm`]: per-element dot products read
/// straight through the packed layout.
fn int8_gemm_reference(
    a: &QuantizedRows,
    w: &PackedGemmWeights,
    bias: &[f32],
    chunk: &mut [f32],
    first_row: usize,
) {
    let (k, n) = (w.k, w.n);
    let chunk_rows = chunk.len() / n;
    for ci in 0..chunk_rows {
        let i = first_row + ci;
        let arow = a.row_wide(i);
        let factor = a.row_scale(i) * w.scale;
        for j in 0..n {
            let mut acc: i32 = 0;
            for (kk, &av) in arow[..k].iter().enumerate() {
                acc += av as i32 * w.get_wide(kk, j) as i32;
            }
            chunk[ci * n + j] = acc as f32 * factor + bias[j];
        }
    }
}

/// Fast arm of [`int8_gemm`]: rows in blocks of [`LANES`] (packed-panel
/// reuse), two weight panels — `2 · LANES` output columns — per sweep,
/// `[i32; LANES]` register accumulators, and the interleaved `k`-pair
/// inner step `acc[l] += a₀·w[2l] + a₁·w[2l+1]` that compiles to paired
/// i16 multiply–accumulate at the workspace's pinned `x86-64-v2`
/// target.
fn int8_gemm_panels(
    a: &QuantizedRows,
    w: &PackedGemmWeights,
    bias: &[f32],
    chunk: &mut [f32],
    first_row: usize,
) {
    let n = w.n;
    let kp = w.kp;
    let panel_len = kp * 2 * LANES;
    let chunk_rows = chunk.len() / n;
    let store = |orow: &mut [f32], j: usize, acc: &[i32; LANES], factor: f32| {
        for (l, &v) in acc.iter().enumerate() {
            if j + l >= n {
                break;
            }
            orow[j + l] = v as f32 * factor + bias[j + l];
        }
    };
    let mut i0 = 0;
    while i0 < chunk_rows {
        let ib = (chunk_rows - i0).min(LANES);
        let mut p = 0;
        while p + 2 <= w.panels {
            let w0 = &w.data[p * panel_len..(p + 1) * panel_len];
            let w1 = &w.data[(p + 1) * panel_len..(p + 2) * panel_len];
            for di in 0..ib {
                let i = first_row + i0 + di;
                let arow = a.row_wide(i);
                let factor = a.row_scale(i) * w.scale;
                let mut acc0 = [0i32; LANES];
                let mut acc1 = [0i32; LANES];
                for pair in 0..kp {
                    let a0 = arow[2 * pair] as i32;
                    let a1 = arow[2 * pair + 1] as i32;
                    let wp0 = &w0[pair * 2 * LANES..(pair + 1) * 2 * LANES];
                    let wp1 = &w1[pair * 2 * LANES..(pair + 1) * 2 * LANES];
                    for l in 0..LANES {
                        acc0[l] += a0 * wp0[2 * l] as i32 + a1 * wp0[2 * l + 1] as i32;
                    }
                    for l in 0..LANES {
                        acc1[l] += a0 * wp1[2 * l] as i32 + a1 * wp1[2 * l + 1] as i32;
                    }
                }
                let orow = &mut chunk[(i0 + di) * n..(i0 + di + 1) * n];
                store(orow, p * LANES, &acc0, factor);
                store(orow, (p + 1) * LANES, &acc1, factor);
            }
            p += 2;
        }
        if p < w.panels {
            let w0 = &w.data[p * panel_len..(p + 1) * panel_len];
            for di in 0..ib {
                let i = first_row + i0 + di;
                let arow = a.row_wide(i);
                let factor = a.row_scale(i) * w.scale;
                let mut acc0 = [0i32; LANES];
                for pair in 0..kp {
                    let a0 = arow[2 * pair] as i32;
                    let a1 = arow[2 * pair + 1] as i32;
                    let wp0 = &w0[pair * 2 * LANES..(pair + 1) * 2 * LANES];
                    for l in 0..LANES {
                        acc0[l] += a0 * wp0[2 * l] as i32 + a1 * wp0[2 * l + 1] as i32;
                    }
                }
                let orow = &mut chunk[(i0 + di) * n..(i0 + di + 1) * n];
                store(orow, p * LANES, &acc0, factor);
            }
        }
        i0 += ib;
    }
}

#[cfg(test)]
// Exact float equality below asserts bit-identical kernel replay.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::Initializer;

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let m = Initializer::Normal { std: 1.0 }.sample(16, 16, 1);
        let q = QuantizedMatrix::quantize(&m);
        let err = m.max_abs_diff(&q.dequantize());
        assert!(err <= q.params().scale * 0.5 + 1e-7, "err {err}");
    }

    #[test]
    fn zero_matrix_round_trips() {
        let m = Matrix::zeros(3, 3);
        let q = QuantizedMatrix::quantize(&m);
        assert_eq!(q.dequantize(), m);
        assert_eq!(q.params().scale, 1.0);
    }

    #[test]
    fn saturation_clamps_outliers() {
        let m = Matrix::from_rows(&[&[1.0, 100.0]]);
        let q = QuantizedMatrix::quantize_with(&m, QuantParams { scale: 0.1 });
        assert_eq!(q.get_raw(0, 1), 127);
        assert_eq!(q.get_raw(0, 0), 10);
    }

    #[test]
    fn quantized_matmul_close_to_fp32() {
        let a = Initializer::Normal { std: 0.5 }.sample(8, 32, 2);
        let b = Initializer::Normal { std: 0.5 }.sample(8, 32, 3);
        let exact = a.matmul_nt(&b);
        let approx =
            QuantizedMatrix::quantize(&a).matmul_nt_dequant(&QuantizedMatrix::quantize(&b));
        let rel = exact.max_abs_diff(&approx) / exact.frobenius_norm().max(1e-6);
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn bytes_is_one_per_element() {
        let m = Matrix::zeros(5, 7);
        assert_eq!(QuantizedMatrix::quantize(&m).bytes(), 35);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        let a = QuantizedMatrix::quantize(&Matrix::zeros(2, 3));
        let b = QuantizedMatrix::quantize(&Matrix::zeros(2, 4));
        a.matmul_nt_dequant(&b);
    }

    #[test]
    fn quantized_rows_round_trip_bounded_per_row() {
        let m = Initializer::Normal { std: 1.0 }.sample(9, 13, 4);
        let q = QuantizedRows::quantize(&m);
        let back = q.dequantize();
        for r in 0..9 {
            let step = q.row_scale(r) * 0.5;
            for c in 0..13 {
                let err = (m.get(r, c) - back.get(r, c)).abs();
                assert!(
                    err <= step + 1e-7,
                    "({r},{c}): err {err} > half step {step}"
                );
            }
        }
    }

    #[test]
    fn packed_layout_preserves_quantized_weights() {
        // Odd k and a non-lane-multiple n exercise both zero pads.
        let w = Initializer::Normal { std: 0.7 }.sample(11, 21, 5);
        let q = QuantizedMatrix::quantize(&w);
        let packed = PackedGemmWeights::from_quantized(&q);
        assert_eq!(packed.shape(), (11, 21));
        assert_eq!(packed.scale(), q.params().scale);
        assert_eq!(packed.bytes(), 11 * 21);
        for kk in 0..11 {
            for j in 0..21 {
                assert_eq!(
                    packed.get_wide(kk, j),
                    q.get_raw(kk, j) as i16,
                    "({kk},{j})"
                );
            }
        }
    }

    #[test]
    fn int8_gemm_backends_bit_identical_and_match_naive() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (5, 11, 21),
            (16, 32, 16),
            (9, 17, 33),
            (197, 64, 48),
        ] {
            let a = Initializer::Normal { std: 1.0 }.sample(m, k, 6);
            let wf = Initializer::Normal { std: 0.3 }.sample(k, n, 7);
            let bias: Vec<f32> = (0..n).map(|j| j as f32 * 0.01 - 0.1).collect();
            let aq = QuantizedRows::quantize(&a);
            let w = PackedGemmWeights::pack(&wf);
            let wq = QuantizedMatrix::quantize(&wf);
            let scalar = int8_gemm_with(Backend::Scalar, &aq, &w, &bias);
            let blocked = int8_gemm_with(Backend::Blocked, &aq, &w, &bias);
            let simd = int8_gemm_with(Backend::Simd, &aq, &w, &bias);
            assert_eq!(scalar, blocked, "shape ({m},{k},{n})");
            assert_eq!(scalar, simd, "shape ({m},{k},{n})");
            // Naive oracle straight off the unpacked quantized operands.
            for i in 0..m {
                let factor = aq.row_scale(i) * w.scale();
                for (j, &bj) in bias.iter().enumerate() {
                    let mut acc: i32 = 0;
                    for kk in 0..k {
                        acc += aq.row_wide(i)[kk] as i32 * wq.get_raw(kk, j) as i32;
                    }
                    let want = acc as f32 * factor + bj;
                    assert_eq!(scalar.get(i, j), want, "({i},{j}) of ({m},{k},{n})");
                }
            }
        }
    }

    #[test]
    fn scores_nt_matches_per_tensor_reference_shape_and_windows() {
        let q = Initializer::Normal { std: 1.0 }.sample(12, 16, 8);
        let k = Initializer::Normal { std: 1.0 }.sample(12, 16, 9);
        let qr = QuantizedRows::quantize(&q);
        let kr = QuantizedRows::quantize(&k);
        // Head window [8, 16): the naive per-row dot is the oracle.
        let scores = qr.scores_nt(&kr, 8..16, 0.25);
        assert_eq!(scores.shape(), (12, 12));
        for i in 0..12 {
            for j in 0..12 {
                let mut acc: i32 = 0;
                for c in 8..16 {
                    acc += qr.row_wide(i)[c] as i32 * kr.row_wide(j)[c] as i32;
                }
                let want = acc as f32 * (qr.row_scale(i) * 0.25 * kr.row_scale(j));
                assert_eq!(scores.get(i, j), want, "({i},{j})");
            }
        }
    }

    #[test]
    fn int8_gemm_zero_k_is_bias_broadcast() {
        let aq = QuantizedRows::quantize(&Matrix::zeros(3, 0));
        let w = PackedGemmWeights::pack(&Matrix::zeros(0, 4));
        let bias = [1.0, 2.0, 3.0, 4.0];
        let out = int8_gemm(&aq, &w, &bias);
        for i in 0..3 {
            for (j, &b) in bias.iter().enumerate() {
                assert_eq!(out.get(i, j), b);
            }
        }
    }
}
