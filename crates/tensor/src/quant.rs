//! 8-bit quantization substrate.
//!
//! The ViTCoD accelerator computes on 8-bit operands (512 MACs in
//! 3 mm²); this module provides the symmetric per-tensor quantization
//! scheme its functional model uses: `x ≈ scale · q` with `q ∈ [-127,
//! 127]`, i32 accumulation, and dequantized read-out.

use crate::Matrix;

/// Symmetric per-tensor quantization parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Real value represented by one integer step.
    pub scale: f32,
}

impl QuantParams {
    /// Derives the scale that maps the tensor's max magnitude to 127.
    ///
    /// Returns a scale of `1.0` for an all-zero tensor so quantization
    /// stays invertible.
    pub fn fit(m: &Matrix) -> Self {
        let max = m.as_slice().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        Self {
            scale: if max == 0.0 { 1.0 } else { max / 127.0 },
        }
    }
}

/// A quantized matrix: i8 payload plus its [`QuantParams`].
///
/// # Example
///
/// ```
/// use vitcod_tensor::{Matrix, QuantizedMatrix};
///
/// let m = Matrix::from_rows(&[&[1.0, -0.5], &[0.25, 0.0]]);
/// let q = QuantizedMatrix::quantize(&m);
/// let back = q.dequantize();
/// assert!(m.max_abs_diff(&back) < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    params: QuantParams,
}

impl QuantizedMatrix {
    /// Quantizes `m` with a fitted symmetric scale.
    pub fn quantize(m: &Matrix) -> Self {
        Self::quantize_with(m, QuantParams::fit(m))
    }

    /// Quantizes `m` with explicit parameters (saturating at ±127).
    pub fn quantize_with(m: &Matrix, params: QuantParams) -> Self {
        let data = m
            .as_slice()
            .iter()
            .map(|&v| (v / params.scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        Self {
            rows: m.rows(),
            cols: m.cols(),
            data,
            params,
        }
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Quantization parameters.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// The raw i8 element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get_raw(&self, r: usize, c: usize) -> i8 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Raw row slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_raw(&self, r: usize) -> &[i8] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Recovers the real-valued matrix.
    pub fn dequantize(&self) -> Matrix {
        let scale = self.params.scale;
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&q| q as f32 * scale).collect(),
        )
    }

    /// Integer matrix product with i32 accumulation,
    /// `self · rhsᵀ`, dequantized on read-out — the arithmetic the
    /// accelerator's MAC lines perform for `S = Q·Kᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions differ.
    pub fn matmul_nt_dequant(&self, rhs: &QuantizedMatrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "inner dimensions differ");
        let out_scale = self.params.scale * rhs.params.scale;
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a = self.row_raw(i);
            for j in 0..rhs.rows {
                let b = rhs.row_raw(j);
                let mut acc: i32 = 0;
                for (x, y) in a.iter().zip(b.iter()) {
                    acc += (*x as i32) * (*y as i32);
                }
                out.set(i, j, acc as f32 * out_scale);
            }
        }
        out
    }

    /// Memory footprint in bytes (1 byte per element).
    pub fn bytes(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Initializer;

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let m = Initializer::Normal { std: 1.0 }.sample(16, 16, 1);
        let q = QuantizedMatrix::quantize(&m);
        let err = m.max_abs_diff(&q.dequantize());
        assert!(err <= q.params().scale * 0.5 + 1e-7, "err {err}");
    }

    #[test]
    fn zero_matrix_round_trips() {
        let m = Matrix::zeros(3, 3);
        let q = QuantizedMatrix::quantize(&m);
        assert_eq!(q.dequantize(), m);
        assert_eq!(q.params().scale, 1.0);
    }

    #[test]
    fn saturation_clamps_outliers() {
        let m = Matrix::from_rows(&[&[1.0, 100.0]]);
        let q = QuantizedMatrix::quantize_with(&m, QuantParams { scale: 0.1 });
        assert_eq!(q.get_raw(0, 1), 127);
        assert_eq!(q.get_raw(0, 0), 10);
    }

    #[test]
    fn quantized_matmul_close_to_fp32() {
        let a = Initializer::Normal { std: 0.5 }.sample(8, 32, 2);
        let b = Initializer::Normal { std: 0.5 }.sample(8, 32, 3);
        let exact = a.matmul_nt(&b);
        let approx =
            QuantizedMatrix::quantize(&a).matmul_nt_dequant(&QuantizedMatrix::quantize(&b));
        let rel = exact.max_abs_diff(&approx) / exact.frobenius_norm().max(1e-6);
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn bytes_is_one_per_element() {
        let m = Matrix::zeros(5, 7);
        assert_eq!(QuantizedMatrix::quantize(&m).bytes(), 35);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        let a = QuantizedMatrix::quantize(&Matrix::zeros(2, 3));
        let b = QuantizedMatrix::quantize(&Matrix::zeros(2, 4));
        a.matmul_nt_dequant(&b);
    }
}
