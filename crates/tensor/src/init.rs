//! Seeded random initialisation for reproducible experiments.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::Matrix;

/// Weight-initialisation schemes used by the training substrate.
///
/// All schemes draw from a seeded [`ChaCha8Rng`], so a `(scheme, seed,
/// shape)` triple fully determines the produced matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Initializer {
    /// Every element uniform in `[-limit, limit]`.
    Uniform {
        /// Half-width of the sampling interval.
        limit: f32,
    },
    /// Xavier/Glorot uniform: `limit = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// Kaiming/He normal with `std = sqrt(2 / fan_in)`.
    KaimingNormal,
    /// Gaussian with the given standard deviation.
    Normal {
        /// Standard deviation of the distribution.
        std: f32,
    },
}

impl Initializer {
    /// Samples a `rows × cols` matrix using this scheme and `seed`.
    ///
    /// `rows` is treated as `fan_in` and `cols` as `fan_out` — the
    /// convention for weights applied as `x · W`.
    ///
    /// # Example
    ///
    /// ```
    /// use vitcod_tensor::Initializer;
    /// let a = Initializer::XavierUniform.sample(4, 4, 7);
    /// let b = Initializer::XavierUniform.sample(4, 4, 7);
    /// assert_eq!(a, b); // same seed, same weights
    /// ```
    pub fn sample(self, rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        self.sample_with(rows, cols, &mut rng)
    }

    /// Samples a `rows × cols` matrix from an existing RNG.
    pub fn sample_with<R: Rng>(self, rows: usize, cols: usize, rng: &mut R) -> Matrix {
        let mut draw: Box<dyn FnMut(&mut R) -> f32> = match self {
            Initializer::Uniform { limit } => {
                Box::new(move |rng: &mut R| rng.gen_range(-limit..=limit))
            }
            Initializer::XavierUniform => {
                let limit = (6.0 / (rows + cols) as f32).sqrt();
                Box::new(move |rng: &mut R| rng.gen_range(-limit..=limit))
            }
            Initializer::KaimingNormal => {
                let std = (2.0 / rows.max(1) as f32).sqrt();
                Box::new(move |rng: &mut R| sample_normal(rng) * std)
            }
            Initializer::Normal { std } => Box::new(move |rng: &mut R| sample_normal(rng) * std),
        };
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(draw(rng));
        }
        Matrix::from_vec(rows, cols, data)
    }
}

/// Standard normal via Box–Muller.
fn sample_normal<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Convenience extension for constructing the workspace's canonical RNG.
pub trait SeedableRngExt {
    /// Creates the deterministic RNG used throughout the workspace.
    fn vitcod(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }
}

impl SeedableRngExt for ChaCha8Rng {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_matrix() {
        for init in [
            Initializer::Uniform { limit: 0.1 },
            Initializer::XavierUniform,
            Initializer::KaimingNormal,
            Initializer::Normal { std: 0.02 },
        ] {
            assert_eq!(init.sample(5, 7, 42), init.sample(5, 7, 42));
        }
    }

    #[test]
    fn different_seed_different_matrix() {
        let a = Initializer::XavierUniform.sample(5, 7, 1);
        let b = Initializer::XavierUniform.sample(5, 7, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn xavier_respects_limit() {
        let m = Initializer::XavierUniform.sample(8, 8, 3);
        let limit = (6.0 / 16.0_f32).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= limit + 1e-6));
    }

    #[test]
    fn normal_has_roughly_requested_std() {
        let m = Initializer::Normal { std: 1.0 }.sample(100, 100, 4);
        let mean = m.sum() / m.len() as f32;
        let var = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / m.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let wide = Initializer::KaimingNormal.sample(1000, 4, 5);
        let narrow = Initializer::KaimingNormal.sample(10, 4, 5);
        let std = |m: &Matrix| {
            let mean = m.sum() / m.len() as f32;
            (m.as_slice()
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / m.len() as f32)
                .sqrt()
        };
        assert!(std(&wide) < std(&narrow));
    }
}
